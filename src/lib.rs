//! # dgx1-repro — umbrella crate for the IISWC 2018 DGX-1 reproduction
//!
//! Re-exports the whole `voltascope` workspace for the integration
//! tests and runnable examples that live at the repository root. See
//! the README for the tour and DESIGN.md for the architecture.
//!
//! # Example
//!
//! ```
//! use dgx1_repro::prelude::*;
//!
//! let harness = Harness::paper();
//! let model = Workload::LeNet.build();
//! let report = harness.epoch(&model, 16, 2, CommMethod::P2p, ScalingMode::Strong);
//! assert!(report.iterations > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use voltascope;
pub use voltascope_comm as comm;
pub use voltascope_dnn as dnn;
pub use voltascope_gpu as gpu;
pub use voltascope_profile as profile;
pub use voltascope_sim as sim;
pub use voltascope_topo as topo;
pub use voltascope_train as train;
pub use voltascope_workload as workload;

/// The most commonly used items, for examples and tests.
pub mod prelude {
    pub use voltascope::grid::{Cell, Executor, FaultScenario, GridRunner, GridSpec, Platform};
    pub use voltascope::service::sched::{
        Priority, SchedConfig, SchedStats, Scheduler, SubmitError, SubmitOpts, Ticket, TicketError,
        TicketStatus,
    };
    pub use voltascope::service::{persist, GridService, ServiceStats, SnapshotStatus};
    pub use voltascope::workloads::{DataWorkload, WorkloadSel};
    pub use voltascope::{experiments, Harness, Measurement};
    pub use voltascope_comm::CommMethod;
    pub use voltascope_dnn::zoo::{self, Workload};
    pub use voltascope_dnn::{Model, NetworkStats, Shape, Tensor};
    pub use voltascope_profile::{render_timeline, ProfileSummary, TextTable};
    pub use voltascope_train::{
        simulate_epoch, simulate_epoch_lowered, simulate_pipeline_epoch, AsyncParameterServer,
        DataParallel, DatasetSpec, EpochReport, GpuRole, MemoryModel, PipelineConfig,
        PipelineReport, ScalingMode, Sgd, SyntheticDataset, SystemModel, TrainConfig,
    };
    pub use voltascope_workload::{
        lower, lower_model, Definition, LowerError, LoweredWorkload, ParseError, WorkloadSpec,
    };
}
