//! Use the Table IV memory model as a planning tool: which per-GPU
//! batch sizes fit each workload on a 16 GB V100, and what does the
//! parameter-server GPU pay on top (SS V-D)?
//!
//! ```text
//! cargo run --release --example memory_planner
//! ```

use dgx1_repro::gpu::GpuSpec;
use dgx1_repro::prelude::*;

fn main() {
    let mm = MemoryModel::default();
    let spec = GpuSpec::tesla_v100();
    let mut table = TextTable::new(["Network", "Batch", "GPU0 (GB)", "GPUx (GB)", "Fits?"]);
    for workload in Workload::ALL {
        let model = workload.build();
        for batch in [16usize, 64, 128, 256] {
            let row = |gib: Result<f64, String>| match gib {
                Ok(v) => format!("{v:.2}"),
                Err(_) => "-".to_string(),
            };
            let server = mm
                .usage(&model, batch, GpuRole::Server, &spec)
                .map(|u| u.training_gib())
                .map_err(|e| e.to_string());
            let worker = mm
                .usage(&model, batch, GpuRole::Worker, &spec)
                .map(|u| u.training_gib())
                .map_err(|e| e.to_string());
            let fits = server.is_ok() && worker.is_ok();
            table.row([
                workload.name().to_string(),
                batch.to_string(),
                row(server),
                row(worker),
                if fits { "yes" } else { "OOM" }.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Max trainable batch per GPU (power-of-two sweep):");
    for workload in Workload::ALL {
        let cap = mm.max_batch(&workload.build(), &spec);
        println!(
            "  {:<13} {}",
            workload.name(),
            cap.map_or("none".into(), |b| b.to_string())
        );
    }
}
