//! Real numerics, not just timing: train LeNet with synchronous
//! data-parallel SGD over four simulated GPU replicas, gradients
//! averaged by an actual ring AllReduce — then contrast with the
//! asynchronous parameter server the paper discusses in SS II-B.
//!
//! ```text
//! cargo run --release --example train_lenet_for_real
//! ```

use dgx1_repro::prelude::*;

fn main() {
    let model = zoo::lenet();
    let data = SyntheticDataset::new(Shape::new([1, 1, 28, 28]), 10, 512, 7);

    println!("== synchronous data-parallel SGD, 4 replicas ==");
    let mut trainer = DataParallel::new(&model, 4, Sgd::new(0.05).momentum(0.9), 1);
    for step in 0..20 {
        let (x, labels) = data.batch(step * 32, 32); // 8 images per replica
        let loss = trainer.step(&x, &labels);
        if step % 5 == 0 || step == 19 {
            println!(
                "step {step:>2}: loss {loss:.4}  (replicas in sync: {})",
                trainer.replicas_in_sync()
            );
        }
    }

    println!();
    println!("== asynchronous parameter server, 4 workers (SS II-B) ==");
    let mut ps = AsyncParameterServer::new(&model, 4, Sgd::new(0.05).momentum(0.9), 1);
    // Workers pull the same version, then push one after another: the
    // delayed-gradient effect accumulates staleness.
    for round in 0..5 {
        let pulls: Vec<_> = (0..4).map(|w| ps.worker_pull(w)).collect();
        let mut last_loss = 0.0;
        for (w, pulled) in pulls.iter().enumerate() {
            let (x, labels) = data.batch(round * 32 + w * 8, 8);
            last_loss = ps.worker_push(w, pulled, &x, &labels);
        }
        println!(
            "round {round}: loss {last_loss:.4}, max staleness {} updates, mean {:.2}",
            ps.max_staleness(),
            ps.mean_staleness()
        );
    }
    println!();
    println!("The paper's warning made concrete: async updates land on weights");
    println!(
        "up to {} versions newer than those the gradient was computed on.",
        ps.max_staleness()
    );
}
