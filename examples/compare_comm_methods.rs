//! The paper's headline experiment in miniature: P2P vs NCCL training
//! time for one workload across GPU counts (Fig. 3 for one network).
//!
//! ```text
//! cargo run --release --example compare_comm_methods [lenet|alexnet|googlenet|resnet|inception]
//! ```

use dgx1_repro::prelude::*;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::LeNet);
    let harness = Harness::paper();
    let model = workload.build();

    let mut table = TextTable::new(["GPUs", "P2P (s)", "NCCL (s)", "Best", "Speedup vs 1 GPU"]);
    let base = harness
        .epoch(&model, 16, 1, CommMethod::P2p, ScalingMode::Strong)
        .epoch_time
        .as_secs_f64();
    for gpus in [1usize, 2, 4, 8] {
        let p2p = harness
            .epoch(&model, 16, gpus, CommMethod::P2p, ScalingMode::Strong)
            .epoch_time
            .as_secs_f64();
        let nccl = harness
            .epoch(&model, 16, gpus, CommMethod::Nccl, ScalingMode::Strong)
            .epoch_time
            .as_secs_f64();
        let best = if p2p <= nccl { "P2P" } else { "NCCL" };
        table.row([
            gpus.to_string(),
            format!("{p2p:.1}"),
            format!("{nccl:.1}"),
            best.to_string(),
            format!("{:.2}x", base / p2p.min(nccl)),
        ]);
    }
    println!(
        "{} at batch 16/GPU, strong scaling on 256K images:",
        workload
    );
    println!("{}", table.render());
    println!("Paper SS V-A: P2P wins for the small networks; NCCL overtakes");
    println!("for the deep many-layer networks at 4-8 GPUs.");
}
