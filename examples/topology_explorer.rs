//! Explore the DGX-1 interconnect and its ablation variants: the
//! connectivity matrix, hardware routes, software relays, and the
//! NVLink rings NCCL would build (SS IV-A and DESIGN.md SS5).
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use dgx1_repro::comm::Ring;
use dgx1_repro::topo::{dgx1_v100, full_nvlink_switch, pcie_only, Device};

fn main() {
    let topo = dgx1_v100();
    println!("== {} ==", topo.name());
    println!("{}", topo.connectivity_matrix());

    println!("Hardware routes (GPUs cannot forward NVLink traffic):");
    for (a, b) in [(0u8, 1u8), (0, 3), (3, 4), (0, 7)] {
        let route = topo.route(Device::gpu(a), Device::gpu(b));
        println!(
            "  {route}   [{} for 100 MB]",
            route.transfer_time(100_000_000)
        );
    }

    println!();
    println!("Software relay candidates (MXNet multi-stage transfers):");
    for (a, b) in [(0u8, 7u8), (3, 4), (0, 5)] {
        let relays: Vec<String> = topo
            .relay_candidates(Device::gpu(a), Device::gpu(b))
            .iter()
            .map(|d| d.to_string())
            .collect();
        println!("  GPU{a}->GPU{b}: via [{}]", relays.join(", "));
    }

    println!();
    println!("NCCL-style rings over the NVLink fabric:");
    for n in [2usize, 4, 8] {
        let ring = Ring::build(&topo, n);
        let order: Vec<String> = ring.devices().iter().map(|d| d.to_string()).collect();
        println!(
            "  {n} GPUs: {} (all NVLink: {}, bottleneck {:.0} GB/s)",
            order.join(" -> "),
            ring.all_nvlink(&topo),
            ring.bottleneck_bytes_per_sec(&topo) / 1e9
        );
    }

    println!();
    println!("Ablation fabrics:");
    for t in [pcie_only(8), full_nvlink_switch(8)] {
        let ring = Ring::build(&t, 8);
        println!(
            "  {:<12} NVLink ring: {}, links: {}",
            t.name(),
            ring.all_nvlink(&t),
            t.links().len()
        );
    }
}
