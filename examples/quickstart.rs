//! Quickstart: simulate one epoch of multi-GPU DNN training on the
//! DGX-1 and print what the paper's profiler would have seen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dgx1_repro::prelude::*;

fn main() {
    // The calibrated Volta DGX-1 (8x V100, NVLink hybrid cube-mesh).
    let harness = Harness::paper();

    // GoogLeNet, batch 32 per GPU, 4 GPUs, NCCL collectives.
    let model = Workload::GoogLeNet.build();
    let report = harness.epoch(&model, 32, 4, CommMethod::Nccl, ScalingMode::Strong);

    println!("workload          : {}", model.name());
    println!(
        "parameters        : {:.1} M",
        model.param_count() as f64 / 1e6
    );
    println!("gradient buckets  : {}", model.gradient_buckets().len());
    println!("iterations/epoch  : {}", report.iterations);
    println!("iteration time    : {}", report.iter_time);
    println!("  FP+BP           : {}", report.fp_bp_iter);
    println!("  WU (exposed)    : {}", report.wu_iter);
    println!(
        "epoch time        : {:.1} s",
        report.epoch_time.as_secs_f64()
    );
    println!(
        "compute util      : {:.1} %",
        100.0 * report.compute_utilization
    );
    println!("sync share        : {:.2} %", report.sync_percent());
    println!();
    println!("nvprof-style summary of one steady-state iteration:");
    println!("{}", ProfileSummary::from_trace(&report.iter_trace));
}
