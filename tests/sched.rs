//! Scheduler contract: the async prioritised front end must deliver
//! byte-identical reports to the blocking `GridService` path, keep
//! strict priority + deficit-round-robin fairness under load, survive
//! panicking cells, honour cancellation and deadlines, and keep its
//! ticket accounting balanced under randomized concurrent traffic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dgx1_repro::prelude::persist::encode;
use dgx1_repro::prelude::*;
use proptest::prelude::*;

fn lenet_cell(batch: usize, gpus: usize) -> Cell {
    Cell {
        workload: Workload::LeNet.into(),
        comm: CommMethod::P2p,
        batch,
        gpus,
        scaling: ScalingMode::Strong,
        platform: Platform::Dgx1,
        fault: FaultScenario::Healthy,
    }
}

/// A cell whose simulation panics: 9 GPUs on an 8-GPU topology.
fn poisonous_cell() -> Cell {
    lenet_cell(16, 9)
}

fn serial_service() -> Arc<GridService> {
    Arc::new(GridService::with_executor(
        Harness::paper(),
        Executor::Serial,
    ))
}

/// Spin-waits until `pred` holds, failing the test after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut pred: impl FnMut() -> bool) {
    let start = Instant::now();
    while !pred() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for {what}"
        );
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------
// Fairness regression: a low-priority flood must not delay an
// interactive high-priority request, and the flood itself must not
// starve.
// ---------------------------------------------------------------------------

#[test]
fn high_priority_ticket_overtakes_a_low_priority_flood() {
    let sched = Scheduler::new(serial_service(), SchedConfig::default().workers(2));

    // Client 1 floods 500 distinct low-priority cells, one per ticket.
    let flood: Vec<Ticket> = (0..500)
        .map(|i| {
            sched
                .submit(
                    &[lenet_cell(8 + i, 1)],
                    SubmitOpts::default().priority(Priority::Low).client(1),
                )
                .expect("flood submit accepted")
        })
        .collect();

    // Client 2 then asks for 5 cells interactively.
    let high_cells: Vec<Cell> = (0..5).map(|i| lenet_cell(1000 + i, 1)).collect();
    let high = sched
        .submit(
            &high_cells,
            SubmitOpts::default().priority(Priority::High).client(2),
        )
        .expect("high-priority submit accepted");

    let reports = high.wait().expect("high-priority ticket completes");
    assert_eq!(reports.len(), 5);

    // At the moment the interactive request resolved, no more than 10%
    // of the flood may have completed: the high band overtook the
    // backlog instead of queueing behind it.
    let flood_done = flood
        .iter()
        .filter(|t| t.poll() == TicketStatus::Done)
        .count();
    assert!(
        flood_done <= 50,
        "{flood_done}/500 flood tickets finished before the high-priority \
         ticket — the priority bands are not strict"
    );
    assert!(
        sched.stats().preemptions > 0,
        "the high-priority dequeues must be counted as preemptions"
    );

    // No starvation: every flood ticket still completes.
    for ticket in &flood {
        ticket.wait().expect("flood ticket completes eventually");
    }
    let stats = sched.stats();
    assert_eq!(stats.submitted, 501);
    assert_eq!(stats.completed, 501);
    assert!(stats.is_balanced(), "{stats:?}");
    assert_eq!(stats.service.computed, 505, "each distinct cell once");
}

// ---------------------------------------------------------------------------
// Randomized concurrency stress: overlapping cell sets, random
// priorities, clients and cancellations, at 1/2/8 workers. Every cell
// is computed at most once, every ticket resolves, and the accounting
// law `submitted == completed + cancelled + rejected` holds.
// ---------------------------------------------------------------------------

/// The shared cell pool submitter threads draw overlapping subsets of.
fn stress_pool() -> Vec<Cell> {
    (8..20).map(|b| lenet_cell(b, 1)).collect()
}

/// Splitmix-style step, the per-thread deterministic randomness source.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 24) ^ *state
}

fn stress_round(seed: u64, workers: usize) {
    let pool = stress_pool();
    let service = serial_service();
    let sched = Scheduler::new(
        Arc::clone(&service),
        SchedConfig::default().workers(workers),
    );

    // 3 submitter threads x 10 tickets of random overlapping subsets,
    // random priorities/clients, ~1 in 4 tickets cancelled right away.
    // Each thread records (ticket, cancel() returned true).
    let outcomes: Vec<(Ticket, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|thread| {
                let sched = &sched;
                let pool = &pool;
                scope.spawn(move || {
                    let mut rng = seed ^ (thread.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut mine = Vec::new();
                    for _ in 0..10 {
                        let r = next_rand(&mut rng);
                        let start = (r % pool.len() as u64) as usize;
                        let len = 1 + (r / 16 % 6) as usize;
                        let cells: Vec<Cell> =
                            (0..len).map(|k| pool[(start + k) % pool.len()]).collect();
                        let priority = Priority::ALL[(r / 256 % 3) as usize];
                        let opts = SubmitOpts::default().priority(priority).client(thread + 1);
                        let ticket = sched.submit(&cells, opts).expect("queue never fills");
                        let cancelled = (r / 1024).is_multiple_of(4) && ticket.cancel();
                        mine.push((ticket, cancelled));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect()
    });

    // Every ticket resolves: cancelled ones to Cancelled, the rest Ok
    // (a cancel() that returned false lost the race to completion).
    for (ticket, cancelled) in &outcomes {
        match ticket.wait() {
            Ok(reports) => {
                assert!(!cancelled, "cancelled ticket resolved Ok");
                assert_eq!(reports.len(), ticket.cells().len());
            }
            Err(e) => {
                assert!(*cancelled, "uncancelled ticket failed: {e}");
                assert_eq!(e, TicketError::Cancelled);
            }
        }
    }

    // A final flush ticket covers the full pool, so afterwards every
    // pool cell has been computed -- and exactly once each, despite 30
    // overlapping tickets racing for them.
    let flush = sched
        .submit(&pool, SubmitOpts::default().client(99))
        .expect("flush submit accepted");
    assert_eq!(flush.wait().expect("flush completes").len(), pool.len());
    wait_until(Duration::from_secs(10), "queue to drain", || {
        sched.queue_depth() == 0
    });

    let stats = sched.stats();
    assert_eq!(
        stats.service.computed,
        pool.len() as u64,
        "single-flight violated: a cell computed more than once ({stats:?})"
    );
    assert_eq!(stats.submitted, 31);
    assert_eq!(stats.rejected, 0);
    assert!(stats.is_balanced(), "{stats:?}");
    assert_eq!(
        stats.enqueued_cells, stats.dequeued_cells,
        "queue leaked items: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.peak_queue_depth >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn randomized_stress_keeps_the_accounting_balanced(seed in 0u64..1_000_000) {
        for workers in [1usize, 2, 8] {
            stress_round(seed ^ workers as u64, workers);
        }
    }
}

// ---------------------------------------------------------------------------
// Panic injection through the async path.
// ---------------------------------------------------------------------------

#[test]
fn a_panicking_cell_fails_its_ticket_and_the_scheduler_survives() {
    let service = serial_service();
    let sched = Scheduler::new(Arc::clone(&service), SchedConfig::default().workers(2));

    let cells = [lenet_cell(16, 1), poisonous_cell(), lenet_cell(16, 2)];
    let ticket = sched.submit(&cells, SubmitOpts::default()).unwrap();
    match ticket.wait() {
        Err(TicketError::CellPanicked { cell, message }) => {
            assert_eq!(cell, poisonous_cell());
            assert!(!message.is_empty(), "panic message captured");
        }
        other => panic!("expected CellPanicked, got {other:?}"),
    }

    // The worker pool survives and the cache is unharmed: the healthy
    // cells still serve, and the claim on the poisonous cell was
    // reverted rather than wedged as permanently in-flight.
    let retry = sched
        .submit(
            &[lenet_cell(16, 1), lenet_cell(16, 2)],
            SubmitOpts::default(),
        )
        .unwrap();
    assert_eq!(retry.wait().expect("healthy cells still serve").len(), 2);

    wait_until(Duration::from_secs(10), "queue to drain", || {
        sched.queue_depth() == 0
    });
    let stats = sched.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.cancelled, 1, "failed is a subset of cancelled");
    assert_eq!(stats.completed, 1);
    assert!(stats.is_balanced(), "{stats:?}");
}

#[test]
fn concurrent_tickets_sharing_a_poisonous_cell_both_fail() {
    let sched = Scheduler::new(serial_service(), SchedConfig::default().workers(2));

    // Both tickets queue the same poisonous cell. Whichever worker
    // claims it first panics; the other either waited on the in-flight
    // claim (and adopts-and-recomputes, panicking identically) or
    // claims it fresh after the revert. Either way both tickets fail
    // and both workers survive.
    let t1 = sched
        .submit(&[poisonous_cell()], SubmitOpts::default())
        .unwrap();
    let t2 = sched
        .submit(&[poisonous_cell()], SubmitOpts::default())
        .unwrap();
    for ticket in [&t1, &t2] {
        match ticket.wait() {
            Err(TicketError::CellPanicked { cell, .. }) => {
                assert_eq!(cell, poisonous_cell());
            }
            other => panic!("expected CellPanicked, got {other:?}"),
        }
    }

    let survivor = sched
        .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
        .unwrap();
    assert!(survivor.wait().is_ok(), "workers survived both panics");
    let stats = sched.stats();
    assert_eq!(stats.failed, 2);
    assert!(stats.is_balanced(), "{stats:?}");
}

// ---------------------------------------------------------------------------
// Byte-identity: the 72-cell service_demo stream submitted as tickets
// yields byte-identical reports and identical service statistics to
// the blocking path, at 1, 2 and 8 workers.
// ---------------------------------------------------------------------------

/// The service_demo request stream: six overlapping sweeps, 72 cells.
fn demo_stream() -> Vec<GridSpec> {
    vec![
        GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        GridSpec::paper().workloads([Workload::LeNet]),
        GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::Nccl]),
        GridSpec::paper()
            .workloads([Workload::AlexNet])
            .batches([16])
            .gpu_counts([1, 2]),
        GridSpec::paper()
            .workloads([Workload::LeNet, Workload::AlexNet])
            .batches([16]),
    ]
}

/// Canonical bytes of one sweep's (cell, report) pairs.
fn sweep_bytes(out: &voltascope::grid::GridOut<Arc<EpochReport>>) -> Vec<u8> {
    let entries: Vec<(Cell, Arc<EpochReport>)> = out
        .iter()
        .map(|(cell, report)| (*cell, report.clone()))
        .collect();
    encode(0, &entries)
}

#[test]
fn the_demo_stream_is_byte_identical_to_the_blocking_path_at_any_worker_count() {
    let stream = demo_stream();

    let blocking = GridService::with_executor(Harness::paper(), Executor::Serial);
    let blocking_bytes: Vec<Vec<u8>> = stream
        .iter()
        .map(|spec| sweep_bytes(&blocking.sweep(spec)))
        .collect();
    let blocking_stats = blocking.stats();
    assert_eq!(blocking_stats.cells, 72, "the demo stream is 72 cells");

    for workers in [1usize, 2, 8] {
        let sched = Scheduler::new(serial_service(), SchedConfig::default().workers(workers));
        for (spec, expected) in stream.iter().zip(&blocking_bytes) {
            let out = sched.sweep(spec);
            assert_eq!(
                &sweep_bytes(&out),
                expected,
                "async sweep drifted from the blocking path at {workers} workers"
            );
        }
        assert_eq!(
            sched.service().stats(),
            blocking_stats,
            "service statistics drifted at {workers} workers"
        );
        let stats = sched.stats();
        assert_eq!(stats.submitted, stream.len() as u64);
        assert_eq!(stats.completed, stream.len() as u64);
        assert!(stats.is_balanced(), "{stats:?}");
    }
}

// ---------------------------------------------------------------------------
// Deadlines and mid-flight cancellation.
// ---------------------------------------------------------------------------

#[test]
fn an_already_expired_deadline_resolves_to_deadline_exceeded() {
    let sched = Scheduler::new(serial_service(), SchedConfig::default().workers(1));
    let ticket = sched
        .submit(
            &[lenet_cell(16, 1)],
            SubmitOpts::default().deadline(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(ticket.wait().unwrap_err(), TicketError::DeadlineExceeded);
    let stats = sched.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.cancelled, 1, "expired is a subset of cancelled");
    assert!(stats.is_balanced(), "{stats:?}");
    assert_eq!(
        stats.service.computed, 0,
        "an expired ticket's cells are never computed"
    );
}

#[test]
fn cancelling_a_queued_ticket_discards_its_work_while_in_flight_cells_finish() {
    let service = serial_service();
    let sched = Scheduler::new(Arc::clone(&service), SchedConfig::default().workers(1));

    // Occupy the single worker with an expensive cell...
    let blocker_cell = Cell {
        workload: Workload::ResNet.into(),
        comm: CommMethod::P2p,
        batch: 64,
        gpus: 8,
        scaling: ScalingMode::Strong,
        platform: Platform::Dgx1,
        fault: FaultScenario::Healthy,
    };
    let blocker = sched
        .submit(&[blocker_cell], SubmitOpts::default())
        .unwrap();
    wait_until(
        Duration::from_secs(30),
        "worker to pick up the blocker",
        || sched.stats().dequeued_cells == 1,
    );

    // ...queue a cheap target behind it, then cancel the target while
    // the worker is still busy.
    let target = sched
        .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
        .unwrap();
    assert!(target.cancel(), "first cancel wins");
    assert!(!target.cancel(), "second cancel is a no-op");
    assert_eq!(target.wait().unwrap_err(), TicketError::Cancelled);
    assert_eq!(target.poll(), TicketStatus::Failed(TicketError::Cancelled));

    // The in-flight blocker is unaffected and still completes.
    assert_eq!(blocker.wait().expect("blocker completes").len(), 1);
    wait_until(Duration::from_secs(10), "queue to drain", || {
        sched.queue_depth() == 0
    });
    let stats = sched.stats();
    assert_eq!(
        stats.service.computed, 1,
        "the cancelled target's cell must never be computed"
    );
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert!(stats.is_balanced(), "{stats:?}");
}

// ---------------------------------------------------------------------------
// Backpressure through the public API.
// ---------------------------------------------------------------------------

#[test]
fn queue_overflow_is_a_typed_rejection_with_no_side_effects() {
    let service = serial_service();
    let sched = Scheduler::new(
        Arc::clone(&service),
        SchedConfig::default().workers(1).max_depth(0),
    );
    let err = sched
        .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::QueueFull {
            depth: 0,
            max_depth: 0
        }
    );
    let stats = sched.stats();
    assert_eq!(stats.rejected, 1);
    assert!(stats.is_balanced(), "{stats:?}");
    assert_eq!(
        stats.service.requests, 0,
        "a rejected submit is not a service request"
    );
    assert_eq!(stats.enqueued_cells, 0);
}
