//! "Workloads as data" integration suite: the checked-in `.workload`
//! files must stay byte-identical to their Rust builders, the lowered
//! data path must reproduce the builder path's `EpochReport`s across
//! the full Fig. 3 grid at every executor, the text format must
//! round-trip exactly, and every malformed input must come back as a
//! typed error naming the offending line.

use std::collections::BTreeMap;
use std::sync::Arc;

use dgx1_repro::prelude::*;
use proptest::prelude::*;
use voltascope::grid::{epoch_reports, GridOut};
use voltascope::workloads::{self, WorkloadSel};
use voltascope_train::EpochReport as Report;
use voltascope_workload::{LayerSpec, ParseErrorKind, WorkloadSpec, KNOWN_KINDS};

/// The zoo roster with the stable file stems `export_workloads` uses.
fn zoo_exports() -> Vec<(&'static str, Model)> {
    vec![
        ("lenet", zoo::lenet()),
        ("alexnet", zoo::alexnet()),
        ("googlenet", zoo::googlenet()),
        ("resnet", zoo::resnet50()),
        ("inception_v3", zoo::inception_v3()),
        ("vgg16", zoo::vgg16()),
    ]
}

#[test]
fn zoo_workload_files_match_builder_exports_byte_for_byte() {
    let dir = workloads::workload_dir();
    for (stem, model) in zoo_exports() {
        let path = dir.join(format!("{stem}.workload"));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}; run export_workloads", path.display()));
        let spec = WorkloadSpec::from_model(&model);
        assert_eq!(on_disk, spec.to_text(), "{stem}.workload drifted");
        assert_eq!(WorkloadSpec::parse(&on_disk).unwrap(), spec, "{stem}");
    }
}

/// Flattens a report grid into a workload-name-keyed map so grids over
/// zoo selectors and data selectors (different `Cell` keys, same
/// physics) can be compared cell-for-cell via their `Debug` output.
fn keyed(out: &GridOut<Arc<Report>>) -> BTreeMap<(String, &'static str, usize, usize), String> {
    out.iter()
        .map(|(cell, report)| {
            (
                (
                    cell.workload.name().to_string(),
                    cell.comm.name(),
                    cell.batch,
                    cell.gpus,
                ),
                format!("{report:?}"),
            )
        })
        .collect()
}

#[test]
fn data_path_reports_match_builders_across_fig3_grid_at_1_2_8_threads() {
    let h = Harness::paper();
    let data_sels: Vec<WorkloadSel> = Workload::ALL
        .iter()
        .map(|w| {
            workloads::find_data(w.name())
                .unwrap_or_else(|| panic!("{} missing from workloads/", w.name()))
                .into()
        })
        .collect();
    let builder_ref = keyed(&epoch_reports(&h, &GridSpec::paper(), Executor::Serial));
    assert_eq!(builder_ref.len(), 120, "full fig3 grid");
    for exec in [
        Executor::Serial,
        Executor::Parallel { threads: 2 },
        Executor::Parallel { threads: 8 },
    ] {
        let spec = GridSpec::paper().workloads(data_sels.clone());
        let data = keyed(&epoch_reports(&h, &spec, exec));
        assert_eq!(data, builder_ref, "data path diverged under {exec:?}");
    }
}

/// A generator over valid specs: arbitrary dims, stage axis, and layer
/// rows (names synthesised by index, so uniqueness holds; stages
/// reduced modulo the axis, so they are always in range).
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let layer = (
        (0usize..KNOWN_KINDS.len(), 0usize..8, proptest::bool::ANY),
        (1u64..1_000_000_000, 1u64..1_000_000_000),
        (0u64..100_000_000, 0u64..100_000_000, 0u64..1_000_000_000),
    );
    (
        0u64..1_000_000,
        1usize..7,
        proptest::collection::vec(1usize..257, 1..5),
        proptest::collection::vec(layer, 1..13),
    )
        .prop_map(|(name_seed, stages, input_dims, rows)| WorkloadSpec {
            version: 1,
            name: format!("Gen-{name_seed}"),
            input_dims,
            pipeline_stages: stages,
            layers: rows
                .into_iter()
                .enumerate()
                .map(
                    |(i, ((kind, stage, tc), (fp, bp), (inb, outb, pb)))| LayerSpec {
                        name: format!("l{i}"),
                        kind: KNOWN_KINDS[kind].to_string(),
                        stage: stage % stages,
                        fp_flops: fp,
                        bp_flops: bp,
                        in_bytes: inb,
                        out_bytes: outb,
                        param_bytes: pb,
                        tensor_cores: tc,
                        deps: None,
                    },
                )
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_reserialize_parse_round_trips_exactly(spec in arb_spec()) {
        let text = spec.to_text();
        let parsed = match WorkloadSpec::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("canonical text rejected: {e}"))),
        };
        prop_assert_eq!(&parsed, &spec);
        // Canonical text is a fixed point of parse → to_text.
        prop_assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn comments_and_blank_lines_do_not_change_the_parse(spec in arb_spec()) {
        let canonical = spec.to_text();
        let mut noisy = String::from("# leading comment\n\n");
        for line in canonical.lines() {
            noisy.push_str(line);
            noisy.push_str("\n# interleaved comment\n\n");
        }
        let parsed = match WorkloadSpec::parse(&noisy) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("noisy text rejected: {e}"))),
        };
        prop_assert_eq!(parsed, spec);
    }
}

#[test]
fn parser_errors_name_the_offending_line() {
    // Truncated file: `end` never arrives.
    let e = WorkloadSpec::parse("workload v1\nname T\ninput 4\n").unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::Truncated);
    assert_eq!(e.line, 4);

    // Unknown layer kind, pointing at the kind token's column.
    let e =
        WorkloadSpec::parse("workload v1\nname T\ninput 4\nlayer a softmax 0 1 1 1 1 4 0\nend\n")
            .unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::UnknownLayerKind("softmax".into()));
    assert_eq!((e.line, e.column), (4, 9));

    // Duplicate layer name, pointing at the second declaration.
    let e = WorkloadSpec::parse(
        "workload v1\nname T\ninput 4\nlayer a fc 0 1 1 1 1 4 0\nlayer a fc 0 1 1 1 1 4 0\nend\n",
    )
    .unwrap_err();
    assert_eq!(e.kind, ParseErrorKind::DuplicateLayer("a".into()));
    assert_eq!(e.line, 5);

    // Pipeline stage beyond the declared axis.
    let e = WorkloadSpec::parse(
        "workload v1\nname T\ninput 4\naxis pipeline 2\nlayer a fc 5 1 1 1 1 4 0\nend\n",
    )
    .unwrap_err();
    assert_eq!(
        e.kind,
        ParseErrorKind::StageOutOfRange {
            stage: 5,
            stages: 2
        }
    );
    assert_eq!(e.line, 5);

    // Every error Display names its line for the CI log.
    assert!(e.to_string().starts_with("line 5, "));
}
