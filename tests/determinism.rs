//! Determinism and stability: the whole stack must produce identical
//! results across runs — the property that makes the reproduction
//! tables trustworthy.

use dgx1_repro::prelude::*;

#[test]
fn epoch_simulation_is_bit_deterministic() {
    let h = Harness::paper();
    let model = Workload::GoogLeNet.build();
    let a = h.epoch(&model, 16, 4, CommMethod::Nccl, ScalingMode::Strong);
    let b = h.epoch(&model, 16, 4, CommMethod::Nccl, ScalingMode::Strong);
    assert_eq!(a.epoch_time, b.epoch_time);
    assert_eq!(a.iter_time, b.iter_time);
    assert_eq!(a.fp_bp_iter, b.fp_bp_iter);
    assert_eq!(a.wu_iter, b.wu_iter);
    assert_eq!(a.sync_wall_iter, b.sync_wall_iter);
    assert_eq!(a.iter_trace.len(), b.iter_trace.len());
    dgx1_repro::sim::check::assert_trace_invariants(&a.iter_trace);
}

#[test]
fn measurement_protocol_reproduces_exactly() {
    let h = Harness::paper();
    let m1 = h.training_time(Workload::LeNet, 16, 2, CommMethod::P2p, ScalingMode::Strong);
    let m2 = h.training_time(Workload::LeNet, 16, 2, CommMethod::P2p, ScalingMode::Strong);
    assert_eq!(m1, m2);
    assert!(m1.stddev_s > 0.0, "repetition jitter should be visible");
    assert!(m1.stddev_s < 0.1 * m1.mean_s, "jitter should stay small");
}

#[test]
fn model_construction_and_init_are_deterministic() {
    let a = Workload::ResNet.build();
    let b = Workload::ResNet.build();
    assert_eq!(a.param_count(), b.param_count());
    let pa = a.init_params(77);
    let pb = b.init_params(77);
    for (x, y) in pa.iter().zip(pb.iter()) {
        assert_eq!(x.data(), y.data());
    }
    // Different seeds give different weights.
    let pc = a.init_params(78);
    let same = pa.iter().zip(pc.iter()).all(|(x, y)| x.data() == y.data());
    assert!(!same);
}

#[test]
fn fig3_parallel_matches_serial_exactly() {
    // The grid engine's core contract: for any thread count, the
    // parallel executor returns the same Measurements, in the same
    // order, as a serial sweep — so the rendered tables are
    // byte-identical too.
    let h = Harness::paper();
    let workloads = [Workload::LeNet, Workload::AlexNet];
    let serial = experiments::fig3::grid_with(&h, &workloads, Executor::Serial);
    let serial_table = experiments::fig3::render(&serial).render();
    for threads in [1, 2, 8] {
        let parallel = experiments::fig3::grid_with(&h, &workloads, Executor::Parallel { threads });
        assert_eq!(serial.len(), parallel.len(), "threads = {threads}");
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.workload, p.workload, "threads = {threads}");
            assert_eq!(s.comm, p.comm, "threads = {threads}");
            assert_eq!(s.batch, p.batch, "threads = {threads}");
            assert_eq!(s.gpus, p.gpus, "threads = {threads}");
            assert_eq!(s.time, p.time, "threads = {threads}: Measurement drift");
        }
        assert_eq!(
            serial_table,
            experiments::fig3::render(&parallel).render(),
            "threads = {threads}: rendered table drift"
        );
    }
}

#[test]
fn table4_parallel_matches_serial_exactly() {
    let h = Harness::paper();
    let workloads = [Workload::LeNet, Workload::GoogLeNet];
    let serial = experiments::memory::table4_with(&h, &workloads, Executor::Serial);
    let serial_table = experiments::memory::render(&serial).render();
    for threads in [1, 2, 8] {
        let parallel =
            experiments::memory::table4_with(&h, &workloads, Executor::Parallel { threads });
        assert_eq!(
            serial_table,
            experiments::memory::render(&parallel).render(),
            "threads = {threads}: rendered table drift"
        );
    }
}

#[test]
fn jitter_salt_depends_on_cell_not_execution_order() {
    // Shrinking the grid (or reordering it) must not change any cell's
    // measurement: the jitter salt is a function of the cell key alone.
    let h = Harness::paper();
    let full = experiments::fig3::grid_with(
        &h,
        &[Workload::LeNet, Workload::AlexNet],
        Executor::machine(),
    );
    let reduced = experiments::fig3::grid_with(&h, &[Workload::AlexNet], Executor::Serial);
    for r in &reduced {
        let f = full
            .iter()
            .find(|c| {
                c.workload == r.workload
                    && c.comm == r.comm
                    && c.batch == r.batch
                    && c.gpus == r.gpus
            })
            .expect("cell present in superset grid");
        assert_eq!(f.time, r.time);
    }
}

#[test]
fn traces_are_identical_across_runs() {
    let h = Harness::paper();
    let model = Workload::LeNet.build();
    let a = h.epoch(&model, 16, 2, CommMethod::P2p, ScalingMode::Strong);
    let b = h.epoch(&model, 16, 2, CommMethod::P2p, ScalingMode::Strong);
    for (x, y) in a.iter_trace.events().iter().zip(b.iter_trace.events()) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.start, y.start);
        assert_eq!(x.end, y.end);
    }
}
