//! Service-layer contract: the cached sweep front end must be
//! single-flight (each cell computed exactly once no matter how many
//! concurrent requests ask for it), byte-identical to the direct grid
//! path at any thread count, and keyed on the *full* cell — platform
//! and fault variants may never answer each other's requests.

use std::sync::{Arc, Barrier};

use dgx1_repro::prelude::*;
use voltascope::grid::epoch_reports;

fn cell(workload: Workload, comm: CommMethod, batch: usize, gpus: usize) -> Cell {
    Cell {
        workload: workload.into(),
        comm,
        batch,
        gpus,
        scaling: ScalingMode::Strong,
        platform: Platform::Dgx1,
        fault: FaultScenario::Healthy,
    }
}

#[test]
fn concurrent_identical_requests_compute_each_cell_exactly_once() {
    let service = Arc::new(GridService::with_executor(
        Harness::paper(),
        Executor::Parallel { threads: 2 },
    ));
    let cells: Vec<Cell> = [1, 2, 4, 8]
        .into_iter()
        .map(|gpus| cell(Workload::LeNet, CommMethod::P2p, 16, gpus))
        .collect();
    let requesters = 8;
    let barrier = Arc::new(Barrier::new(requesters));
    let handles: Vec<_> = (0..requesters)
        .map(|_| {
            let service = Arc::clone(&service);
            let cells = cells.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.run_cells(&cells)
            })
        })
        .collect();
    let results: Vec<Vec<Arc<EpochReport>>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The execution counter is the proof: 8 overlapping requests for
    // the same 4 cells performed exactly 4 cell computations.
    let stats = service.stats();
    assert_eq!(stats.computed, cells.len() as u64, "duplicate computation");
    assert_eq!(stats.requests, requesters as u64);
    assert_eq!(stats.cells, (requesters * cells.len()) as u64);
    assert_eq!(
        stats.hits + stats.coalesced + stats.repeats + stats.computed,
        stats.cells,
        "every requested cell classified exactly once"
    );
    assert_eq!(
        stats.repeats, 0,
        "no request contained intra-request duplicates"
    );
    // Every requester got the same shared reports.
    for reports in &results {
        assert_eq!(reports.len(), cells.len());
        for (a, b) in reports.iter().zip(results[0].iter()) {
            assert!(Arc::ptr_eq(a, b), "requests must share cached reports");
        }
    }
}

#[test]
fn service_reports_match_the_direct_grid_path_at_every_thread_count() {
    let h = Harness::paper();
    let spec = GridSpec::paper()
        .workloads([Workload::LeNet])
        .batches([16, 32])
        .gpu_counts([1, 4]);
    let direct = epoch_reports(&h, &spec, Executor::Serial);
    for threads in [1usize, 2, 8] {
        let service = GridService::with_executor(h.clone(), Executor::Parallel { threads });
        let via_service = service.sweep(&spec);
        assert_eq!(via_service.cells(), direct.cells());
        for ((cell, s), (_, d)) in via_service.iter().zip(direct.iter()) {
            assert_eq!(s.iterations, d.iterations, "{cell:?}");
            assert_eq!(s.iter_time, d.iter_time, "{cell:?}");
            assert_eq!(s.epoch_time, d.epoch_time, "{cell:?}");
            assert_eq!(s.fp_bp_iter, d.fp_bp_iter, "{cell:?}");
            assert_eq!(s.wu_iter, d.wu_iter, "{cell:?}");
            assert_eq!(s.sync_wall_iter, d.sync_wall_iter, "{cell:?}");
            assert_eq!(s.compute_utilization, d.compute_utilization, "{cell:?}");
            assert_eq!(s.iter_trace.len(), d.iter_trace.len(), "{cell:?}");
        }
    }
}

#[test]
fn rendered_tables_are_byte_identical_through_the_service() {
    let h = Harness::paper();
    let workloads = [Workload::LeNet];
    let direct = experiments::fig3::render(&experiments::fig3::grid_with(
        &h,
        &workloads,
        Executor::Serial,
    ))
    .render();
    for threads in [1usize, 2, 8] {
        let service = GridService::with_executor(h.clone(), Executor::Parallel { threads });
        let via_service =
            experiments::fig3::render(&experiments::fig3::grid_service(&service, &workloads))
                .render();
        assert_eq!(direct, via_service, "threads = {threads}");
    }
}

#[test]
fn cache_keys_distinguish_platform_and_fault_variants() {
    let service = GridService::with_executor(Harness::paper(), Executor::Serial);
    let baseline = cell(Workload::AlexNet, CommMethod::Nccl, 16, 8);
    let variants = [
        baseline,
        Cell {
            platform: Platform::PcieOnly,
            ..baseline
        },
        Cell {
            fault: FaultScenario::StragglerGpu,
            ..baseline
        },
        Cell {
            fault: FaultScenario::DeadNvLink,
            ..baseline
        },
    ];
    let reports = service.run_cells(&variants);

    // Four distinct keys: four computations, no cross-variant hits.
    let stats = service.stats();
    assert_eq!(stats.computed, variants.len() as u64);
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.coalesced, 0);

    // And the variants genuinely simulate different systems: every
    // epoch time differs from the baseline's.
    let base_epoch = reports[0].epoch_time;
    for (variant, report) in variants.iter().zip(reports.iter()).skip(1) {
        assert_ne!(
            report.epoch_time, base_epoch,
            "variant {variant:?} must not share the baseline's result"
        );
    }

    // Re-requesting any variant is now a pure cache hit.
    let again = service.run_cells(&variants);
    assert_eq!(service.stats().computed, variants.len() as u64);
    assert_eq!(service.stats().hits, variants.len() as u64);
    for (a, b) in reports.iter().zip(again.iter()) {
        assert!(Arc::ptr_eq(a, b));
    }
}
