//! Sanity properties of the timing model, swept across configurations:
//! invariants that must hold for *any* calibration, not just the
//! paper's (these guard the model against regressions during tuning).

use dgx1_repro::prelude::*;

fn report(h: &Harness, batch: usize, gpus: usize, comm: CommMethod) -> EpochReport {
    let model = Workload::LeNet.build();
    h.epoch(&model, batch, gpus, comm, ScalingMode::Strong)
}

#[test]
fn iteration_decomposition_is_exact() {
    let h = Harness::paper();
    for comm in CommMethod::ALL {
        for gpus in [1usize, 2, 4, 8] {
            let r = report(&h, 16, gpus, comm);
            assert_eq!(r.iter_time, r.fp_bp_iter + r.wu_iter, "{comm} g{gpus}");
        }
    }
}

#[test]
fn per_iteration_time_grows_with_batch() {
    let h = Harness::paper();
    for comm in CommMethod::ALL {
        let mut last = None;
        for batch in [16usize, 32, 64] {
            let r = report(&h, batch, 4, comm);
            if let Some(prev) = last {
                assert!(r.iter_time >= prev, "{comm}: iter time fell with batch");
            }
            last = Some(r.iter_time);
        }
    }
}

#[test]
fn epoch_time_falls_with_batch_and_gpus() {
    let h = Harness::paper();
    for comm in CommMethod::ALL {
        let grid: Vec<Vec<f64>> = [16usize, 32, 64]
            .iter()
            .map(|&b| {
                [1usize, 2, 4, 8]
                    .iter()
                    .map(|&g| report(&h, b, g, comm).epoch_time.as_secs_f64())
                    .collect()
            })
            .collect();
        for row in &grid {
            for pair in row.windows(2) {
                assert!(pair[1] < pair[0], "{comm}: more GPUs slower: {row:?}");
            }
        }
        for b in 0..2 {
            for (small, big) in grid[b].iter().zip(&grid[b + 1]) {
                assert!(big < small, "{comm}: bigger batch slower");
            }
        }
    }
}

#[test]
fn shares_and_utilisation_are_fractions() {
    let h = Harness::paper();
    for comm in CommMethod::ALL {
        for gpus in [1usize, 8] {
            let r = report(&h, 32, gpus, comm);
            assert!(r.compute_utilization > 0.0 && r.compute_utilization <= 1.0);
            assert!(r.sync_percent() >= 0.0 && r.sync_percent() <= 100.0);
            assert!(r.wu_iter <= r.iter_time);
            assert!(r.sync_wall_iter <= r.iter_time);
        }
    }
}

#[test]
fn weak_scaling_never_changes_the_iteration() {
    // Weak scaling only multiplies the iteration count.
    let h = Harness::paper();
    let model = Workload::LeNet.build();
    for gpus in [2usize, 8] {
        let strong = h.epoch(&model, 16, gpus, CommMethod::Nccl, ScalingMode::Strong);
        let weak = h.epoch(&model, 16, gpus, CommMethod::Nccl, ScalingMode::Weak);
        assert_eq!(strong.iter_time, weak.iter_time);
        assert_eq!(weak.iterations, strong.iterations * gpus as u64);
    }
}

#[test]
fn trace_category_inventory_is_complete() {
    // Every task category the simulator emits is one the profiler
    // understands (fp/bp/wu*/h2d/api*/marker/setup), and every emitted
    // trace is structurally well-formed.
    let h = Harness::paper();
    for comm in CommMethod::ALL {
        let r = report(&h, 16, 4, comm);
        dgx1_repro::sim::check::assert_trace_invariants(&r.iter_trace);
        for e in r.iter_trace.events() {
            let c = e.category.as_str();
            let known = c == "fp"
                || c == "bp"
                || c == "h2d"
                || c == "marker"
                || c == "setup"
                || c.starts_with("wu.")
                || c.starts_with("api.")
                || c.starts_with("setup.");
            assert!(known, "unknown trace category {c:?}");
        }
    }
}
