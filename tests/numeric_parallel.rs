//! Numeric integration tests: the data-parallel training pipeline
//! computes the same mathematics regardless of how it is distributed.

use dgx1_repro::prelude::*;
use proptest::prelude::*;

fn tiny_convnet() -> Model {
    use dgx1_repro::dnn::{Conv2d, Dense, MaxPool2d, ModelBuilder, Relu, Source};
    let mut b = ModelBuilder::new("tiny", Shape::new([1, 1, 8, 8]));
    let c = b.add("conv", Conv2d::new(1, 4, 3, 1, 1), &[Source::Input]);
    let r = b.add("relu", Relu, &[Source::Node(c)]);
    let p = b.add("pool", MaxPool2d::new(2, 2, 0), &[Source::Node(r)]);
    let f = b.add("fc", Dense::new(4 * 16, 5), &[Source::Node(p)]);
    b.finish(f)
}

#[test]
fn replica_count_does_not_change_the_trajectory() {
    // 1, 2, 4 and 8 replicas over the same effective batch follow the
    // same loss trajectory and end with (nearly) the same weights.
    let model = tiny_convnet();
    let data = SyntheticDataset::new(Shape::new([1, 1, 8, 8]), 5, 80, 11);
    let mut trainers: Vec<DataParallel> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| DataParallel::new(&model, n, Sgd::new(0.05).momentum(0.9), 3))
        .collect();
    for step in 0..8 {
        let (x, labels) = data.batch(step * 16, 16);
        let losses: Vec<f32> = trainers.iter_mut().map(|t| t.step(&x, &labels)).collect();
        for l in &losses[1..] {
            assert!(
                (l - losses[0]).abs() < 1e-4,
                "step {step}: losses diverged: {losses:?}"
            );
        }
    }
    let reference = trainers[0].params(0);
    for t in &trainers[1..] {
        assert!(t.replicas_in_sync());
        for (a, b) in reference.iter().zip(t.params(0).iter()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-3, "weights diverged: {x} vs {y}");
            }
        }
    }
}

#[test]
fn every_zoo_model_backpropagates_nonzero_gradients() {
    // Smoke the real execution path of the two small zoo models (the
    // ImageNet-scale models are exercised for shape/accounting; their
    // full CPU execution lives in the release-mode benches).
    use dgx1_repro::dnn::softmax_cross_entropy;
    let model = zoo::lenet();
    let params = model.init_params(5);
    let x = Tensor::full(Shape::new([2, 1, 28, 28]), 0.3);
    let acts = model.forward(&params, &x);
    let (loss, grad) = softmax_cross_entropy(model.output(&acts), &[1, 7]);
    assert!(loss.is_finite() && loss > 0.0);
    let grads = model.backward(&params, &x, &acts, &grad);
    let energy: f32 = grads.iter().map(|t| t.max_abs()).sum();
    assert!(energy > 0.0, "no gradient signal reached the parameters");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Semantic ring AllReduce over model-sized flattened gradients
    /// equals the direct elementwise sum, for any replica count.
    #[test]
    fn allreduce_matches_reference(replicas in 1usize..8, seed in 0u64..500) {
        let model = tiny_convnet();
        let data = SyntheticDataset::new(Shape::new([1, 1, 8, 8]), 5, 64, seed);
        use dgx1_repro::dnn::softmax_cross_entropy;
        use dgx1_repro::train::flatten;

        let params = model.init_params(seed);
        let mut buffers = Vec::new();
        for r in 0..replicas {
            let (x, labels) = data.batch(r * 4, 4);
            let acts = model.forward(&params, &x);
            let (_, g) = softmax_cross_entropy(model.output(&acts), &labels);
            buffers.push(flatten(&model.backward(&params, &x, &acts, &g)));
        }
        let expect: Vec<f32> = (0..buffers[0].len())
            .map(|i| buffers.iter().map(|b| b[i]).sum())
            .collect();
        dgx1_repro::comm::semantic::ring_all_reduce(&mut buffers);
        for b in &buffers {
            for (got, want) in b.iter().zip(&expect) {
                prop_assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{got} vs {want}"
                );
            }
        }
    }

    /// Sharding any batch across replicas preserves the averaged loss.
    #[test]
    fn sharded_loss_equals_full_batch_loss(replicas in 1usize..5, start in 0usize..40) {
        let model = tiny_convnet();
        let data = SyntheticDataset::new(Shape::new([1, 1, 8, 8]), 5, 64, 9);
        let batch = replicas * 4;
        let (x, labels) = data.batch(start, batch);
        let mut multi = DataParallel::new(&model, replicas, Sgd::new(0.01), 2);
        let mut single = DataParallel::new(&model, 1, Sgd::new(0.01), 2);
        let lm = multi.step(&x, &labels);
        let ls = single.step(&x, &labels);
        prop_assert!((lm - ls).abs() < 1e-4, "{lm} vs {ls}");
    }
}

#[test]
fn training_reaches_usable_accuracy_on_synthetic_data() {
    // End-to-end learning check with the accuracy metric: real LeNet,
    // 2 replicas, synthetic 4-class data — training accuracy must climb
    // well above chance.
    use dgx1_repro::dnn::accuracy;
    let model = zoo::lenet();
    let data = SyntheticDataset::new(Shape::new([1, 1, 28, 28]), 4, 32, 21);
    let mut trainer = DataParallel::new(&model, 2, Sgd::new(0.03).momentum(0.9), 13);
    let mut acc = 0.0;
    for step in 0..120 {
        let (x, labels) = data.batch(step * 16, 16);
        trainer.step(&x, &labels);
        if step % 20 == 19 {
            let (xe, le) = data.batch(0, 32);
            let acts = model.forward(trainer.params(0), &xe);
            acc = accuracy(model.output(&acts), &le);
            if acc > 0.6 {
                break;
            }
        }
    }
    assert!(acc > 0.6, "train accuracy only {acc:.2} after 120 steps");
}
