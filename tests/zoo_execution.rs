//! Heavy real-execution tests of the ImageNet-scale zoo models. These
//! run full forward passes with the hand-written CPU kernels at native
//! input resolution, so they are `#[ignore]`d by default; run with
//! `cargo test --release --test zoo_execution -- --ignored`.

use dgx1_repro::prelude::*;

fn forward_smoke(model: &Model, classes: usize) {
    let params = model.init_params(11);
    let input = Tensor::full(model.input_shape().clone(), 0.1);
    let acts = model.forward(&params, &input);
    let out = model.output(&acts);
    assert_eq!(out.shape().dims()[1..].iter().product::<usize>(), classes);
    assert!(
        out.data().iter().all(|v| v.is_finite()),
        "{}: non-finite logits",
        model.name()
    );
    // He-initialised networks should not collapse to a constant output.
    let spread = out.max_abs();
    assert!(spread > 0.0, "{}: zero output", model.name());
}

#[test]
#[ignore = "full-resolution CPU forward pass; run with --ignored in release mode"]
fn alexnet_full_resolution_forward() {
    forward_smoke(&zoo::alexnet(), 1000);
}

#[test]
#[ignore = "full-resolution CPU forward pass; run with --ignored in release mode"]
fn googlenet_full_resolution_forward() {
    forward_smoke(&zoo::googlenet(), 1000);
}

#[test]
#[ignore = "full-resolution CPU forward pass; run with --ignored in release mode"]
fn resnet50_full_resolution_forward() {
    forward_smoke(&zoo::resnet50(), 1000);
}

#[test]
#[ignore = "full-resolution CPU forward pass; run with --ignored in release mode"]
fn inception_v3_full_resolution_forward() {
    forward_smoke(&zoo::inception_v3(), 1000);
}

#[test]
#[ignore = "full-resolution CPU forward pass; run with --ignored in release mode"]
fn vgg16_full_resolution_forward() {
    forward_smoke(&zoo::vgg16(), 1000);
}

#[test]
#[ignore = "full-resolution CPU forward+backward; run with --ignored in release mode"]
fn resnet50_full_train_step() {
    // One complete forward + backward + SGD update of ResNet-50 at
    // native resolution with real numerics.
    use dgx1_repro::dnn::softmax_cross_entropy;
    use dgx1_repro::train::SgdState;
    let model = zoo::resnet50();
    let mut params = model.init_params(3);
    let x = Tensor::full(Shape::new([1, 3, 224, 224]), 0.1);
    let acts = model.forward(&params, &x);
    let (loss, grad) = softmax_cross_entropy(model.output(&acts), &[7]);
    assert!(loss.is_finite());
    let grads = model.backward(&params, &x, &acts, &grad);
    let energy: f32 = grads.iter().map(|t| t.max_abs()).sum();
    assert!(energy > 0.0);
    let sgd = Sgd::new(0.01);
    let mut state = SgdState::default();
    sgd.step(&mut params, &grads, &mut state);
}
