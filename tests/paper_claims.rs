//! Cross-crate integration tests: the paper's quantitative claims,
//! checked end-to-end through the full stack (zoo -> trainer ->
//! simulator -> profiler). Each test cites the paper section it covers.

use dgx1_repro::prelude::*;

fn epoch_secs(h: &Harness, w: Workload, batch: usize, gpus: usize, comm: CommMethod) -> f64 {
    h.epoch(&w.build(), batch, gpus, comm, ScalingMode::Strong)
        .epoch_time
        .as_secs_f64()
}

#[test]
fn v_a_lenet_strong_scaling_is_sublinear() {
    // SS V-A: P2P speedups of 1.62/2.37/3.36 at 2/4/8 GPUs: clear gains,
    // clearly below linear.
    let h = Harness::paper();
    let t1 = epoch_secs(&h, Workload::LeNet, 16, 1, CommMethod::P2p);
    for (gpus, (lo, hi)) in [(2, (1.1, 2.0)), (4, (1.4, 3.4)), (8, (1.7, 5.5))] {
        let s = t1 / epoch_secs(&h, Workload::LeNet, 16, gpus, CommMethod::P2p);
        assert!(
            (lo..hi).contains(&s),
            "LeNet {gpus}-GPU speedup {s:.2} outside [{lo}, {hi})"
        );
        assert!(s < gpus as f64, "speedup must be sublinear");
    }
}

#[test]
fn v_a_p2p_beats_nccl_for_lenet_everywhere() {
    // SS V-A: "P2P outperforms NCCL for this workload."
    let h = Harness::paper();
    for gpus in [1usize, 2, 4, 8] {
        for batch in [16usize, 64] {
            let p2p = epoch_secs(&h, Workload::LeNet, batch, gpus, CommMethod::P2p);
            let nccl = epoch_secs(&h, Workload::LeNet, batch, gpus, CommMethod::Nccl);
            assert!(
                p2p < nccl,
                "LeNet b{batch} g{gpus}: P2P {p2p:.2}s vs NCCL {nccl:.2}s"
            );
        }
    }
}

#[test]
fn v_a_nccl_overtakes_p2p_for_deep_networks_at_scale() {
    // SS V-A: GoogLeNet trains 1.1x / 1.2x faster with NCCL at 4 / 8
    // GPUs; ResNet and Inception-v3 show 1.1x / 1.25x.
    let h = Harness::paper();
    for w in [Workload::GoogLeNet, Workload::ResNet, Workload::InceptionV3] {
        for (gpus, min_gain) in [(4usize, 1.0), (8, 1.05)] {
            let p2p = epoch_secs(&h, w, 16, gpus, CommMethod::P2p);
            let nccl = epoch_secs(&h, w, 16, gpus, CommMethod::Nccl);
            let gain = p2p / nccl;
            assert!(
                gain > min_gain,
                "{w} g{gpus}: NCCL gain {gain:.3} <= {min_gain}"
            );
            assert!(
                gain < 1.8,
                "{w} g{gpus}: NCCL gain {gain:.3} implausibly large"
            );
        }
    }
}

#[test]
fn v_a_bigger_batches_train_faster_for_every_workload() {
    // SS V-A: "Increasing batch size reduces training time for an epoch
    // ... for all the workloads we evaluated."
    let h = Harness::paper();
    for w in Workload::ALL {
        for comm in CommMethod::ALL {
            let b16 = epoch_secs(&h, w, 16, 4, comm);
            let b32 = epoch_secs(&h, w, 32, 4, comm);
            let b64 = epoch_secs(&h, w, 64, 4, comm);
            assert!(b32 < b16, "{w}/{comm}: b32 {b32:.1} !< b16 {b16:.1}");
            assert!(b64 < b32, "{w}/{comm}: b64 {b64:.1} !< b32 {b32:.1}");
        }
    }
}

#[test]
fn v_b_nccl_single_gpu_overhead_near_paper_value() {
    // SS V-B: "training with 1 GPU suffers from 21.8% additional NCCL
    // overhead" (LeNet, batch 16).
    let h = Harness::paper();
    let p2p = epoch_secs(&h, Workload::LeNet, 16, 1, CommMethod::P2p);
    let nccl = epoch_secs(&h, Workload::LeNet, 16, 1, CommMethod::Nccl);
    let overhead = 100.0 * (nccl - p2p) / p2p;
    assert!(
        (15.0..30.0).contains(&overhead),
        "LeNet b16 1-GPU NCCL overhead {overhead:.1}% (paper: 21.8%)"
    );
}

#[test]
fn v_b_large_networks_have_flat_small_overhead() {
    // SS V-B / Table II: for the large networks the overhead varies
    // little with batch size and stays small.
    let h = Harness::paper();
    let model = Workload::ResNet.build();
    let mut overheads = Vec::new();
    for batch in [16usize, 32, 64] {
        let p2p = h
            .epoch(&model, batch, 1, CommMethod::P2p, ScalingMode::Strong)
            .epoch_time
            .as_secs_f64();
        let nccl = h
            .epoch(&model, batch, 1, CommMethod::Nccl, ScalingMode::Strong)
            .epoch_time
            .as_secs_f64();
        overheads.push(100.0 * (nccl - p2p) / p2p);
    }
    let spread = overheads.iter().fold(f64::MIN, |a, &b| a.max(b))
        - overheads.iter().fold(f64::MAX, |a, &b| a.min(b));
    assert!(
        spread < 4.5,
        "ResNet overhead spread {spread:.1} (paper: < 3.6)"
    );
    assert!(
        overheads.iter().all(|&o| o < 10.0),
        "overheads {overheads:?}"
    );
}

#[test]
fn v_c_fp_bp_dominates_and_wu_scales() {
    // SS V-C: computation dominates training; WU-per-epoch shrinks
    // roughly linearly from 2 to 8 GPUs.
    let h = Harness::paper();
    let model = Workload::InceptionV3.build();
    let r2 = h.epoch(&model, 16, 2, CommMethod::Nccl, ScalingMode::Strong);
    let r8 = h.epoch(&model, 16, 8, CommMethod::Nccl, ScalingMode::Strong);
    assert!(r2.fp_bp_epoch() > r2.wu_epoch());
    assert!(r8.fp_bp_epoch() > r8.wu_epoch());
    let wu_ratio = r2.wu_epoch().as_secs_f64() / r8.wu_epoch().as_secs_f64();
    assert!(
        (1.5..6.0).contains(&wu_ratio),
        "WU epoch shrank by {wu_ratio:.2} from 2 to 8 GPUs"
    );
}

#[test]
fn v_c_single_gpu_wu_is_far_below_fp_bp() {
    // SS V-C: single-GPU WU is a simple elementwise update, far below
    // FP+BP ("nearly two orders of magnitude lower").
    let h = Harness::paper();
    let model = Workload::ResNet.build();
    let r = h.epoch(&model, 32, 1, CommMethod::P2p, ScalingMode::Strong);
    let ratio = r.fp_bp_iter.as_secs_f64() / r.wu_iter.as_secs_f64();
    assert!(ratio > 10.0, "FP+BP only {ratio:.1}x WU on one GPU");
}

#[test]
fn v_d_memory_claims() {
    // SS V-D: GPU0 uses more memory than the others; its relative
    // overhead shrinks with batch size; ResNet and Inception-v3 cannot
    // exceed batch 64 per GPU.
    let h = Harness::paper();
    let rows = experiments::memory::table4(&h, &[Workload::GoogLeNet]);
    assert!(rows.iter().all(|r| r.gpu0_gib > r.gpux_gib));
    assert!(rows[0].gpu0_extra_percent > rows[2].gpu0_extra_percent);
    let caps = experiments::memory::max_batch(&h, &[Workload::ResNet, Workload::InceptionV3]);
    assert!(caps.iter().all(|c| c.max_batch == Some(64)));
}

#[test]
fn v_e_weak_scaling_amortises_fixed_overheads() {
    // SS V-E: normalised to 256K images, weak scaling is at least as
    // good as strong scaling for LeNet (fixed overheads amortise).
    let h = Harness::paper();
    let model = Workload::LeNet.build();
    for gpus in [2usize, 4, 8] {
        let strong = h
            .epoch(&model, 32, gpus, CommMethod::Nccl, ScalingMode::Strong)
            .epoch_time
            .as_secs_f64();
        let weak = h
            .epoch(&model, 32, gpus, CommMethod::Nccl, ScalingMode::Weak)
            .epoch_time
            .as_secs_f64()
            / gpus as f64;
        assert!(
            weak <= strong * 1.02,
            "g{gpus}: weak/GPU {weak:.2} vs strong {strong:.2}"
        );
    }
}

#[test]
fn table1_network_census_matches() {
    // Table I: layer mixes and weight scales of the five workloads.
    let stats = experiments::structure::table1(&Workload::ALL);
    let find = |n: &str| stats.iter().find(|s| s.name == n).unwrap();
    assert_eq!(find("LeNet").conv_layers, 2);
    assert_eq!(find("AlexNet").conv_layers, 5);
    assert_eq!(find("AlexNet").weights, 61_100_840);
    assert_eq!(find("GoogLeNet").inception_modules, 9);
    assert_eq!(find("Inception-v3").inception_modules, 11);
    assert_eq!(find("ResNet").inception_modules, 16);
}
