//! Snapshot-format contract: the on-disk report cache must round-trip
//! exactly (save → load → byte-identical re-save), reject every broken
//! or stale file with a typed error instead of panicking, and make a
//! warm-started `GridService` indistinguishable from a cold one.

use std::sync::Arc;

use dgx1_repro::prelude::persist::{decode, decode_entries, encode, encode_entries, PersistError};
use dgx1_repro::prelude::*;
use dgx1_repro::sim::{SimSpan, SimTime, TaskId, Trace, TraceEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministically derives a structurally varied cell from a seed.
fn arb_cell(seed: u64) -> Cell {
    const WORKLOADS: [Workload; 5] = [
        Workload::LeNet,
        Workload::AlexNet,
        Workload::GoogLeNet,
        Workload::InceptionV3,
        Workload::ResNet,
    ];
    const PLATFORMS: [Platform; 5] = [
        Platform::Dgx1,
        Platform::SingleLane,
        Platform::PcieOnly,
        Platform::NvSwitch,
        Platform::ForwardingGpus,
    ];
    const FAULTS: [FaultScenario; 4] = [
        FaultScenario::Healthy,
        FaultScenario::DeadNvLink,
        FaultScenario::StragglerGpu,
        FaultScenario::TwoStragglers,
    ];
    Cell {
        workload: WORKLOADS[(seed % 5) as usize].into(),
        comm: if seed.is_multiple_of(2) {
            CommMethod::P2p
        } else {
            CommMethod::Nccl
        },
        batch: 1 + (seed % 97) as usize,
        gpus: 1 + (seed % 8) as usize,
        scaling: if seed.is_multiple_of(3) {
            ScalingMode::Weak
        } else {
            ScalingMode::Strong
        },
        platform: PLATFORMS[(seed / 5 % 5) as usize],
        fault: FAULTS[(seed / 7 % 4) as usize],
    }
}

/// A synthetic report exercising every encoded field, including
/// resource-less trace events and non-round `f64` bit patterns.
fn arb_report(seed: u64) -> Arc<EpochReport> {
    let mut api_iter = BTreeMap::new();
    for k in 0..(seed % 4) {
        api_iter.insert(
            format!("api.cat{k}"),
            SimSpan::from_nanos(seed.wrapping_mul(31).wrapping_add(k)),
        );
    }
    let events = (0..(seed % 5))
        .map(|i| {
            let start = seed.wrapping_add(17 * i) % 1_000_000;
            TraceEvent {
                task: TaskId::from_index((seed.wrapping_add(i) % 1024) as usize),
                label: format!("it1/k{seed}.{i}"),
                category: ["fp", "wu", "comm"][(i % 3) as usize].to_string(),
                resource: (i.is_multiple_of(2)).then(|| format!("GPU{}.compute", i % 8)),
                start: SimTime::from_nanos(start),
                end: SimTime::from_nanos(start + seed % 5_000),
            }
        })
        .collect();
    Arc::new(EpochReport {
        iterations: 1 + seed % 4096,
        iter_time: SimSpan::from_nanos(seed.wrapping_mul(0x9e37_79b9)),
        epoch_time: SimSpan::from_nanos(seed.wrapping_mul(0x85eb_ca6b)),
        fp_bp_iter: SimSpan::from_nanos(seed / 3),
        wu_iter: SimSpan::from_nanos(seed / 5 + 1),
        api_iter,
        sync_wall_iter: SimSpan::from_nanos(seed / 7),
        compute_utilization: (seed % 1000) as f64 / 997.0,
        iter_trace: Trace::new(events),
        critical_chain: (0..(seed % 4))
            .map(|i| format!("chain{seed}.{i}"))
            .collect(),
    })
}

/// Distinct-cell entry set of `n` entries derived from `seed`.
fn arb_entries(seed: u64, n: usize) -> Vec<(Cell, Arc<EpochReport>)> {
    let mut entries: Vec<(Cell, Arc<EpochReport>)> = Vec::new();
    let mut s = seed;
    while entries.len() < n {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cell = arb_cell(s);
        if entries.iter().all(|(c, _)| *c != cell) {
            entries.push((cell, arb_report(s)));
        }
    }
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load → re-save is byte-identical, and any permutation of
    /// the same entries encodes to the same canonical bytes.
    #[test]
    fn roundtrip_is_byte_identical_and_canonical(seed in 0u64..10_000, n in 0usize..12) {
        let fp = seed ^ 0xfeed;
        let entries = arb_entries(seed, n);
        let bytes = encode(fp, &entries);

        let decoded = decode(&bytes, fp).expect("valid snapshot must decode");
        prop_assert_eq!(decoded.len(), entries.len());
        prop_assert_eq!(encode(fp, &decoded), bytes.clone(), "re-save drifted");

        let mut reversed = entries.clone();
        reversed.reverse();
        prop_assert_eq!(encode(fp, &reversed), bytes, "encoding not canonical");
    }

    /// Every decoded field equals what was saved — including `f64` bit
    /// patterns and the full trace.
    #[test]
    fn every_field_survives_the_roundtrip(seed in 0u64..10_000) {
        let entries = arb_entries(seed, 4);
        let decoded = decode(&encode(7, &entries), 7).unwrap();
        prop_assert_eq!(decoded.len(), entries.len());
        // decode returns canonical (sorted) order; match by cell key.
        for (c0, r0) in &entries {
            let (_, r1) = decoded
                .iter()
                .find(|(c1, _)| c1 == c0)
                .expect("every saved cell must be decoded");
            prop_assert_eq!(r0.iterations, r1.iterations);
            prop_assert_eq!(r0.iter_time, r1.iter_time);
            prop_assert_eq!(r0.epoch_time, r1.epoch_time);
            prop_assert_eq!(r0.fp_bp_iter, r1.fp_bp_iter);
            prop_assert_eq!(r0.wu_iter, r1.wu_iter);
            prop_assert_eq!(&r0.api_iter, &r1.api_iter);
            prop_assert_eq!(r0.sync_wall_iter, r1.sync_wall_iter);
            prop_assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            prop_assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
        }
    }

    /// Slim-flagged entries round-trip exactly: the flag survives, the
    /// scalars survive, the trace is dropped for slim entries only,
    /// the encoding stays canonical, and a re-save is byte-identical.
    #[test]
    fn slim_flags_roundtrip_and_drop_exactly_the_traces(seed in 0u64..10_000, n in 0usize..10) {
        let entries: Vec<(Cell, Arc<EpochReport>, bool)> = arb_entries(seed, n)
            .into_iter()
            .enumerate()
            .map(|(i, (c, r))| (c, r, (seed >> (i % 32)) & 1 == 1))
            .collect();
        let bytes = encode_entries(5, &entries);

        let decoded = decode_entries(&bytes, 5).expect("valid snapshot must decode");
        prop_assert_eq!(decoded.len(), entries.len());
        prop_assert_eq!(encode_entries(5, &decoded), bytes.clone(), "re-save drifted");
        let mut reversed = entries.clone();
        reversed.reverse();
        prop_assert_eq!(encode_entries(5, &reversed), bytes, "encoding not canonical");

        for (c0, r0, slim0) in &entries {
            let (_, r1, slim1) = decoded
                .iter()
                .find(|(c1, _, _)| c1 == c0)
                .expect("every saved cell must be decoded");
            prop_assert_eq!(slim0, slim1, "slim flag lost for {:?}", c0);
            prop_assert_eq!(r0.iterations, r1.iterations);
            prop_assert_eq!(r0.iter_time, r1.iter_time);
            prop_assert_eq!(r0.epoch_time, r1.epoch_time);
            prop_assert_eq!(r0.fp_bp_iter, r1.fp_bp_iter);
            prop_assert_eq!(r0.wu_iter, r1.wu_iter);
            prop_assert_eq!(&r0.api_iter, &r1.api_iter);
            prop_assert_eq!(r0.sync_wall_iter, r1.sync_wall_iter);
            prop_assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            if *slim0 {
                prop_assert!(
                    r1.iter_trace.events().is_empty(),
                    "slim entry kept its trace"
                );
            } else {
                prop_assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
            }
        }
    }

    /// Truncating a valid snapshot anywhere yields a typed error,
    /// never a panic and never a silently shorter cache.
    #[test]
    fn truncations_are_rejected(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let bytes = encode(3, &arb_entries(seed, 3));
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut], 3).is_err(), "cut at {} accepted", cut);
    }

    /// Flipping any single byte of a valid snapshot is detected: the
    /// header fields are each individually validated and the payload
    /// is checksummed.
    #[test]
    fn single_byte_corruption_is_rejected(seed in 0u64..10_000, pos in 0usize..4096) {
        let mut bytes = encode(11, &arb_entries(seed, 2));
        let pos = pos % bytes.len();
        bytes[pos] ^= 0x5a;
        prop_assert!(decode(&bytes, 11).is_err(), "flip at {} accepted", pos);
    }
}

/// Start values sitting on every LEB128 varint width boundary, plus
/// the top of the clock (deltas near `u64::MAX` wrap).
const START_BOUNDARIES: [u64; 9] = [
    0,
    1,
    127,
    128,
    16_383,
    16_384,
    2_097_151,
    2_097_152,
    u64::MAX - 5_000,
];

/// Durations covering zero-length markers, sub-µs kernels, and varint
/// width boundaries.
const DURATIONS: [u64; 6] = [0, 1, 127, 128, 300, 16_384];

/// Builds a report whose scalars come from `arb_report` but whose
/// trace is exactly `events`.
fn report_with_trace(seed: u64, events: Vec<TraceEvent>) -> Arc<EpochReport> {
    let mut report = (*arb_report(seed)).clone();
    report.iter_trace = Trace::new(events);
    Arc::new(report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// v5 compact trace blocks round-trip through every encoding edge:
    /// empty traces, single events, duplicate labels (interning),
    /// `u64::MAX`-adjacent spans, zero-duration markers, and start
    /// deltas straddling every varint width boundary — and the lazy
    /// decode path yields exactly what the eager one does, with
    /// re-save byte-identity throughout.
    #[test]
    fn v5_trace_blocks_roundtrip_through_edge_cases(
        seed in 0u64..10_000,
        specs in proptest::collection::vec(
            (0usize..9, 0u64..5_000, 0usize..6, 0usize..3, proptest::bool::ANY),
            0..12
        ),
    ) {
        let events: Vec<TraceEvent> = specs
            .iter()
            .enumerate()
            .map(|(i, &(b, off, d, lab, res))| {
                let start = START_BOUNDARIES[b].saturating_add(off);
                TraceEvent {
                    task: TaskId::from_index(i),
                    // Small label space forces duplicate interning.
                    label: format!("kernel{lab}"),
                    category: ["fp", "wu", "comm"][lab].to_string(),
                    resource: res.then(|| format!("GPU{lab}.compute")),
                    start: SimTime::from_nanos(start),
                    end: SimTime::from_nanos(start.saturating_add(DURATIONS[d])),
                }
            })
            .collect();
        let fp = seed ^ 0xabcd;
        let entries = vec![(arb_cell(seed), report_with_trace(seed, events.clone()))];
        let bytes = encode(fp, &entries);

        // Eager decode reproduces the events and re-saves identically.
        let decoded = decode(&bytes, fp).expect("edge-case snapshot must decode");
        prop_assert_eq!(decoded[0].1.iter_trace.events(), &events[..]);
        prop_assert_eq!(encode(fp, &decoded), bytes.clone(), "re-save drifted");

        // Lazy decode agrees with eager, event for event.
        let image: Arc<[u8]> = bytes.clone().into();
        let lazy = persist::decode_entries_lazy(&image, fp).expect("lazy decode");
        prop_assert_eq!(lazy.len(), 1);
        prop_assert!(
            lazy[0].1.iter_trace.events().is_empty(),
            "lazy report must not carry decoded events"
        );
        match &lazy[0].2 {
            persist::EntryTrace::Lazy(block) => {
                prop_assert_eq!(&block.decode().expect("block decodes")[..], &events[..]);
                // Decoding is deterministic.
                prop_assert_eq!(block.decode().unwrap(), block.decode().unwrap());
            }
            persist::EntryTrace::Slim => {
                prop_assert!(false, "full entries must load as lazy blocks");
            }
        }

        // Copying the still-encoded block through a re-save
        // (TraceOut::Raw) is byte-identical to re-encoding.
        let raw_entries: Vec<(Cell, Arc<EpochReport>, persist::TraceOut)> = lazy
            .iter()
            .map(|(c, r, t)| {
                let out = match t {
                    persist::EntryTrace::Lazy(b) => persist::TraceOut::Raw(b.clone()),
                    persist::EntryTrace::Slim => persist::TraceOut::Slim,
                };
                (*c, r.clone(), out)
            })
            .collect();
        prop_assert_eq!(
            persist::encode_with_traces(fp, &raw_entries),
            bytes,
            "raw copy-through drifted from the original image"
        );
    }
}

#[test]
fn stale_files_fail_with_the_right_typed_error() {
    let entries = arb_entries(42, 2);
    let good = encode(1, &entries);

    let mut wrong_version = good.clone();
    wrong_version[8] = wrong_version[8].wrapping_add(3);
    assert!(matches!(
        decode(&wrong_version, 1),
        Err(PersistError::UnsupportedVersion { .. })
    ));

    assert!(matches!(
        decode(&good, 2),
        Err(PersistError::FingerprintMismatch {
            expected: 2,
            found: 1
        })
    ));

    let mut not_a_snapshot = good;
    not_a_snapshot[0] = b'X';
    assert!(matches!(
        decode(&not_a_snapshot, 1),
        Err(PersistError::BadMagic)
    ));
}

/// The service_demo request stream: six overlapping sweeps, 72 cells.
fn demo_stream() -> Vec<GridSpec> {
    vec![
        GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        GridSpec::paper().workloads([Workload::LeNet]),
        GridSpec::paper().workloads([Workload::LeNet]).batches([16]),
        GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::Nccl]),
        GridSpec::paper()
            .workloads([Workload::AlexNet])
            .batches([16])
            .gpu_counts([1, 2]),
        GridSpec::paper()
            .workloads([Workload::LeNet, Workload::AlexNet])
            .batches([16]),
    ]
}

#[test]
fn warm_service_is_equivalent_to_cold_over_a_mixed_stream() {
    let path = std::env::temp_dir().join(format!(
        "voltascope-persist-equiv-{}.snap",
        std::process::id()
    ));
    let stream = demo_stream();

    let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
    let cold_outs: Vec<_> = stream.iter().map(|s| cold.sweep(s)).collect();
    let cold_stats = cold.stats();
    assert_eq!(cold_stats.cells, 72, "the demo stream is 72 cells");
    let saved = cold.save(&path).unwrap();
    assert_eq!(saved as u64, cold_stats.computed);

    let (warm, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
    assert!(matches!(status, SnapshotStatus::Loaded { .. }), "{status}");
    let warm_outs: Vec<_> = stream.iter().map(|s| warm.sweep(s)).collect();

    // Same cells, field-identical scalars, zero recomputation. The
    // table-only (non-traced) sweeps serve lazy entries without
    // decoding a single trace event.
    for (c_out, w_out) in cold_outs.iter().zip(warm_outs.iter()) {
        assert_eq!(c_out.cells(), w_out.cells());
        for ((cell, c), (_, w)) in c_out.iter().zip(w_out.iter()) {
            assert_eq!(c.iterations, w.iterations, "{cell:?}");
            assert_eq!(c.iter_time, w.iter_time, "{cell:?}");
            assert_eq!(c.epoch_time, w.epoch_time, "{cell:?}");
            assert_eq!(c.fp_bp_iter, w.fp_bp_iter, "{cell:?}");
            assert_eq!(c.wu_iter, w.wu_iter, "{cell:?}");
            assert_eq!(c.sync_wall_iter, w.sync_wall_iter, "{cell:?}");
            assert_eq!(c.api_iter, w.api_iter, "{cell:?}");
            assert_eq!(
                c.compute_utilization.to_bits(),
                w.compute_utilization.to_bits(),
                "{cell:?}"
            );
            assert!(
                w.iter_trace.events().is_empty(),
                "{cell:?}: non-traced warm serve must stay lazy"
            );
        }
    }
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.computed, 0, "warm pass must not recompute");
    assert!(
        warm_stats.hit_rate() >= 0.95,
        "warm hit rate {:.3} below the acceptance bar",
        warm_stats.hit_rate()
    );
    assert_eq!(
        warm.trace_decodes(),
        0,
        "table-only sweeps must not decode any trace block"
    );

    // Re-saving the untouched warm cache reproduces the same bytes:
    // undecoded lazy blocks are copied through verbatim.
    let resaved = path.with_extension("snap2");
    warm.save(&resaved).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&resaved).unwrap(),
        "warm re-save must be byte-identical"
    );

    // Trace consumers get the full cold traces back via lazy decode —
    // still without recomputing anything.
    for c_out in &cold_outs {
        let cells: Vec<Cell> = c_out.cells().to_vec();
        let traced = warm.run_cells_traced(&cells, true);
        for ((cell, c), w) in c_out.iter().zip(traced.iter()) {
            assert_eq!(c.iter_trace.events(), w.iter_trace.events(), "{cell:?}");
        }
    }
    assert_eq!(
        warm.stats().computed,
        0,
        "traced requests decode lazily, never recompute"
    );
    assert!(warm.trace_decodes() > 0, "traced requests decode");

    // Re-saving after decoding is byte-identical too: a decoded entry
    // re-encodes to exactly its original canonical block.
    let resaved_decoded = path.with_extension("snap3");
    warm.save(&resaved_decoded).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&resaved_decoded).unwrap(),
        "post-decode re-save must be byte-identical"
    );
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&resaved).unwrap();
    std::fs::remove_file(&resaved_decoded).unwrap();
}

#[test]
fn slim_warm_service_serves_equivalent_scalars_and_recomputes_for_traces() {
    let slim_path = std::env::temp_dir().join(format!(
        "voltascope-persist-slim-{}.snap",
        std::process::id()
    ));
    let full_path = slim_path.with_extension("full");
    let stream = demo_stream();

    let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
    let cold_outs: Vec<_> = stream.iter().map(|s| cold.sweep(s)).collect();
    let saved = cold.save_with(&slim_path, true).unwrap();
    assert_eq!(saved as u64, cold.stats().computed);
    cold.save(&full_path).unwrap();
    let slim_len = std::fs::metadata(&slim_path).unwrap().len();
    let full_len = std::fs::metadata(&full_path).unwrap().len();
    // v5's compressed trace blocks narrowed the gap (the old full
    // format was ~10x slim), but dropping traces must still win
    // clearly.
    assert!(
        slim_len * 2 < full_len,
        "slim snapshot ({slim_len} B) should be well under half of full ({full_len} B)"
    );

    // A slim-warm service answers the whole stream from cache with
    // identical scalars; only the iteration traces are gone.
    let (warm, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &slim_path);
    assert!(matches!(status, SnapshotStatus::Loaded { .. }), "{status}");
    for (spec, c_out) in stream.iter().zip(cold_outs.iter()) {
        let w_out = warm.sweep(spec);
        assert_eq!(c_out.cells(), w_out.cells());
        for ((cell, c), (_, w)) in c_out.iter().zip(w_out.iter()) {
            assert_eq!(c.iterations, w.iterations, "{cell:?}");
            assert_eq!(c.iter_time, w.iter_time, "{cell:?}");
            assert_eq!(c.epoch_time, w.epoch_time, "{cell:?}");
            assert_eq!(c.fp_bp_iter, w.fp_bp_iter, "{cell:?}");
            assert_eq!(c.wu_iter, w.wu_iter, "{cell:?}");
            assert_eq!(c.sync_wall_iter, w.sync_wall_iter, "{cell:?}");
            assert_eq!(c.api_iter, w.api_iter, "{cell:?}");
            assert_eq!(
                c.compute_utilization.to_bits(),
                w.compute_utilization.to_bits(),
                "{cell:?}"
            );
            assert!(w.iter_trace.events().is_empty(), "{cell:?} kept a trace");
        }
    }
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.computed, 0, "scalar requests must not recompute");
    assert!(warm_stats.hit_rate() >= 0.95, "{}", warm_stats.hit_rate());

    // Re-saving the slim-warm cache reproduces the slim bytes even
    // without the slim flag: a slim-loaded entry can never launder
    // itself back into a full one.
    let resaved = slim_path.with_extension("snap2");
    warm.save(&resaved).unwrap();
    assert_eq!(
        std::fs::read(&slim_path).unwrap(),
        std::fs::read(&resaved).unwrap(),
        "slim-loaded re-save must be byte-identical to the slim snapshot"
    );

    // A trace-requiring request recomputes the cell and gets the full
    // trace back, identical to the cold computation.
    let cell = cold_outs[0].cells()[0];
    let cold_report = cold_outs[0].get(&cell).unwrap();
    assert!(!cold_report.iter_trace.events().is_empty());
    let traced = warm.run_cells_traced(&[cell], true);
    assert_eq!(
        traced[0].iter_trace.events(),
        cold_report.iter_trace.events(),
        "traced recompute must reproduce the cold trace"
    );
    assert_eq!(
        warm.stats().computed,
        1,
        "exactly the traced cell recomputed"
    );

    for p in [&slim_path, &full_path, &resaved] {
        std::fs::remove_file(p).unwrap();
    }
}
