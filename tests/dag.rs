//! Property suite for the v2 task-DAG path: random DAG-shaped specs
//! must never run slower than their dep-erased linear twins once the
//! stream capacity stops binding, edge-free v2 files must lower
//! byte-identically to v1, and malformed `dep` webs must come back as
//! typed errors carrying the offending line and column.

use proptest::prelude::*;
use voltascope::calibration::dgx1_system;
use voltascope_comm::CommMethod;
use voltascope_train::{simulate_epoch_lowered, TrainConfig};
use voltascope_workload::{lower, LayerSpec, ParseErrorKind, WorkloadSpec};

const BATCH: usize = 16;

/// A random DAG-shaped v2 spec: up to seven layers, each layer's
/// predecessor set drawn from the bits of a mask over the layers
/// before it (an empty mask reads the external input).
fn arb_dag_spec() -> impl Strategy<Value = WorkloadSpec> {
    let layer = (
        (1u64..100_000_000, 1u64..100_000_000),
        (1_000u64..1_000_000, 1_000u64..1_000_000, 0u64..1_000_000),
        0u8..255,
    );
    proptest::collection::vec(layer, 1..8).prop_map(|rows| WorkloadSpec {
        version: 2,
        name: "Dag".to_string(),
        input_dims: vec![4],
        pipeline_stages: 1,
        layers: rows
            .into_iter()
            .enumerate()
            .map(|(i, ((fp, bp), (inb, outb, pb), mask))| LayerSpec {
                name: format!("l{i}"),
                kind: "fc".to_string(),
                stage: 0,
                fp_flops: fp,
                bp_flops: bp,
                in_bytes: inb,
                out_bytes: outb,
                // Guarantee a nonzero parameter total so every
                // generated spec lowers.
                param_bytes: if i == 0 { pb + 1 } else { pb },
                tensor_cores: false,
                deps: Some(
                    (0..i)
                        .filter(|j| mask & (1 << j) != 0)
                        .map(|j| format!("l{j}"))
                        .collect(),
                ),
            })
            .collect(),
    })
}

/// The same spec with every `dep` erased: the classic linear chain.
fn linear_twin(spec: &WorkloadSpec) -> WorkloadSpec {
    let mut lin = spec.clone();
    for l in &mut lin.layers {
        l.deps = None;
    }
    lin
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every explicit edge `j -> i` (j < i) is implied by the linear
    /// chain's transitive closure, so the DAG's precedence constraints
    /// are a subset of the chain's. With enough compute streams that
    /// capacity never binds (no Graham anomalies), relaxing
    /// constraints can only move the makespan down.
    #[test]
    fn dag_iteration_never_slower_than_the_linear_chain(spec in arb_dag_spec()) {
        let mut sys = dgx1_system();
        sys.compute_streams = 32;
        let cfg = TrainConfig::strong(BATCH, 1, CommMethod::P2p);
        let dag = simulate_epoch_lowered(&sys, &lower(&spec, BATCH).unwrap(), &cfg);
        let lin = simulate_epoch_lowered(&sys, &lower(&linear_twin(&spec), BATCH).unwrap(), &cfg);
        prop_assert!(
            dag.iter_time <= lin.iter_time,
            "DAG {:?} > linear {:?}",
            dag.iter_time,
            lin.iter_time
        );
    }

    /// A v2 header with zero `dep` lines is pure syntax: the parsed
    /// spec matches its v1 twin field-for-field (bar the version) and
    /// lowers to the identical kernel stream with no DAG attached.
    #[test]
    fn edge_free_v2_lowers_identically_to_v1(spec in arb_dag_spec()) {
        let v1 = linear_twin(&spec); // deps erased; still claims v2
        let v1_text = {
            let mut s = v1.clone();
            s.version = 1;
            s.to_text()
        };
        prop_assert!(v1_text.starts_with("workload v1\n"));
        let v2_text = v1_text.replacen("workload v1\n", "workload v2\n", 1);
        let p1 = WorkloadSpec::parse(&v1_text).unwrap();
        let p2 = WorkloadSpec::parse(&v2_text).unwrap();
        prop_assert_eq!(&p1.layers, &p2.layers);
        let l1 = lower(&p1, BATCH).unwrap();
        let l2 = lower(&p2, BATCH).unwrap();
        prop_assert!(l2.dag.is_none());
        prop_assert_eq!(l1, l2);
    }

    /// A two-edge cycle planted between a random pair of layers is
    /// rejected at parse time, pointing at the first `dep` line that
    /// targets a layer on the cycle; a `dep` naming a layer that does
    /// not exist is rejected with the bad token's column.
    #[test]
    fn malformed_dep_webs_are_rejected_with_position(
        n in 2usize..7,
        pick in 0u8..255,
    ) {
        let j = 1 + (pick as usize) % (n - 1); // cycle partner for l0
        let mut body = String::new();
        for i in 0..n {
            body.push_str(&format!("layer l{i} fc 0 1 2 4 4 8 0\n"));
        }
        let header = "workload v2\nname X\ninput 4\n";

        let cyclic = format!("{header}{body}dep l0 l{j}\ndep l{j} l0\nend\n");
        let e = WorkloadSpec::parse(&cyclic).unwrap_err();
        prop_assert_eq!(e.line, 4 + n, "first dep line");
        prop_assert_eq!(e.column, 5, "target token");
        prop_assert!(
            matches!(&e.kind, ParseErrorKind::CyclicDependency(name) if name == "l0"),
            "kind {:?}",
            e.kind
        );

        let ghost = format!("{header}{body}dep l0 ghost{pick}\nend\n");
        let e = WorkloadSpec::parse(&ghost).unwrap_err();
        prop_assert_eq!(e.line, 4 + n);
        prop_assert_eq!(e.column, 8, "pred token after `dep l0 `");
        prop_assert!(
            matches!(&e.kind, ParseErrorKind::UnknownLayerName(name) if *name == format!("ghost{pick}")),
            "kind {:?}",
            e.kind
        );
    }
}
