//! Golden snapshot tests: the reproduction binaries' structural
//! outputs are pinned exactly, so an accidental change to the zoo, the
//! topology, or the renderers cannot slip through unnoticed.

use dgx1_repro::prelude::*;

#[test]
fn table1_renders_exactly() {
    let stats = experiments::structure::table1(&Workload::ALL);
    let rendered = experiments::structure::render_table1(&stats).render();
    let expected = "\
Network       Layers  Conv Layers  Incep/Res Modules  FC Layers  Weights
------------------------------------------------------------------------
LeNet         11      2            0                  3          61K    
AlexNet       18      5            0                  3          61.1M  
GoogLeNet     138     57           9                  1          7.0M   
ResNet        174     53           16                 1          25.6M  
Inception-v3  308     94           11                 1          23.9M  
";
    assert_eq!(rendered, expected);
}

#[test]
fn connectivity_matrix_renders_exactly() {
    let h = Harness::paper();
    let matrix = h.sys.topo.connectivity_matrix();
    let expected = "        GPU0  GPU1  GPU2  GPU3  GPU4  GPU5  GPU6  GPU7
GPU0       X   NV2   NV2   NV1   SYS   SYS   NV1   SYS
GPU1     NV2     X   NV1   NV2   SYS   SYS   SYS   NV1
GPU2     NV2   NV1     X   NV1   NV1   SYS   SYS   SYS
GPU3     NV1   NV2   NV1     X   SYS   NV1   SYS   SYS
GPU4     SYS   SYS   NV1   SYS     X   NV2   NV2   NV1
GPU5     SYS   SYS   SYS   NV1   NV2     X   NV1   NV2
GPU6     NV1   SYS   SYS   SYS   NV2   NV1     X   NV1
GPU7     SYS   NV1   SYS   SYS   NV1   NV2   NV1     X
";
    assert_eq!(matrix, expected);
}

#[test]
fn gradient_bucket_inventory_is_stable() {
    // The bucket counts drive the whole communication model; pin them.
    let counts: Vec<(String, usize)> = Workload::ALL
        .iter()
        .map(|w| (w.name().to_string(), w.build().gradient_buckets().len()))
        .collect();
    assert_eq!(
        counts,
        vec![
            ("LeNet".to_string(), 5),
            ("AlexNet".to_string(), 8),
            ("GoogLeNet".to_string(), 58),
            ("ResNet".to_string(), 107),
            ("Inception-v3".to_string(), 189),
        ]
    );
}

#[test]
fn model_summary_renders() {
    let summary = zoo::lenet().summary();
    assert!(summary.starts_with("Model: LeNet"));
    assert!(summary.contains("Total params: 61706"));
    assert!(summary.lines().count() > 14);
}
