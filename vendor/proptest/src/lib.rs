//! Offline, deterministic subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it actually uses: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range/tuple/`Just`/`vec` strategies, `prop_flat_map`/`prop_map`
//! combinators, and [`ProptestConfig::with_cases`].
//!
//! Sampling is a deterministic SplitMix64 stream seeded from the test's
//! module path and name, so every run of every test explores the same
//! case sequence. There is no shrinking: a failing case panics with the
//! generated-input message from the assertion itself.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a string, used to derive stable per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; it is skipped
    /// and does not count against the case budget.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any printable reason.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection from any printable reason.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Unlike real proptest there is no shrink tree:
/// a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Maps sampled values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        let v = self.base.sample(rng);
        (self.f)(v).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_inclusive_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: span + 1 would overflow, and
                    // every u64 is in range anyway.
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! signed_range_inclusive_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                // Wrapping width: exact even for i64::MIN..=i64::MAX,
                // where the span (u64::MAX) + 1 would overflow.
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (start as i64).wrapping_add(offset as i64) as $ty
            }
        }
    )*};
}

signed_range_inclusive_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! float_range_inclusive_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                // A degenerate a..=a range is a constant; otherwise the
                // closed upper bound is reachable only up to rounding,
                // matching float semantics elsewhere.
                start + (rng.next_f64() as $ty) * (end - start)
            }
        }
    )*};
}

float_range_inclusive_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec`]: an exact
    /// length or a half-open length range.
    pub trait IntoSizeRange {
        /// Lower/upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of `element` samples with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests; supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $p = $crate::Strategy::sample(&($s), &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{:?}` == `{:?}`",
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{:?}` == `{:?}`: {}",
                            left,
                            right,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{fnv1a, Strategy, TestRng};

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(TestRng::new(1).next_u64(), TestRng::new(2).next_u64());
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-1.0f32..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_respect_bounds_and_reach_both_endpoints() {
        let mut rng = TestRng::new(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..400 {
            let v = (5u64..=8).sample(&mut rng);
            assert!((5..=8).contains(&v));
            lo |= v == 5;
            hi |= v == 8;
            let s = (-3i32..=3).sample(&mut rng);
            assert!((-3..=3).contains(&s));
            let f = (-1.0f64..=1.0).sample(&mut rng);
            assert!((-1.0..=1.0).contains(&f));
        }
        assert!(lo && hi, "closed bounds must both be reachable");
    }

    #[test]
    fn inclusive_singleton_is_a_constant() {
        let mut rng = TestRng::new(13);
        for _ in 0..32 {
            assert_eq!((42u32..=42).sample(&mut rng), 42);
            assert_eq!((-7i8..=-7).sample(&mut rng), -7);
            assert_eq!((2.5f32..=2.5).sample(&mut rng), 2.5);
        }
    }

    #[test]
    fn inclusive_full_domains_do_not_overflow() {
        let mut rng = TestRng::new(17);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            // The u64/i64 full-width spans are the overflow hazard
            // (span + 1 wraps); u8 exercises the narrow-type cast path.
            distinct.insert((0u64..=u64::MAX).sample(&mut rng));
            let _ = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = (u8::MIN..=u8::MAX).sample(&mut rng);
            let _ = (isize::MIN..=isize::MAX).sample(&mut rng);
        }
        assert!(distinct.len() > 32, "full-range u64 sampling collapsed");
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(9);
        let strat =
            (1u8..4).prop_flat_map(|n| (Just(n), crate::collection::vec((0u8..n, 0u64..10), 0..6)));
        for _ in 0..100 {
            let (n, edges) = strat.sample(&mut rng);
            assert!((1..4).contains(&n));
            assert!(edges.len() < 6);
            for (a, _) in edges {
                assert!(a < n);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_works(x in 0usize..50, flip in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 50, "x was {x}");
            let y = if flip { x + 1 } else { x };
            prop_assert_eq!(x + usize::from(flip), y);
            if x == 0 {
                return Ok(());
            }
            std::convert::identity::<Result<(), String>>(Ok(()))
                .map_err(TestCaseError::fail)?;
        }
    }
}
