//! Offline, wall-clock subset of the `criterion` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion its benches use:
//! [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up
//! once, then timed over enough iterations to fill a small measurement
//! budget; the mean per-iteration time is printed. There are no
//! statistics, plots, or baselines — just stable, dependency-free
//! timing output.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the iteration target per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, None, |b| {
            f(b)
        });
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration target for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the work per iteration (printed alongside the timing).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Runs a benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work performed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing state handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
    max_reps: u64,
}

impl Bencher {
    /// Times `f`, repeating it to fill the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, also used to size the batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let reps =
            (self.budget.as_nanos() / once.as_nanos()).clamp(1, self.max_reps as u128) as u64;
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = reps;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: measurement_time,
        max_reps: sample_size as u64 * 50,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}/s", human(n as f64 / per_iter, "elem"))
        }
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}/s", human(n as f64 / per_iter, "B")),
        None => String::new(),
    };
    println!(
        "{label:<50} time: [{}]  iters: {}{}",
        human_time(per_iter),
        b.iters,
        rate
    );
}

fn human_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} \u{b5}s", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn human(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
