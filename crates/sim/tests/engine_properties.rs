//! Property-based tests of the discrete-event engine on randomly
//! generated task graphs: the scheduling invariants every valid
//! schedule must satisfy, regardless of graph shape.

use proptest::prelude::*;
use voltascope_sim::check::assert_schedule_invariants;
use voltascope_sim::{Engine, SimSpan, SimTime, TaskGraph, TaskId};

/// A random DAG recipe: per task, (duration_ns, resource_choice,
/// up-to-two dependency back-offsets).
fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u64, u8, u8, u8)>)> {
    (
        1u32..4, // resource count
        proptest::collection::vec((0u64..1_000, 0u8..8, 0u8..6, 0u8..6), 1..60),
    )
}

fn build(resources: u32, spec: &[(u64, u8, u8, u8)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let res: Vec<_> = (0..resources)
        .map(|i| g.add_resource(format!("r{i}"), 1 + i % 2))
        .collect();
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, &(dur, rsel, d1, d2)) in spec.iter().enumerate() {
        let mut b = g
            .task(format!("t{i}"))
            .lasting(SimSpan::from_nanos(dur))
            .category(if i % 2 == 0 { "even" } else { "odd" });
        // Some tasks get no resource (barriers).
        if rsel as u32 % (resources + 1) != resources {
            b = b.on(res[(rsel as u32 % resources) as usize]);
        }
        for d in [d1, d2] {
            if d > 0 && (d as usize) <= ids.len() {
                b = b.after(ids[ids.len() - d as usize]);
            }
        }
        ids.push(b.build());
    }
    g
}

proptest! {
    /// Dependencies are honoured: no task starts before all of its
    /// dependencies finished.
    #[test]
    fn starts_respect_dependencies((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let s = Engine::new().run(&g).unwrap();
        for (id, task) in g.tasks() {
            for &dep in &task.deps {
                prop_assert!(
                    s.start_time(id) >= s.finish_time(dep),
                    "task {id:?} started before dep {dep:?} finished"
                );
            }
            prop_assert_eq!(
                s.finish_time(id),
                s.start_time(id) + task.duration
            );
        }
    }

    /// Resources never exceed their capacity: at any task's start
    /// instant, the number of concurrently-running tasks on the same
    /// resource stays within bounds.
    #[test]
    fn capacity_is_never_exceeded((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let s = Engine::new().run(&g).unwrap();
        for (rid, res) in g.resources() {
            let intervals: Vec<(SimTime, SimTime)> = g
                .tasks()
                .filter(|(_, t)| t.resource == Some(rid) && !t.duration.is_zero())
                .map(|(id, _)| (s.start_time(id), s.finish_time(id)))
                .collect();
            for &(start, _) in &intervals {
                let live = intervals
                    .iter()
                    .filter(|&&(a, b)| a <= start && start < b)
                    .count();
                prop_assert!(
                    live <= res.capacity as usize,
                    "{} ran {live} tasks concurrently (capacity {})",
                    res.name,
                    res.capacity
                );
            }
        }
    }

    /// Makespan bounds: at least the longest dependency chain, at least
    /// any single resource's work divided by its capacity, and at most
    /// the sum of all durations (plus releases, which we don't use).
    #[test]
    fn makespan_bounds((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let s = Engine::new().run(&g).unwrap();
        prop_assert!(s.makespan() <= g.total_work());
        // Per-resource lower bound.
        for (rid, res) in g.resources() {
            let busy: SimSpan = g
                .tasks()
                .filter(|(_, t)| t.resource == Some(rid))
                .map(|(_, t)| t.duration)
                .sum();
            prop_assert!(
                s.makespan() >= busy / res.capacity as u64,
                "makespan below resource lower bound"
            );
        }
        // Chain lower bound via longest path of durations.
        let mut longest = vec![SimSpan::ZERO; g.task_count()];
        for (id, task) in g.tasks() {
            let base = task
                .deps
                .iter()
                .map(|d| longest[d.index()])
                .max()
                .unwrap_or(SimSpan::ZERO);
            longest[id.index()] = base + task.duration;
        }
        let chain = longest.into_iter().max().unwrap_or(SimSpan::ZERO);
        prop_assert!(s.makespan() >= chain);
    }

    /// The critical chain is contiguous in time and ends at the
    /// makespan.
    #[test]
    fn critical_chain_is_contiguous((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let s = Engine::new().run(&g).unwrap();
        let chain = s.critical_chain();
        prop_assert!(!chain.is_empty());
        let last = *chain.last().unwrap();
        prop_assert_eq!(
            s.finish_time(last).elapsed_since(SimTime::ZERO),
            s.makespan()
        );
        for pair in chain.windows(2) {
            prop_assert_eq!(s.start_time(pair[1]), s.finish_time(pair[0]));
        }
    }

    /// The trace holds exactly one event per task, sorted by start, and
    /// category totals equal the per-task sums — plus the full shared
    /// structural invariants from `voltascope_sim::check`.
    #[test]
    fn trace_is_complete_and_consistent((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let s = Engine::new().run(&g).unwrap();
        assert_schedule_invariants(&g, &s);
        let trace = s.trace();
        prop_assert_eq!(trace.len(), g.task_count());
        let mut prev = SimTime::ZERO;
        for e in trace.events() {
            prop_assert!(e.start >= prev);
            prev = e.start;
        }
        let even_total: SimSpan = g
            .tasks()
            .filter(|(_, t)| t.category == "even")
            .map(|(_, t)| t.duration)
            .sum();
        prop_assert_eq!(trace.total_of("even"), even_total);
    }

    /// Bit-determinism across runs for arbitrary graphs.
    #[test]
    fn deterministic_for_random_graphs((resources, spec) in arb_graph()) {
        let g = build(resources, &spec);
        let a = Engine::new().run(&g).unwrap();
        let b = Engine::new().run(&g).unwrap();
        for (id, _) in g.tasks() {
            prop_assert_eq!(a.start_time(id), b.start_time(id));
        }
    }
}
