//! Differential and metamorphic properties of the dynamic-event engine
//! path on randomly generated task graphs.
//!
//! The dynamic plumbing ([`Engine::run_with_events`]) must be invisible
//! when unused and equivalent to static graph surgery at the temporal
//! extremes:
//!
//! - **Differential**: an empty event list reproduces the plain
//!   [`Engine::run`] schedule bit-for-bit — the pre-event engine's
//!   behaviour is the event path's zero case, so every existing golden
//!   stays frozen by construction.
//! - **Metamorphic (t = 0)**: a `Fail` or `Scale` applied before any
//!   task activity is indistinguishable from building the graph with
//!   the re-bound resources and re-priced durations.
//! - **Metamorphic (t >= makespan)**: an event scheduled at or past the
//!   healthy makespan leaves the schedule untouched (every task has
//!   finished; generators keep durations >= 1 ns so nothing is still
//!   pending at the final instant).
//!
//! Mid-run events have no static twin, so for arbitrary fault instants
//! the properties fall back to determinism and the shared structural
//! invariants from [`voltascope_sim::check`].

use proptest::prelude::*;
use voltascope_sim::check::assert_schedule_invariants;
use voltascope_sim::{
    DynamicEvent, DynamicEventKind, Engine, ResourceId, Schedule, SimSpan, SimTime, TaskGraph,
    TaskId,
};

/// A random DAG recipe: per task, (duration_ns, resource_choice,
/// up-to-two dependency back-offsets). Durations stay >= 1 ns so the
/// "event at the makespan is inert" property holds exactly (a task of
/// zero length could otherwise still be pending at the final instant).
fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u64, u8, u8, u8)>)> {
    (
        2u32..4, // resource count: >= 2 so a fault always has a fallback
        proptest::collection::vec((1u64..=1_000, 0u8..8, 0u8..6, 0u8..6), 1..60),
    )
}

/// How the builder pre-applies an event at construction time, to serve
/// as the static twin of a dynamic event at `t = 0`.
#[derive(Clone, Copy)]
enum Twin {
    /// The graph exactly as rolled.
    Plain,
    /// Tasks bound to resource index `dead` re-bind to `fallback` with
    /// durations re-priced by `factor` — the static image of
    /// [`DynamicEventKind::Fail`] striking before anything ran.
    Failed {
        dead: usize,
        fallback: usize,
        factor: f64,
    },
    /// Tasks bound to resource index `slowed` keep their binding with
    /// durations re-priced — the static image of
    /// [`DynamicEventKind::Scale`] at `t = 0`.
    Scaled { slowed: usize, factor: f64 },
}

/// Builds the rolled graph (optionally with a [`Twin`] pre-applied) and
/// returns it with its resource ids. Mirrors the `engine_properties`
/// recipe: alternating capacities, occasional barrier tasks without a
/// resource, and up-to-two backward dependencies.
fn build(resources: u32, spec: &[(u64, u8, u8, u8)], twin: Twin) -> (TaskGraph, Vec<ResourceId>) {
    let mut g = TaskGraph::new();
    let res: Vec<_> = (0..resources)
        .map(|i| g.add_resource(format!("r{i}"), 1 + i % 2))
        .collect();
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, &(dur, rsel, d1, d2)) in spec.iter().enumerate() {
        let mut duration = SimSpan::from_nanos(dur);
        // Some tasks get no resource (barriers).
        let mut bound = if rsel as u32 % (resources + 1) != resources {
            Some((rsel as u32 % resources) as usize)
        } else {
            None
        };
        match twin {
            Twin::Plain => {}
            Twin::Failed {
                dead,
                fallback,
                factor,
            } => {
                if bound == Some(dead) {
                    bound = Some(fallback);
                    duration = duration.mul_f64(factor);
                }
            }
            Twin::Scaled { slowed, factor } => {
                if bound == Some(slowed) {
                    duration = duration.mul_f64(factor);
                }
            }
        }
        let mut b = g
            .task(format!("t{i}"))
            .lasting(duration)
            .category(if i % 2 == 0 { "even" } else { "odd" });
        if let Some(r) = bound {
            b = b.on(res[r]);
        }
        for d in [d1, d2] {
            if d > 0 && (d as usize) <= ids.len() {
                b = b.after(ids[ids.len() - d as usize]);
            }
        }
        ids.push(b.build());
    }
    (g, res)
}

/// Asserts `a` and `b` are the same schedule, bit for bit: per-task
/// start/finish instants and blocking attribution, the makespan, and
/// the trace event-for-event (labels, categories, final resources,
/// intervals).
fn assert_identical(g: &TaskGraph, a: &Schedule, b: &Schedule) {
    for (id, task) in g.tasks() {
        assert_eq!(
            a.start_time(id),
            b.start_time(id),
            "task {} starts diverge",
            task.label
        );
        assert_eq!(
            a.finish_time(id),
            b.finish_time(id),
            "task {} finishes diverge",
            task.label
        );
        assert_eq!(
            a.blocked_by(id),
            b.blocked_by(id),
            "task {} blocking attribution diverges",
            task.label
        );
    }
    assert_eq!(a.makespan(), b.makespan(), "makespans diverge");
    assert_eq!(
        a.trace().events(),
        b.trace().events(),
        "traces diverge event-for-event"
    );
}

fn fail(at: SimTime, resource: ResourceId, fallback: ResourceId, factor: f64) -> DynamicEvent {
    DynamicEvent {
        at,
        kind: DynamicEventKind::Fail {
            resource,
            fallback: Some(fallback),
            duration_factor: factor,
        },
    }
}

fn scale(at: SimTime, resource: ResourceId, factor: f64) -> DynamicEvent {
    DynamicEvent {
        at,
        kind: DynamicEventKind::Scale { resource, factor },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: the dynamic path with no events is the plain path,
    /// bit for bit, for arbitrary graphs — and both satisfy the shared
    /// structural invariants.
    #[test]
    fn an_empty_event_list_is_differentially_inert((resources, spec) in arb_graph()) {
        let (g, _) = build(resources, &spec, Twin::Plain);
        let plain = Engine::new().run(&g).unwrap();
        let dynamic = Engine::new().run_with_events(&g, &[]).unwrap();
        assert_schedule_invariants(&g, &plain);
        assert_identical(&g, &plain, &dynamic);
    }

    /// Metamorphic: a `Fail` at `t = 0` equals building the graph with
    /// the affected tasks pre-bound to the fallback and their full
    /// durations re-priced.
    #[test]
    fn a_fault_at_zero_equals_a_construction_time_fault(
        (resources, spec) in arb_graph(),
        factor in 0.25f64..4.0,
    ) {
        let (g, res) = build(resources, &spec, Twin::Plain);
        let faulted = Engine::new()
            .run_with_events(&g, &[fail(SimTime::ZERO, res[0], res[1], factor)])
            .unwrap();
        let (twin_graph, _) = build(resources, &spec, Twin::Failed { dead: 0, fallback: 1, factor });
        let twin = Engine::new().run(&twin_graph).unwrap();
        assert_identical(&g, &faulted, &twin);
    }

    /// Metamorphic: a `Scale` at `t = 0` equals pre-scaling the bound
    /// tasks' durations at construction time.
    #[test]
    fn a_scale_at_zero_equals_prescaled_durations(
        (resources, spec) in arb_graph(),
        factor in 0.25f64..4.0,
    ) {
        let (g, res) = build(resources, &spec, Twin::Plain);
        let scaled = Engine::new()
            .run_with_events(&g, &[scale(SimTime::ZERO, res[0], factor)])
            .unwrap();
        let (twin_graph, _) = build(resources, &spec, Twin::Scaled { slowed: 0, factor });
        let twin = Engine::new().run(&twin_graph).unwrap();
        assert_identical(&g, &scaled, &twin);
    }

    /// Metamorphic: events scheduled at or past the healthy makespan
    /// are inert — every task has already finished (durations are
    /// >= 1 ns), and a task finishing exactly at the event instant
    /// still completes normally.
    #[test]
    fn events_at_or_past_the_makespan_are_inert(
        (resources, spec) in arb_graph(),
        factor in 0.25f64..4.0,
        past_ns in 0u64..1_000,
    ) {
        let (g, res) = build(resources, &spec, Twin::Plain);
        let healthy = Engine::new().run(&g).unwrap();
        let at = SimTime::ZERO + healthy.makespan() + SimSpan::from_nanos(past_ns);
        let events = [fail(at, res[0], res[1], factor), scale(at, res[1], factor)];
        let late = Engine::new().run_with_events(&g, &events).unwrap();
        assert_identical(&g, &healthy, &late);
    }

    /// Mid-run events have no static twin, so the property degrades to
    /// determinism plus the shared structural invariants: a fault at an
    /// arbitrary fraction of the makespan yields the same schedule on
    /// every run, and that schedule is well-formed.
    #[test]
    fn mid_run_events_are_deterministic_and_well_formed(
        (resources, spec) in arb_graph(),
        factor in 0.25f64..4.0,
        percent in 0u64..=100,
    ) {
        let (g, res) = build(resources, &spec, Twin::Plain);
        let healthy = Engine::new().run(&g).unwrap();
        let at = SimTime::ZERO + healthy.makespan().mul_f64(percent as f64 / 100.0);
        let events = [fail(at, res[0], res[1], factor)];
        let a = Engine::new().run_with_events(&g, &events).unwrap();
        let b = Engine::new().run_with_events(&g, &events).unwrap();
        assert_schedule_invariants(&g, &a);
        assert_identical(&g, &a, &b);
    }
}
