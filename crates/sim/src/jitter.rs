//! Deterministic run-to-run jitter.
//!
//! The paper reports each training-time bar as the mean of five
//! repetitions with a standard-deviation whisker. A simulated system is
//! perfectly repeatable, so to reproduce that measurement protocol we
//! inject small, *seeded* multiplicative noise per repetition. The
//! generator is a self-contained xorshift64\* so the simulator core has
//! zero dependencies and identical output on every platform.

/// A deterministic noise source for per-repetition timing jitter.
///
/// # Example
///
/// ```
/// use voltascope_sim::Jitter;
///
/// let mut jitter = Jitter::new(42, 0.02); // ±~2% relative noise
/// let a = jitter.perturb(100.0);
/// assert!((a - 100.0).abs() < 10.0);
/// // Same seed, same sequence:
/// let mut again = Jitter::new(42, 0.02);
/// assert_eq!(again.perturb(100.0), a);
/// ```
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
    relative_sigma: f64,
}

impl Jitter {
    /// Creates a jitter source. `relative_sigma` is the approximate
    /// relative standard deviation of the multiplicative noise (e.g.
    /// `0.02` for ±2%).
    pub fn new(seed: u64, relative_sigma: f64) -> Self {
        Jitter {
            // xorshift must not start at 0.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            relative_sigma: relative_sigma.abs(),
        }
    }

    /// Next raw uniform sample in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (r >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next approximately-normal sample (mean 0, stddev 1), from the
    /// sum of twelve uniforms (Irwin–Hall); plenty for ±2% whiskers.
    pub fn next_normal(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_uniform()).sum();
        sum - 6.0
    }

    /// Applies multiplicative noise to `value`: returns
    /// `value * (1 + sigma * N(0,1))`, clamped to stay positive.
    pub fn perturb(&mut self, value: f64) -> f64 {
        let factor = (1.0 + self.relative_sigma * self.next_normal()).max(0.01);
        value * factor
    }
}

/// Mean and sample standard deviation of a slice — the statistics the
/// paper prints on every Fig. 3 bar.
///
/// Returns `(0.0, 0.0)` for an empty slice and stddev `0.0` for a
/// single-element slice.
///
/// # Example
///
/// ```
/// let (mean, sd) = voltascope_sim::mean_stddev(&[1.0, 2.0, 3.0]);
/// assert_eq!(mean, 2.0);
/// assert!((sd - 1.0).abs() < 1e-12);
/// ```
pub fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut j = Jitter::new(1, 0.0);
        for _ in 0..1000 {
            let u = j.next_uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeds_change_the_sequence() {
        let mut a = Jitter::new(1, 0.02);
        let mut b = Jitter::new(2, 0.02);
        let xs: Vec<f64> = (0..8).map(|_| a.next_uniform()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.next_uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_has_roughly_unit_moments() {
        let mut j = Jitter::new(7, 0.0);
        let samples: Vec<f64> = (0..20_000).map(|_| j.next_normal()).collect();
        let (mean, sd) = mean_stddev(&samples);
        assert!(mean.abs() < 0.03, "mean was {mean}");
        assert!((sd - 1.0).abs() < 0.03, "stddev was {sd}");
    }

    #[test]
    fn perturb_stays_positive_even_with_huge_sigma() {
        let mut j = Jitter::new(3, 100.0);
        for _ in 0..100 {
            assert!(j.perturb(5.0) > 0.0);
        }
    }

    #[test]
    fn perturb_with_zero_sigma_is_identity() {
        let mut j = Jitter::new(3, 0.0);
        assert_eq!(j.perturb(123.0), 123.0);
    }

    #[test]
    fn mean_stddev_edge_cases() {
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(mean_stddev(&[5.0]), (5.0, 0.0));
    }
}
