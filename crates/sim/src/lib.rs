//! # voltascope-sim — deterministic discrete-event task-graph simulator
//!
//! This crate is the execution substrate for the whole `voltascope`
//! workspace. Every higher-level activity — a CUDA kernel on a GPU
//! stream, a DMA copy over an NVLink hop, a host-side runtime API call —
//! is lowered to a [`Task`] in a [`TaskGraph`]: a node with a service
//! duration, an optional exclusive [`Resource`] it must occupy while it
//! runs, and dependency edges to the tasks that must finish first.
//!
//! The [`Engine`] executes a task graph under a discrete-event schedule
//! and returns a [`Schedule`]: per-task start/finish times, per-resource
//! utilisation, the makespan, and a [`Trace`] that downstream crates
//! (notably `voltascope-profile`) aggregate into nvprof-style reports.
//!
//! Determinism is a hard requirement: two runs of the same graph must
//! produce bit-identical schedules so that paper-reproduction tables are
//! stable. All tie-breaks are by insertion order, never by hash order or
//! wall-clock time.
//!
//! # Example
//!
//! Two kernels on one exclusive GPU stream serialise; a transfer on an
//! independent link overlaps with them:
//!
//! ```
//! use voltascope_sim::{Engine, SimSpan, TaskGraph};
//!
//! let mut graph = TaskGraph::new();
//! let gpu = graph.add_resource("gpu0.compute", 1);
//! let link = graph.add_resource("nvlink.0-1", 1);
//!
//! let k1 = graph
//!     .task("conv1")
//!     .on(gpu)
//!     .lasting(SimSpan::from_micros(100))
//!     .category("fp")
//!     .build();
//! let k2 = graph
//!     .task("conv2")
//!     .on(gpu)
//!     .lasting(SimSpan::from_micros(50))
//!     .after(k1)
//!     .category("fp")
//!     .build();
//! let xfer = graph
//!     .task("grad-copy")
//!     .on(link)
//!     .lasting(SimSpan::from_micros(120))
//!     .category("wu")
//!     .build();
//!
//! let schedule = Engine::new().run(&graph)?;
//! assert_eq!(schedule.finish_time(k2).as_micros(), 150);
//! // The transfer ran concurrently, so the makespan is max, not sum.
//! assert_eq!(schedule.makespan().as_micros(), 150);
//! assert!(schedule.finish_time(xfer) < schedule.finish_time(k2));
//! # Ok::<(), voltascope_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod engine;
mod error;
mod graph;
mod jitter;
mod time;
mod trace;

pub use engine::{DynamicEvent, DynamicEventKind, Engine, ResourceStats, Schedule};
pub use error::SimError;
pub use graph::{Resource, ResourceId, Task, TaskBuilder, TaskGraph, TaskId};
pub use jitter::{mean_stddev, Jitter};
pub use time::{SimSpan, SimTime};
pub use trace::{Interval, Trace, TraceEvent};
