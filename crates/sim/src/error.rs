//! Error type for the simulator.

use std::fmt;

/// Errors reported by [`Engine::run`](crate::Engine::run).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The task graph contains a dependency cycle: after the event queue
    /// drained, the named tasks had still not run.
    Deadlock {
        /// Labels of the tasks that never became ready.
        stuck: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { stuck } => {
                write!(
                    f,
                    "task graph deadlocked: {} task(s) never became ready (cycle?): {}",
                    stuck.len(),
                    stuck.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_stuck_tasks() {
        let err = SimError::Deadlock {
            stuck: vec!["a".into(), "b".into()],
        };
        let msg = err.to_string();
        assert!(msg.contains("2 task(s)"));
        assert!(msg.contains("a, b"));
    }
}
