//! Simulated time: instants ([`SimTime`]) and durations ([`SimSpan`]).
//!
//! Both are nanosecond-granular unsigned integers. Integer time keeps
//! the event queue total order exact — no floating-point tie ambiguity —
//! which is what makes the whole simulator bit-deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration in simulated time, stored as whole nanoseconds.
///
/// # Example
///
/// ```
/// use voltascope_sim::SimSpan;
///
/// let span = SimSpan::from_micros(1500);
/// assert_eq!(span.as_nanos(), 1_500_000);
/// assert_eq!(span.as_secs_f64(), 0.0015);
/// assert_eq!(span * 2, SimSpan::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimSpan {
    /// The zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimSpan(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative, NaN, and infinite inputs saturate to zero /
    /// `u64::MAX` so cost models never panic on degenerate parameters.
    pub fn from_secs_f64(s: f64) -> Self {
        let ns = s * 1e9;
        if ns.is_nan() || ns <= 0.0 {
            SimSpan(0)
        } else if ns >= u64::MAX as f64 {
            SimSpan(u64::MAX)
        } else {
            SimSpan(ns.round() as u64)
        }
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub const fn saturating_sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a floating-point factor, rounding to the
    /// nearest nanosecond and saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimSpan {
        SimSpan::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The ratio `self / other` as a float; returns 0.0 when `other` is
    /// zero (used for utilisation figures on empty schedules).
    pub fn ratio(self, other: SimSpan) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// The larger of the two spans.
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }

    /// The smaller of the two spans.
    pub fn min(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.min(other.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.checked_add(rhs.0).expect("SimSpan overflow"))
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.checked_sub(rhs.0).expect("SimSpan underflow"))
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.checked_mul(rhs).expect("SimSpan overflow"))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant in simulated time, measured from the start of the run.
///
/// # Example
///
/// ```
/// use voltascope_sim::{SimSpan, SimTime};
///
/// let t = SimTime::ZERO + SimSpan::from_millis(2);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimSpan::from_millis(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the start of the run.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn elapsed_since(self, earlier: SimTime) -> SimSpan {
        assert!(
            earlier.0 <= self.0,
            "elapsed_since: {earlier} is after {self}"
        );
        SimSpan(self.0 - earlier.0)
    }

    /// The later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of the two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        self.elapsed_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimSpan(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_constructors_agree() {
        assert_eq!(SimSpan::from_secs(1), SimSpan::from_millis(1000));
        assert_eq!(SimSpan::from_millis(1), SimSpan::from_micros(1000));
        assert_eq!(SimSpan::from_micros(1), SimSpan::from_nanos(1000));
    }

    #[test]
    fn span_from_f64_rounds() {
        assert_eq!(SimSpan::from_secs_f64(1.5e-9), SimSpan::from_nanos(2));
        assert_eq!(SimSpan::from_secs_f64(0.25), SimSpan::from_millis(250));
    }

    #[test]
    fn span_from_f64_saturates_on_degenerate_input() {
        assert_eq!(SimSpan::from_secs_f64(-1.0), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs_f64(f64::NAN), SimSpan::ZERO);
        assert_eq!(
            SimSpan::from_secs_f64(f64::INFINITY),
            SimSpan::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_micros(3);
        let b = SimSpan::from_micros(2);
        assert_eq!(a + b, SimSpan::from_micros(5));
        assert_eq!(a - b, SimSpan::from_micros(1));
        assert_eq!(a * 4, SimSpan::from_micros(12));
        assert_eq!(a / 3, SimSpan::from_micros(1));
        assert_eq!(b.saturating_sub(a), SimSpan::ZERO);
    }

    #[test]
    fn span_sum_and_ratio() {
        let total: SimSpan = [1u64, 2, 3].into_iter().map(SimSpan::from_micros).sum();
        assert_eq!(total, SimSpan::from_micros(6));
        assert!((SimSpan::from_micros(1).ratio(total) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(total.ratio(SimSpan::ZERO), 0.0);
    }

    #[test]
    fn span_mul_f64() {
        assert_eq!(
            SimSpan::from_micros(100).mul_f64(1.5),
            SimSpan::from_micros(150)
        );
        assert_eq!(SimSpan::from_micros(100).mul_f64(0.0), SimSpan::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimSpan::from_micros(10);
        assert_eq!(t.as_micros(), 10);
        assert_eq!(t - SimTime::ZERO, SimSpan::from_micros(10));
        assert_eq!(t - SimSpan::from_micros(4), SimTime::from_nanos(6_000));
    }

    #[test]
    #[should_panic(expected = "elapsed_since")]
    fn time_elapsed_panics_when_reversed() {
        let t = SimTime::from_nanos(5);
        let _ = SimTime::ZERO.elapsed_since(t);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimSpan::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimSpan::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimSpan::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimSpan::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_nanos(1_000).to_string(), "t+1.000us");
    }

    #[test]
    fn min_max() {
        let a = SimSpan::from_nanos(1);
        let b = SimSpan::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
