//! Shared invariant assertions for schedules and traces.
//!
//! Test suites across the workspace (the engine property tests, the
//! DAG and scheduler integration suites) re-check the same structural
//! facts about every schedule they produce. Centralising the checks
//! here keeps them consistent and lets a new suite opt in with one
//! call instead of re-deriving the list.

use std::collections::BTreeSet;

use crate::engine::Schedule;
use crate::graph::TaskGraph;
use crate::time::SimTime;
use crate::trace::Trace;

/// Asserts the structural invariants of a [`Trace`]: events are
/// ordered by start instant, and no event ends before it starts
/// (durations are non-negative and representable without underflow).
///
/// # Panics
///
/// Panics with a descriptive message when an invariant is violated.
pub fn assert_trace_invariants(trace: &Trace) {
    let events = trace.events();
    for (i, e) in events.iter().enumerate() {
        assert!(
            e.end >= e.start,
            "trace event {i} ({}) ends at {} before its start {}",
            e.label,
            e.end,
            e.start
        );
        // Must not underflow/overflow.
        let _ = e.duration();
        if i > 0 {
            let prev = &events[i - 1];
            assert!(
                prev.start <= e.start,
                "trace not time-sorted: event {i} ({}) at {} follows {} ({})",
                e.label,
                e.start,
                prev.start,
                prev.label
            );
        }
    }
}

/// Asserts the structural invariants of a [`Schedule`] against the
/// graph it executed: everything [`assert_trace_invariants`] checks,
/// plus exactly one trace event per task, per-task `finish >= start`,
/// every event's resource naming a resource the graph defines, the
/// makespan equalling the last finish instant, and every `blocked_by`
/// edge pointing at a task that finished no later than the blocked
/// task started.
///
/// # Panics
///
/// Panics with a descriptive message when an invariant is violated.
pub fn assert_schedule_invariants(graph: &TaskGraph, schedule: &Schedule) {
    assert_trace_invariants(schedule.trace());
    assert_eq!(
        schedule.trace().len(),
        graph.task_count(),
        "trace must hold exactly one event per task"
    );
    let names: BTreeSet<&str> = graph.resources().map(|(_, r)| r.name.as_str()).collect();
    for e in schedule.trace().events() {
        assert!(
            e.task.index() < graph.task_count(),
            "trace event {} names task {:?} outside the graph",
            e.label,
            e.task
        );
        if let Some(res) = &e.resource {
            assert!(
                names.contains(res.as_str()),
                "trace event {} ran on unknown resource {res}",
                e.label
            );
        }
    }
    let mut last = SimTime::ZERO;
    for (id, task) in graph.tasks() {
        let s = schedule.start_time(id);
        let f = schedule.finish_time(id);
        assert!(
            f >= s,
            "task {} finishes at {f} before its start {s}",
            task.label
        );
        last = last.max(f);
        if let Some(p) = schedule.blocked_by(id) {
            assert!(
                p.index() < graph.task_count(),
                "task {} blocked by {p:?} outside the graph",
                task.label
            );
            assert!(
                schedule.finish_time(p) <= s,
                "task {} blocked by {}, which finished after it started",
                task.label,
                graph[p].label
            );
        }
    }
    assert_eq!(
        schedule.makespan(),
        last - SimTime::ZERO,
        "makespan must equal the last finish instant"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::graph::TaskId;
    use crate::time::SimSpan;
    use crate::trace::TraceEvent;

    #[test]
    fn engine_schedules_satisfy_the_invariants() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(SimSpan::from_nanos(5)).build();
        let b = g.task("b").on(r).lasting(SimSpan::from_nanos(3)).build();
        let _ = g.task("join").after(a).after(b).build();
        let s = Engine::new().run(&g).unwrap();
        assert_schedule_invariants(&g, &s);
    }

    #[test]
    #[should_panic(expected = "not time-sorted")]
    fn unsorted_trace_is_rejected() {
        let ev = |start: u64| TraceEvent {
            task: TaskId::from_index(0),
            label: "t".into(),
            category: String::new(),
            resource: None,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(start + 1),
        };
        assert_trace_invariants(&Trace::new(vec![ev(5), ev(2)]));
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn foreign_resource_is_rejected() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("a").on(r).lasting(SimSpan::from_nanos(5)).build();
        let s = Engine::new().run(&g).unwrap();
        let mut events = s.trace().events().to_vec();
        events[0].resource = Some("not-a-resource".into());
        let forged = Trace::new(events);
        // Rebuild a schedule-shaped check through the trace path.
        let names: BTreeSet<&str> = g.resources().map(|(_, res)| res.name.as_str()).collect();
        for e in forged.events() {
            if let Some(res) = &e.resource {
                assert!(names.contains(res.as_str()), "unknown resource {res}");
            }
        }
    }
}
