//! Task graphs: the static description of work handed to the [`Engine`].
//!
//! [`Engine`]: crate::Engine

use crate::time::{SimSpan, SimTime};

/// Identifies a task within one [`TaskGraph`]. Indices are dense and
/// assigned in insertion order, which is also the deterministic
/// tie-break order used by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The dense index of this task inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a task id from its dense index (for synthesising
    /// trace events outside the engine, e.g. in tests and importers).
    pub fn from_index(index: usize) -> Self {
        TaskId(index as u32)
    }
}

/// Identifies a resource within one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The dense index of this resource inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An exclusive (or capacity-limited) server that tasks occupy while
/// they run: a GPU stream, one direction of an NVLink, a PCIe segment,
/// or the host thread issuing CUDA API calls.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name, e.g. `"gpu3.compute"` or `"nvlink.0>2"`.
    pub name: String,
    /// How many tasks may occupy the resource simultaneously.
    pub capacity: u32,
}

/// One unit of simulated work.
#[derive(Debug, Clone)]
pub struct Task {
    /// Human-readable label, e.g. `"fp.conv2"`.
    pub label: String,
    /// Aggregation category (e.g. `"fp"`, `"bp"`, `"wu.comm"`, `"api"`).
    /// Profiler reports group by this string.
    pub category: String,
    /// Resource the task occupies while running; `None` means the task
    /// only waits for its dependencies and consumes no shared capacity.
    pub resource: Option<ResourceId>,
    /// Service time once the task starts.
    pub duration: SimSpan,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
    /// Earliest simulated instant the task may start, independent of
    /// dependencies (used for externally-paced arrivals like the CPU
    /// feeding mini-batches).
    pub release: SimTime,
}

/// A static DAG of [`Task`]s plus the [`Resource`]s they contend for.
///
/// Build one with [`TaskGraph::new`], [`TaskGraph::add_resource`] and
/// the [`TaskGraph::task`] builder, then execute it with
/// [`Engine::run`](crate::Engine::run).
///
/// # Example
///
/// ```
/// use voltascope_sim::{SimSpan, TaskGraph};
///
/// let mut graph = TaskGraph::new();
/// let cpu = graph.add_resource("cpu", 1);
/// let a = graph.task("a").on(cpu).lasting(SimSpan::from_nanos(5)).build();
/// let b = graph.task("b").after(a).build(); // zero-length barrier task
/// assert_eq!(graph.task_count(), 2);
/// assert_eq!(graph[b].deps, vec![a]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) resources: Vec<Resource>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given concurrent `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity resource could
    /// never serve any task and would deadlock the schedule.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: u32) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be at least 1");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
        });
        id
    }

    /// Starts building a task labelled `label`. The task is added to the
    /// graph when [`TaskBuilder::build`] is called.
    pub fn task(&mut self, label: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            graph: self,
            task: Task {
                label: label.into(),
                category: String::new(),
                resource: None,
                duration: SimSpan::ZERO,
                deps: Vec::new(),
                release: SimTime::ZERO,
            },
        }
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of resources registered so far.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Iterates over `(TaskId, &Task)` in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Iterates over `(ResourceId, &Resource)` in insertion order.
    pub fn resources(&self) -> impl Iterator<Item = (ResourceId, &Resource)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i as u32), r))
    }

    /// Adds an extra dependency edge `from -> to` after both tasks were
    /// built (useful when wiring pipelined iterations together).
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    pub fn add_dep(&mut self, first: TaskId, then: TaskId) {
        assert!(first.index() < self.tasks.len(), "unknown task {first:?}");
        let task = self
            .tasks
            .get_mut(then.index())
            .unwrap_or_else(|| panic!("unknown task {then:?}"));
        if !task.deps.contains(&first) {
            task.deps.push(first);
        }
    }

    /// Total service time across all tasks (ignores contention; the
    /// lower bound on total busy time).
    pub fn total_work(&self) -> SimSpan {
        self.tasks.iter().map(|t| t.duration).sum()
    }
}

impl std::ops::Index<TaskId> for TaskGraph {
    type Output = Task;
    fn index(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }
}

impl std::ops::Index<ResourceId> for TaskGraph {
    type Output = Resource;
    fn index(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }
}

/// Builder returned by [`TaskGraph::task`].
#[derive(Debug)]
pub struct TaskBuilder<'g> {
    graph: &'g mut TaskGraph,
    task: Task,
}

impl TaskBuilder<'_> {
    /// Runs the task on `resource` (occupying one capacity slot).
    pub fn on(mut self, resource: ResourceId) -> Self {
        assert!(
            resource.index() < self.graph.resources.len(),
            "unknown resource {resource:?}"
        );
        self.task.resource = Some(resource);
        self
    }

    /// Sets the service duration.
    pub fn lasting(mut self, duration: SimSpan) -> Self {
        self.task.duration = duration;
        self
    }

    /// Adds a dependency on `dep`.
    ///
    /// # Panics
    ///
    /// Panics if `dep` was not created earlier in the same graph; this
    /// ordering rule makes accidental cycles impossible to build through
    /// the builder (only [`TaskGraph::add_dep`] can create one, and the
    /// engine reports those as [`SimError::Deadlock`](crate::SimError)).
    pub fn after(mut self, dep: TaskId) -> Self {
        assert!(
            dep.index() < self.graph.tasks.len(),
            "dependency {dep:?} does not exist yet"
        );
        if !self.task.deps.contains(&dep) {
            self.task.deps.push(dep);
        }
        self
    }

    /// Adds dependencies on every task in `deps`.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        for dep in deps {
            self = self.after(dep);
        }
        self
    }

    /// Sets the aggregation category used by profiler reports.
    pub fn category(mut self, category: impl Into<String>) -> Self {
        self.task.category = category.into();
        self
    }

    /// Sets the earliest start instant (release time).
    pub fn not_before(mut self, release: SimTime) -> Self {
        self.task.release = release;
        self
    }

    /// Finalises the task and returns its id.
    pub fn build(self) -> TaskId {
        let id = TaskId(self.graph.tasks.len() as u32);
        self.graph.tasks.push(self.task);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_task() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        let a = g.task("a").build();
        let b = g
            .task("b")
            .on(r)
            .lasting(SimSpan::from_nanos(7))
            .after(a)
            .category("fp")
            .not_before(SimTime::from_nanos(3))
            .build();
        assert_eq!(g[b].label, "b");
        assert_eq!(g[b].category, "fp");
        assert_eq!(g[b].resource, Some(r));
        assert_eq!(g[b].duration, SimSpan::from_nanos(7));
        assert_eq!(g[b].deps, vec![a]);
        assert_eq!(g[b].release, SimTime::from_nanos(3));
        assert_eq!(g[r].capacity, 2);
    }

    #[test]
    fn duplicate_deps_are_collapsed() {
        let mut g = TaskGraph::new();
        let a = g.task("a").build();
        let b = g.task("b").after(a).after(a).build();
        assert_eq!(g[b].deps, vec![a]);
        g.add_dep(a, b);
        assert_eq!(g[b].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        let _ = g.task("a").after(TaskId(5)).build();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let mut g = TaskGraph::new();
        let _ = g.add_resource("r", 0);
    }

    #[test]
    fn total_work_sums_durations() {
        let mut g = TaskGraph::new();
        g.task("a").lasting(SimSpan::from_nanos(3)).build();
        g.task("b").lasting(SimSpan::from_nanos(4)).build();
        assert_eq!(g.total_work(), SimSpan::from_nanos(7));
    }

    #[test]
    fn iterators_follow_insertion_order() {
        let mut g = TaskGraph::new();
        let r0 = g.add_resource("r0", 1);
        let r1 = g.add_resource("r1", 1);
        let a = g.task("a").build();
        let b = g.task("b").build();
        let task_ids: Vec<_> = g.tasks().map(|(id, _)| id).collect();
        assert_eq!(task_ids, vec![a, b]);
        let res_ids: Vec<_> = g.resources().map(|(id, _)| id).collect();
        assert_eq!(res_ids, vec![r0, r1]);
    }
}
