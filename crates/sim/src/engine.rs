//! The discrete-event engine that executes a [`TaskGraph`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::error::SimError;
use crate::graph::{ResourceId, TaskGraph, TaskId};
use crate::time::{SimSpan, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Executes task graphs. `Engine` is stateless between runs; it exists
/// as a type so future scheduling policies can hang configuration off
/// it without breaking the call sites.
///
/// # Example
///
/// ```
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
///
/// let mut graph = TaskGraph::new();
/// let r = graph.add_resource("gpu", 1);
/// let a = graph.task("a").on(r).lasting(SimSpan::from_nanos(10)).build();
/// let b = graph.task("b").on(r).lasting(SimSpan::from_nanos(10)).build();
/// let schedule = Engine::new().run(&graph)?;
/// // Exclusive resource: b waits for a.
/// assert_eq!(schedule.start_time(b), schedule.finish_time(a));
/// # Ok::<(), voltascope_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine {
    _private: (),
}

/// Occupancy statistics for one resource over a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceStats {
    /// Resource name copied from the graph.
    pub name: String,
    /// Sum of service time over all tasks the resource served.
    pub busy: SimSpan,
    /// Number of tasks served.
    pub served: u64,
    /// Total time tasks spent waiting in this resource's queue.
    pub queue_wait: SimSpan,
}

impl ResourceStats {
    /// Fraction of the makespan this resource was busy, accounting for
    /// capacity (a capacity-2 resource busy on both slots the whole run
    /// reports 1.0). A zero makespan or zero capacity reports 0.0
    /// rather than dividing into inf/NaN — `TaskGraph::add_resource`
    /// rejects capacity-0 resources, but callers can pass an arbitrary
    /// divisor here.
    pub fn utilization(&self, makespan: SimSpan, capacity: u32) -> f64 {
        if makespan.is_zero() || capacity == 0 {
            0.0
        } else {
            self.busy.ratio(makespan) / capacity as f64
        }
    }
}

/// The result of executing a [`TaskGraph`]: start/finish instants for
/// every task, per-resource statistics, and a flat [`Trace`].
#[derive(Debug, Clone)]
pub struct Schedule {
    start: Vec<SimTime>,
    finish: Vec<SimTime>,
    blocked_by: Vec<Option<TaskId>>,
    resource_stats: Vec<ResourceStats>,
    makespan: SimSpan,
    trace: Trace,
}

impl Schedule {
    /// When the task started executing.
    pub fn start_time(&self, task: TaskId) -> SimTime {
        self.start[task.index()]
    }

    /// When the task finished executing.
    pub fn finish_time(&self, task: TaskId) -> SimTime {
        self.finish[task.index()]
    }

    /// Finish instant of the last task; the total simulated run time.
    pub fn makespan(&self) -> SimSpan {
        self.makespan
    }

    /// Per-resource statistics, indexed by [`ResourceId`].
    pub fn resource_stats(&self, resource: ResourceId) -> &ResourceStats {
        &self.resource_stats[resource.index()]
    }

    /// Iterates over all resource statistics in id order.
    pub fn all_resource_stats(&self) -> impl Iterator<Item = (ResourceId, &ResourceStats)> {
        self.resource_stats
            .iter()
            .enumerate()
            .map(|(i, s)| (ResourceId(i as u32), s))
    }

    /// The flat event trace, ordered by start time.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the schedule, returning its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The task (dependency or resource predecessor) that determined
    /// this task's start instant, if any. Walking this chain from the
    /// last-finishing task yields the schedule's critical chain.
    pub fn blocked_by(&self, task: TaskId) -> Option<TaskId> {
        self.blocked_by[task.index()]
    }

    /// The critical chain: the sequence of tasks, earliest first, whose
    /// back-to-back execution determined the makespan.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_sim::{Engine, SimSpan, TaskGraph};
    ///
    /// let mut g = TaskGraph::new();
    /// let a = g.task("a").lasting(SimSpan::from_nanos(10)).build();
    /// let b = g.task("b").lasting(SimSpan::from_nanos(20)).after(a).build();
    /// let schedule = Engine::new().run(&g)?;
    /// assert_eq!(schedule.critical_chain(), vec![a, b]);
    /// # Ok::<(), voltascope_sim::SimError>(())
    /// ```
    pub fn critical_chain(&self) -> Vec<TaskId> {
        let Some(last) = (0..self.finish.len())
            .map(|i| TaskId(i as u32))
            .max_by_key(|t| (self.finish[t.index()], Reverse(t.index())))
        else {
            return Vec::new();
        };
        let mut chain = vec![last];
        let mut cur = last;
        while let Some(prev) = self.blocked_by[cur.index()] {
            chain.push(prev);
            cur = prev;
        }
        chain.reverse();
        chain
    }
}

/// Internal event kinds, ordered by (time, seq) for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A task's release time arrived and its dependencies are met.
    Ready(TaskId),
    /// A task finished service.
    Finish(TaskId),
}

impl Engine {
    /// Creates an engine with the default (FIFO, deterministic) policy.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Executes `graph` and returns the resulting [`Schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the graph contains a dependency
    /// cycle (some tasks never become ready).
    pub fn run(&self, graph: &TaskGraph) -> Result<Schedule, SimError> {
        let n = graph.tasks.len();
        let mut indegree = vec![0u32; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, task) in graph.tasks() {
            indegree[id.index()] = task.deps.len() as u32;
            for &dep in &task.deps {
                dependents[dep.index()].push(id);
            }
        }

        let mut start = vec![SimTime::ZERO; n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut blocked_by: Vec<Option<TaskId>> = vec![None; n];
        // For tasks not yet started: the dep whose finish made them ready.
        let mut ready_cause: Vec<Option<TaskId>> = vec![None; n];
        let mut ready_at: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut completed = vec![false; n];
        let mut completed_count = 0usize;

        struct ResState {
            in_service: u32,
            queue: VecDeque<TaskId>,
            busy: SimSpan,
            served: u64,
            queue_wait: SimSpan,
        }
        let mut res: Vec<ResState> = graph
            .resources
            .iter()
            .map(|_| ResState {
                in_service: 0,
                queue: VecDeque::new(),
                busy: SimSpan::ZERO,
                served: 0,
                queue_wait: SimSpan::ZERO,
            })
            .collect();

        let mut seq = 0u64;
        let mut events: BinaryHeap<Reverse<(SimTime, u64, Event)>> = BinaryHeap::new();
        let push = |events: &mut BinaryHeap<_>, seq: &mut u64, at: SimTime, ev: Event| {
            events.push(Reverse((at, *seq, ev)));
            *seq += 1;
        };

        for (id, task) in graph.tasks() {
            if task.deps.is_empty() {
                push(&mut events, &mut seq, task.release, Event::Ready(id));
            }
        }

        // Starts `task` at `now`; returns its finish event.
        let mut makespan = SimTime::ZERO;
        while let Some(Reverse((now, _, event))) = events.pop() {
            match event {
                Event::Ready(id) => {
                    ready_at[id.index()] = now;
                    let task = &graph.tasks[id.index()];
                    match task.resource {
                        None => {
                            start[id.index()] = now;
                            blocked_by[id.index()] = ready_cause[id.index()];
                            push(
                                &mut events,
                                &mut seq,
                                now + task.duration,
                                Event::Finish(id),
                            );
                        }
                        Some(rid) => {
                            let state = &mut res[rid.index()];
                            if state.in_service < graph.resources[rid.index()].capacity {
                                state.in_service += 1;
                                start[id.index()] = now;
                                blocked_by[id.index()] = ready_cause[id.index()];
                                push(
                                    &mut events,
                                    &mut seq,
                                    now + task.duration,
                                    Event::Finish(id),
                                );
                            } else {
                                state.queue.push_back(id);
                            }
                        }
                    }
                }
                Event::Finish(id) => {
                    finish[id.index()] = now;
                    completed[id.index()] = true;
                    completed_count += 1;
                    makespan = makespan.max(now);
                    let task = &graph.tasks[id.index()];
                    if let Some(rid) = task.resource {
                        let state = &mut res[rid.index()];
                        state.busy += task.duration;
                        state.served += 1;
                        state.in_service -= 1;
                        if let Some(next) = state.queue.pop_front() {
                            state.in_service += 1;
                            state.queue_wait += now - ready_at[next.index()];
                            start[next.index()] = now;
                            // Queue wait dominated: the slot-freeing task
                            // is what unblocked `next` — unless the wait
                            // was zero (queued and granted at the same
                            // instant), where the readiness cause (the
                            // last-finishing dependency, or the release
                            // time) is what actually set the start.
                            blocked_by[next.index()] = if ready_at[next.index()] == now {
                                ready_cause[next.index()]
                            } else {
                                Some(id)
                            };
                            push(
                                &mut events,
                                &mut seq,
                                now + graph.tasks[next.index()].duration,
                                Event::Finish(next),
                            );
                        }
                    }
                    for &dep_id in &dependents[id.index()] {
                        let d = dep_id.index();
                        indegree[d] -= 1;
                        if indegree[d] == 0 {
                            // `id` finished last among deps, so it is the
                            // readiness cause unless the release time or
                            // resource queueing dominates later.
                            ready_cause[d] = Some(id);
                            let at = graph.tasks[d].release.max(now);
                            if at > now {
                                ready_cause[d] = None; // release-gated
                            }
                            push(&mut events, &mut seq, at, Event::Ready(dep_id));
                        }
                    }
                }
            }
        }

        if completed_count != n {
            let stuck = graph
                .tasks()
                .filter(|(id, _)| !completed[id.index()])
                .map(|(_, t)| t.label.clone())
                .collect();
            return Err(SimError::Deadlock { stuck });
        }

        let resource_stats = graph
            .resources
            .iter()
            .zip(&res)
            .map(|(r, s)| ResourceStats {
                name: r.name.clone(),
                busy: s.busy,
                served: s.served,
                queue_wait: s.queue_wait,
            })
            .collect();

        let mut events: Vec<TraceEvent> = graph
            .tasks()
            .map(|(id, task)| TraceEvent {
                task: id,
                label: task.label.clone(),
                category: task.category.clone(),
                resource: task.resource.map(|r| graph[r].name.clone()),
                start: start[id.index()],
                end: finish[id.index()],
            })
            .collect();
        events.sort_by_key(|e| (e.start, e.task));

        Ok(Schedule {
            start,
            finish,
            blocked_by,
            resource_stats,
            makespan: makespan - SimTime::ZERO,
            trace: Trace::new(events),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn span(ns: u64) -> SimSpan {
        SimSpan::from_nanos(ns)
    }

    #[test]
    fn empty_graph_runs() {
        let schedule = Engine::new().run(&TaskGraph::new()).unwrap();
        assert_eq!(schedule.makespan(), SimSpan::ZERO);
        assert!(schedule.critical_chain().is_empty());
    }

    #[test]
    fn independent_tasks_overlap_on_distinct_resources() {
        let mut g = TaskGraph::new();
        let r0 = g.add_resource("r0", 1);
        let r1 = g.add_resource("r1", 1);
        let a = g.task("a").on(r0).lasting(span(10)).build();
        let b = g.task("b").on(r1).lasting(span(8)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(a), SimTime::ZERO);
        assert_eq!(s.start_time(b), SimTime::ZERO);
        assert_eq!(s.makespan(), span(10));
    }

    #[test]
    fn exclusive_resource_serialises_fifo() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g.task("b").on(r).lasting(span(5)).build();
        let c = g.task("c").on(r).lasting(span(5)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.finish_time(a).as_nanos(), 5);
        assert_eq!(s.finish_time(b).as_nanos(), 10);
        assert_eq!(s.finish_time(c).as_nanos(), 15);
        assert_eq!(s.resource_stats(r).served, 3);
        assert_eq!(s.resource_stats(r).busy, span(15));
        assert_eq!(s.resource_stats(r).queue_wait, span(5 + 10));
    }

    #[test]
    fn capacity_two_runs_pairs() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        for i in 0..4 {
            g.task(format!("t{i}")).on(r).lasting(span(10)).build();
        }
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.makespan(), span(20));
        assert!((s.resource_stats(r).utilization(span(20), 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_degenerate_divisors_are_zero_not_nan() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("t").on(r).lasting(span(10)).build();
        let s = Engine::new().run(&g).unwrap();
        let stats = s.resource_stats(r);
        assert_eq!(stats.utilization(SimSpan::ZERO, 1), 0.0);
        assert_eq!(stats.utilization(span(10), 0), 0.0);
        assert!(stats.utilization(span(10), 0).is_finite());
    }

    #[test]
    fn dependencies_are_honoured() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(10)).build();
        let b = g.task("b").lasting(span(1)).after(a).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), s.finish_time(a));
    }

    #[test]
    fn diamond_joins_on_slowest_branch() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(1)).build();
        let b = g.task("b").lasting(span(10)).after(a).build();
        let c = g.task("c").lasting(span(3)).after(a).build();
        let d = g.task("d").lasting(span(1)).after(b).after(c).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(d).as_nanos(), 11);
        assert_eq!(s.critical_chain(), vec![a, b, d]);
    }

    #[test]
    fn release_time_gates_start() {
        let mut g = TaskGraph::new();
        let a = g
            .task("a")
            .lasting(span(1))
            .not_before(SimTime::from_nanos(100))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(a), SimTime::from_nanos(100));
        assert_eq!(s.makespan(), span(101));
    }

    #[test]
    fn release_time_applies_after_deps() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(5)).build();
        let b = g
            .task("b")
            .lasting(span(1))
            .after(a)
            .not_before(SimTime::from_nanos(50))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), SimTime::from_nanos(50));
    }

    #[test]
    fn cycle_is_reported_as_deadlock() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(1)).build();
        let b = g.task("b").lasting(span(1)).after(a).build();
        g.add_dep(b, a); // creates the cycle a -> b -> a
        let err = Engine::new().run(&g).unwrap_err();
        match err {
            SimError::Deadlock { stuck } => {
                assert_eq!(stuck, vec!["a".to_string(), "b".to_string()]);
            }
        }
    }

    #[test]
    fn zero_duration_tasks_act_as_barriers() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(4)).build();
        let b = g.task("b").lasting(span(6)).build();
        let barrier = g.task("join").after(a).after(b).build();
        let c = g.task("c").lasting(span(1)).after(barrier).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(c).as_nanos(), 6);
    }

    #[test]
    fn fifo_tie_break_is_insertion_order() {
        // Both become ready at t=0; the first-inserted must start first.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(3)).build();
        let b = g.task("b").on(r).lasting(span(3)).build();
        let s = Engine::new().run(&g).unwrap();
        assert!(s.start_time(a) < s.start_time(b));
    }

    #[test]
    fn schedule_is_deterministic() {
        let build = || {
            let mut g = TaskGraph::new();
            let r = g.add_resource("r", 2);
            let mut prev = None;
            for i in 0..50 {
                let mut builder = g.task(format!("t{i}")).on(r).lasting(span(1 + i % 7));
                if let Some(p) = prev {
                    if i % 3 == 0 {
                        builder = builder.after(p);
                    }
                }
                prev = Some(builder.build());
            }
            g
        };
        let s1 = Engine::new().run(&build()).unwrap();
        let s2 = Engine::new().run(&build()).unwrap();
        for i in 0..50 {
            let id = TaskId(i as u32);
            assert_eq!(s1.start_time(id), s2.start_time(id));
            assert_eq!(s1.finish_time(id), s2.finish_time(id));
        }
    }

    #[test]
    fn blocked_by_tracks_resource_predecessor() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.blocked_by(b), Some(a));
        assert_eq!(s.blocked_by(a), None);
        assert_eq!(s.critical_chain(), vec![a, b]);
    }

    #[test]
    fn zero_wait_handoff_is_not_blocked_by_slot_freer() {
        // x and a serialise on `r`; b's release time arrives at the
        // exact instant a's slot frees. b is queued and granted within
        // the same event round (zero queue wait), so its start instant
        // was determined by its release, not by a — attributing the
        // slot-freeing task would fabricate an x -> a -> b critical
        // chain when b's start is independent of both.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let x = g.task("x").on(r).lasting(span(5)).build();
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g
            .task("b")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(10))
            .build();
        let s = Engine::new().run(&g).unwrap();
        // a genuinely waited for x's slot.
        assert_eq!(s.blocked_by(a), Some(x));
        assert_eq!(s.start_time(b), SimTime::from_nanos(10));
        // b's wait was zero: only a's 5 ns in-queue time is recorded.
        assert_eq!(s.resource_stats(r).queue_wait, span(5));
        assert_eq!(s.blocked_by(b), None);
        assert_eq!(s.critical_chain(), vec![b]);
    }

    #[test]
    fn positive_wait_handoff_still_blames_slot_freer() {
        // The complementary case: b was ready strictly before the slot
        // freed, so the slot-freeing task really did set its start.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g
            .task("b")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(3))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), SimTime::from_nanos(5));
        assert_eq!(s.blocked_by(b), Some(a));
        assert_eq!(s.critical_chain(), vec![a, b]);
    }

    #[test]
    fn trace_is_sorted_by_start() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("late")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(10))
            .build();
        g.task("early").on(r).lasting(span(5)).build();
        let s = Engine::new().run(&g).unwrap();
        let starts: Vec<_> = s.trace().events().iter().map(|e| e.start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
        assert_eq!(s.trace().events()[0].label, "early");
    }

    #[test]
    fn makespan_matches_last_finish() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let mut last = g.task("t0").on(r).lasting(span(2)).build();
        for i in 1..10 {
            last = g
                .task(format!("t{i}"))
                .on(r)
                .lasting(span(2))
                .after(last)
                .build();
        }
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.makespan(), span(20));
        assert_eq!(s.finish_time(last).as_nanos(), 20);
    }
}
