//! The discrete-event engine that executes a [`TaskGraph`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::error::SimError;
use crate::graph::{ResourceId, TaskGraph, TaskId};
use crate::time::{SimSpan, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Executes task graphs. `Engine` is stateless between runs; it exists
/// as a type so future scheduling policies can hang configuration off
/// it without breaking the call sites.
///
/// # Example
///
/// ```
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
///
/// let mut graph = TaskGraph::new();
/// let r = graph.add_resource("gpu", 1);
/// let a = graph.task("a").on(r).lasting(SimSpan::from_nanos(10)).build();
/// let b = graph.task("b").on(r).lasting(SimSpan::from_nanos(10)).build();
/// let schedule = Engine::new().run(&graph)?;
/// // Exclusive resource: b waits for a.
/// assert_eq!(schedule.start_time(b), schedule.finish_time(a));
/// # Ok::<(), voltascope_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Engine {
    _private: (),
}

/// Occupancy statistics for one resource over a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceStats {
    /// Resource name copied from the graph.
    pub name: String,
    /// Sum of service time over all tasks the resource served.
    pub busy: SimSpan,
    /// Number of tasks served.
    pub served: u64,
    /// Total time tasks spent waiting in this resource's queue.
    pub queue_wait: SimSpan,
}

impl ResourceStats {
    /// Fraction of the makespan this resource was busy, accounting for
    /// capacity (a capacity-2 resource busy on both slots the whole run
    /// reports 1.0). A zero makespan or zero capacity reports 0.0
    /// rather than dividing into inf/NaN — `TaskGraph::add_resource`
    /// rejects capacity-0 resources, but callers can pass an arbitrary
    /// divisor here.
    pub fn utilization(&self, makespan: SimSpan, capacity: u32) -> f64 {
        if makespan.is_zero() || capacity == 0 {
            0.0
        } else {
            self.busy.ratio(makespan) / capacity as f64
        }
    }
}

/// The result of executing a [`TaskGraph`]: start/finish instants for
/// every task, per-resource statistics, and a flat [`Trace`].
#[derive(Debug, Clone)]
pub struct Schedule {
    start: Vec<SimTime>,
    finish: Vec<SimTime>,
    blocked_by: Vec<Option<TaskId>>,
    resource_stats: Vec<ResourceStats>,
    makespan: SimSpan,
    trace: Trace,
}

impl Schedule {
    /// When the task started executing.
    pub fn start_time(&self, task: TaskId) -> SimTime {
        self.start[task.index()]
    }

    /// When the task finished executing.
    pub fn finish_time(&self, task: TaskId) -> SimTime {
        self.finish[task.index()]
    }

    /// Finish instant of the last task; the total simulated run time.
    pub fn makespan(&self) -> SimSpan {
        self.makespan
    }

    /// Per-resource statistics, indexed by [`ResourceId`].
    pub fn resource_stats(&self, resource: ResourceId) -> &ResourceStats {
        &self.resource_stats[resource.index()]
    }

    /// Iterates over all resource statistics in id order.
    pub fn all_resource_stats(&self) -> impl Iterator<Item = (ResourceId, &ResourceStats)> {
        self.resource_stats
            .iter()
            .enumerate()
            .map(|(i, s)| (ResourceId(i as u32), s))
    }

    /// The flat event trace, ordered by start time.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the schedule, returning its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The task (dependency or resource predecessor) that determined
    /// this task's start instant, if any. Walking this chain from the
    /// last-finishing task yields the schedule's critical chain.
    pub fn blocked_by(&self, task: TaskId) -> Option<TaskId> {
        self.blocked_by[task.index()]
    }

    /// The critical chain: the sequence of tasks, earliest first, whose
    /// back-to-back execution determined the makespan.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_sim::{Engine, SimSpan, TaskGraph};
    ///
    /// let mut g = TaskGraph::new();
    /// let a = g.task("a").lasting(SimSpan::from_nanos(10)).build();
    /// let b = g.task("b").lasting(SimSpan::from_nanos(20)).after(a).build();
    /// let schedule = Engine::new().run(&g)?;
    /// assert_eq!(schedule.critical_chain(), vec![a, b]);
    /// # Ok::<(), voltascope_sim::SimError>(())
    /// ```
    pub fn critical_chain(&self) -> Vec<TaskId> {
        let Some(last) = (0..self.finish.len())
            .map(|i| TaskId(i as u32))
            .max_by_key(|t| (self.finish[t.index()], Reverse(t.index())))
        else {
            return Vec::new();
        };
        let mut chain = vec![last];
        let mut cur = last;
        while let Some(prev) = self.blocked_by[cur.index()] {
            chain.push(prev);
            cur = prev;
        }
        chain.reverse();
        chain
    }
}

/// A scheduled mutation of the executing system, applied at a simulated
/// instant while a run is in flight: the dynamic-topology analogue of a
/// link dying or a GPU throttling *mid-epoch* rather than at topology
/// construction time.
///
/// Events are inert unless passed to [`Engine::run_with_events`]; the
/// plain [`Engine::run`] path never constructs one, so schedules of
/// event-free runs are bit-identical to the pre-event engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicEvent {
    /// Simulated instant at which the event applies. At equal instants,
    /// dynamic events apply *before* any task activity: a fault at `t`
    /// affects every task that has not finished by `t` (a task
    /// finishing exactly at `t` still completes normally).
    pub at: SimTime,
    /// What changes.
    pub kind: DynamicEventKind,
}

/// The kinds of mid-run mutation [`Engine::run_with_events`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicEventKind {
    /// The resource dies. In-flight tasks are preempted (the dead
    /// resource keeps the service time already rendered) and their
    /// *remaining* work, re-priced by `duration_factor`, re-queues on
    /// `fallback` ahead of the dead resource's queued tasks, which
    /// follow in FIFO order; tasks bound to the resource that have not
    /// yet become ready re-bind to `fallback` with their full duration
    /// re-priced. With `fallback: None` the affected tasks become
    /// permanently unservable and the run reports
    /// [`SimError::Deadlock`].
    Fail {
        /// The resource that stops serving.
        resource: ResourceId,
        /// Where displaced work goes, if anywhere.
        fallback: Option<ResourceId>,
        /// Multiplier applied to displaced tasks' (remaining)
        /// durations — the relative slowdown of the fallback route.
        duration_factor: f64,
    },
    /// The resource slows (or speeds up): in-flight tasks' *remaining*
    /// durations and queued/unstarted bound tasks' full durations are
    /// multiplied by `factor`.
    Scale {
        /// The resource whose tasks re-price.
        resource: ResourceId,
        /// Multiplier on remaining durations (`> 1` slows).
        factor: f64,
    },
}

/// Internal event kinds, ordered by (time, seq) for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A task's release time arrived and its dependencies are met.
    Ready(TaskId),
    /// A task finished service.
    Finish(TaskId),
    /// A [`DynamicEvent`] (index into the caller's slice) applies.
    Dynamic(u32),
}

/// Marker for an invalidated pending finish: a preempted task's old
/// `Finish` event must not complete it when popped.
const STALE: SimTime = SimTime::from_nanos(u64::MAX);

impl Engine {
    /// Creates an engine with the default (FIFO, deterministic) policy.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Executes `graph` and returns the resulting [`Schedule`].
    ///
    /// Equivalent to [`Engine::run_with_events`] with no events — the
    /// two produce bit-identical schedules.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the graph contains a dependency
    /// cycle (some tasks never become ready).
    pub fn run(&self, graph: &TaskGraph) -> Result<Schedule, SimError> {
        self.run_with_events(graph, &[])
    }

    /// Executes `graph` under scheduled [`DynamicEvent`]s that mutate
    /// resource bindings and remaining durations mid-run (see
    /// [`DynamicEventKind`] for the per-kind semantics).
    ///
    /// Events apply in `(at, index)` order. At equal instants a dynamic
    /// event applies before any task activity at that instant, so a
    /// fault at `t = 0` is indistinguishable from building the graph
    /// with the re-bound resources and re-priced durations, and a fault
    /// at `t >=` the healthy makespan leaves the schedule untouched. A
    /// preempted task keeps its original start instant; its single
    /// trace event spans the preemption gap and reports the *final*
    /// resource it ran on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the graph contains a dependency
    /// cycle, or if a [`DynamicEventKind::Fail`] without a fallback
    /// leaves tasks permanently unservable.
    ///
    /// # Panics
    ///
    /// Panics if an event names a resource `graph` does not define, a
    /// `Fail` names its own resource as fallback, or a duration factor
    /// is non-finite or not positive.
    pub fn run_with_events(
        &self,
        graph: &TaskGraph,
        dynamic: &[DynamicEvent],
    ) -> Result<Schedule, SimError> {
        for ev in dynamic {
            let (resource, factor) = match ev.kind {
                DynamicEventKind::Fail {
                    resource,
                    fallback,
                    duration_factor,
                } => {
                    if let Some(fb) = fallback {
                        assert!(
                            fb.index() < graph.resources.len(),
                            "unknown fallback resource {fb:?}"
                        );
                        assert!(
                            fb != resource,
                            "fallback must differ from the failing resource {resource:?}"
                        );
                    }
                    (resource, duration_factor)
                }
                DynamicEventKind::Scale { resource, factor } => (resource, factor),
            };
            assert!(
                resource.index() < graph.resources.len(),
                "unknown resource {resource:?}"
            );
            assert!(
                factor.is_finite() && factor > 0.0,
                "duration factor {factor} must be finite and positive"
            );
        }
        // Stable (at, index) application order.
        let mut order: Vec<usize> = (0..dynamic.len()).collect();
        order.sort_by_key(|&i| (dynamic[i].at, i));

        let n = graph.tasks.len();
        let mut indegree = vec![0u32; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, task) in graph.tasks() {
            indegree[id.index()] = task.deps.len() as u32;
            for &dep in &task.deps {
                dependents[dep.index()].push(id);
            }
        }

        let mut start = vec![SimTime::ZERO; n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut blocked_by: Vec<Option<TaskId>> = vec![None; n];
        // For tasks not yet started: the dep whose finish made them ready.
        let mut ready_cause: Vec<Option<TaskId>> = vec![None; n];
        let mut ready_at: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut completed = vec![false; n];
        let mut completed_count = 0usize;
        // Mutable per-task execution state: dynamic events re-price
        // pending durations and re-bind resources, so both live outside
        // the immutable graph. With no events they never diverge from
        // the graph's values.
        let mut dur: Vec<SimSpan> = graph.tasks.iter().map(|t| t.duration).collect();
        let mut bound: Vec<Option<ResourceId>> = graph.tasks.iter().map(|t| t.resource).collect();
        let mut started = vec![false; n];
        let mut in_service_task = vec![false; n];
        // Authoritative finish instant; a popped `Finish` is stale (and
        // ignored) unless it matches. Preemption and rescaling update
        // this and push a fresh `Finish` instead of surgery on the heap.
        let mut finish_at = vec![SimTime::ZERO; n];
        // When the current service segment began (= start, unless the
        // task was preempted and re-granted); busy time accrues per
        // segment so a preempting resource keeps what it served.
        let mut segment_start = vec![SimTime::ZERO; n];
        let mut alive = vec![true; graph.resources.len()];

        struct ResState {
            in_service: u32,
            queue: VecDeque<TaskId>,
            busy: SimSpan,
            served: u64,
            queue_wait: SimSpan,
        }
        let mut res: Vec<ResState> = graph
            .resources
            .iter()
            .map(|_| ResState {
                in_service: 0,
                queue: VecDeque::new(),
                busy: SimSpan::ZERO,
                served: 0,
                queue_wait: SimSpan::ZERO,
            })
            .collect();

        let mut seq = 0u64;
        let mut events: BinaryHeap<Reverse<(SimTime, u64, Event)>> = BinaryHeap::new();
        let push = |events: &mut BinaryHeap<_>, seq: &mut u64, at: SimTime, ev: Event| {
            events.push(Reverse((at, *seq, ev)));
            *seq += 1;
        };

        // Dynamic events enter the heap first: their sequence numbers
        // are the smallest, so at equal instants they pop before every
        // Ready/Finish — the "fault applies before task activity" rule.
        for &i in &order {
            push(
                &mut events,
                &mut seq,
                dynamic[i].at,
                Event::Dynamic(i as u32),
            );
        }
        for (id, task) in graph.tasks() {
            if task.deps.is_empty() {
                push(&mut events, &mut seq, task.release, Event::Ready(id));
            }
        }

        // Starts `task` at `now`; returns its finish event.
        let mut makespan = SimTime::ZERO;
        while let Some(Reverse((now, _, event))) = events.pop() {
            match event {
                Event::Ready(id) => {
                    ready_at[id.index()] = now;
                    match bound[id.index()] {
                        None => {
                            started[id.index()] = true;
                            start[id.index()] = now;
                            segment_start[id.index()] = now;
                            blocked_by[id.index()] = ready_cause[id.index()];
                            finish_at[id.index()] = now + dur[id.index()];
                            push(
                                &mut events,
                                &mut seq,
                                finish_at[id.index()],
                                Event::Finish(id),
                            );
                        }
                        Some(rid) => {
                            let state = &mut res[rid.index()];
                            if alive[rid.index()]
                                && state.in_service < graph.resources[rid.index()].capacity
                            {
                                state.in_service += 1;
                                started[id.index()] = true;
                                in_service_task[id.index()] = true;
                                start[id.index()] = now;
                                segment_start[id.index()] = now;
                                blocked_by[id.index()] = ready_cause[id.index()];
                                finish_at[id.index()] = now + dur[id.index()];
                                push(
                                    &mut events,
                                    &mut seq,
                                    finish_at[id.index()],
                                    Event::Finish(id),
                                );
                            } else {
                                state.queue.push_back(id);
                            }
                        }
                    }
                }
                Event::Finish(id) => {
                    // Superseded by a preemption or rescale event.
                    if completed[id.index()] || finish_at[id.index()] != now {
                        continue;
                    }
                    finish[id.index()] = now;
                    completed[id.index()] = true;
                    completed_count += 1;
                    makespan = makespan.max(now);
                    if let Some(rid) = bound[id.index()] {
                        let state = &mut res[rid.index()];
                        state.busy += now - segment_start[id.index()];
                        state.served += 1;
                        state.in_service -= 1;
                        in_service_task[id.index()] = false;
                        if alive[rid.index()] {
                            if let Some(next) = state.queue.pop_front() {
                                state.in_service += 1;
                                state.queue_wait += now - ready_at[next.index()];
                                if !started[next.index()] {
                                    started[next.index()] = true;
                                    start[next.index()] = now;
                                    // Queue wait dominated: the slot-freeing task
                                    // is what unblocked `next` — unless the wait
                                    // was zero (queued and granted at the same
                                    // instant), where the readiness cause (the
                                    // last-finishing dependency, or the release
                                    // time) is what actually set the start.
                                    blocked_by[next.index()] = if ready_at[next.index()] == now {
                                        ready_cause[next.index()]
                                    } else {
                                        Some(id)
                                    };
                                }
                                in_service_task[next.index()] = true;
                                segment_start[next.index()] = now;
                                finish_at[next.index()] = now + dur[next.index()];
                                push(
                                    &mut events,
                                    &mut seq,
                                    finish_at[next.index()],
                                    Event::Finish(next),
                                );
                            }
                        }
                    }
                    for &dep_id in &dependents[id.index()] {
                        let d = dep_id.index();
                        indegree[d] -= 1;
                        if indegree[d] == 0 {
                            // `id` finished last among deps, so it is the
                            // readiness cause unless the release time or
                            // resource queueing dominates later.
                            ready_cause[d] = Some(id);
                            let at = graph.tasks[d].release.max(now);
                            if at > now {
                                ready_cause[d] = None; // release-gated
                            }
                            push(&mut events, &mut seq, at, Event::Ready(dep_id));
                        }
                    }
                }
                Event::Dynamic(i) => match dynamic[i as usize].kind {
                    DynamicEventKind::Scale { resource, factor } => {
                        for t in 0..n {
                            if completed[t] || bound[t] != Some(resource) {
                                continue;
                            }
                            if in_service_task[t] {
                                // Rescale the *remaining* service only;
                                // a task finishing this instant is left
                                // to complete normally.
                                if finish_at[t] > now {
                                    let remaining = finish_at[t] - now;
                                    finish_at[t] = now + remaining.mul_f64(factor);
                                    push(
                                        &mut events,
                                        &mut seq,
                                        finish_at[t],
                                        Event::Finish(TaskId(t as u32)),
                                    );
                                }
                            } else {
                                dur[t] = dur[t].mul_f64(factor);
                            }
                        }
                    }
                    DynamicEventKind::Fail {
                        resource,
                        fallback,
                        duration_factor,
                    } => {
                        let rix = resource.index();
                        alive[rix] = false;
                        let waiting: Vec<TaskId> = res[rix].queue.drain(..).collect();
                        let mut queued = vec![false; n];
                        for &t in &waiting {
                            queued[t.index()] = true;
                        }
                        // Preempted continuations first (ascending task
                        // id), then the dead queue in FIFO order.
                        let mut displaced: Vec<TaskId> = Vec::new();
                        for t in 0..n {
                            if completed[t] || bound[t] != Some(resource) {
                                continue;
                            }
                            if in_service_task[t] {
                                if finish_at[t] == now {
                                    continue; // finishing this instant
                                }
                                res[rix].busy += now - segment_start[t];
                                res[rix].in_service -= 1;
                                in_service_task[t] = false;
                                dur[t] = (finish_at[t] - now).mul_f64(duration_factor);
                                finish_at[t] = STALE;
                                ready_at[t] = now;
                                displaced.push(TaskId(t as u32));
                            } else if !queued[t] {
                                // Not yet ready: re-bind in place; the
                                // normal Ready path grants it later.
                                dur[t] = dur[t].mul_f64(duration_factor);
                                if fallback.is_some() {
                                    bound[t] = fallback;
                                }
                            }
                        }
                        for &t in &waiting {
                            res[rix].queue_wait += now - ready_at[t.index()];
                            ready_at[t.index()] = now;
                            dur[t.index()] = dur[t.index()].mul_f64(duration_factor);
                            displaced.push(t);
                        }
                        match fallback {
                            Some(fb) => {
                                for &t in &displaced {
                                    bound[t.index()] = Some(fb);
                                    let state = &mut res[fb.index()];
                                    if alive[fb.index()]
                                        && state.in_service < graph.resources[fb.index()].capacity
                                    {
                                        state.in_service += 1;
                                        if !started[t.index()] {
                                            started[t.index()] = true;
                                            start[t.index()] = now;
                                            blocked_by[t.index()] = if ready_at[t.index()] == now {
                                                ready_cause[t.index()]
                                            } else {
                                                None
                                            };
                                        }
                                        in_service_task[t.index()] = true;
                                        segment_start[t.index()] = now;
                                        finish_at[t.index()] = now + dur[t.index()];
                                        push(
                                            &mut events,
                                            &mut seq,
                                            finish_at[t.index()],
                                            Event::Finish(t),
                                        );
                                    } else {
                                        state.queue.push_back(t);
                                    }
                                }
                            }
                            None => {
                                // Nowhere to go: park on the dead queue,
                                // which never grants — reported as
                                // deadlocked at the end of the run.
                                for &t in &displaced {
                                    res[rix].queue.push_back(t);
                                }
                            }
                        }
                    }
                },
            }
        }

        if completed_count != n {
            let stuck = graph
                .tasks()
                .filter(|(id, _)| !completed[id.index()])
                .map(|(_, t)| t.label.clone())
                .collect();
            return Err(SimError::Deadlock { stuck });
        }

        let resource_stats = graph
            .resources
            .iter()
            .zip(&res)
            .map(|(r, s)| ResourceStats {
                name: r.name.clone(),
                busy: s.busy,
                served: s.served,
                queue_wait: s.queue_wait,
            })
            .collect();

        let mut events: Vec<TraceEvent> = graph
            .tasks()
            .map(|(id, task)| TraceEvent {
                task: id,
                label: task.label.clone(),
                category: task.category.clone(),
                // The *final* binding: identical to the graph's unless a
                // dynamic event re-bound the task mid-run.
                resource: bound[id.index()].map(|r| graph[r].name.clone()),
                start: start[id.index()],
                end: finish[id.index()],
            })
            .collect();
        events.sort_by_key(|e| (e.start, e.task));

        Ok(Schedule {
            start,
            finish,
            blocked_by,
            resource_stats,
            makespan: makespan - SimTime::ZERO,
            trace: Trace::new(events),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn span(ns: u64) -> SimSpan {
        SimSpan::from_nanos(ns)
    }

    #[test]
    fn empty_graph_runs() {
        let schedule = Engine::new().run(&TaskGraph::new()).unwrap();
        assert_eq!(schedule.makespan(), SimSpan::ZERO);
        assert!(schedule.critical_chain().is_empty());
    }

    #[test]
    fn independent_tasks_overlap_on_distinct_resources() {
        let mut g = TaskGraph::new();
        let r0 = g.add_resource("r0", 1);
        let r1 = g.add_resource("r1", 1);
        let a = g.task("a").on(r0).lasting(span(10)).build();
        let b = g.task("b").on(r1).lasting(span(8)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(a), SimTime::ZERO);
        assert_eq!(s.start_time(b), SimTime::ZERO);
        assert_eq!(s.makespan(), span(10));
    }

    #[test]
    fn exclusive_resource_serialises_fifo() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g.task("b").on(r).lasting(span(5)).build();
        let c = g.task("c").on(r).lasting(span(5)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.finish_time(a).as_nanos(), 5);
        assert_eq!(s.finish_time(b).as_nanos(), 10);
        assert_eq!(s.finish_time(c).as_nanos(), 15);
        assert_eq!(s.resource_stats(r).served, 3);
        assert_eq!(s.resource_stats(r).busy, span(15));
        assert_eq!(s.resource_stats(r).queue_wait, span(5 + 10));
    }

    #[test]
    fn capacity_two_runs_pairs() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        for i in 0..4 {
            g.task(format!("t{i}")).on(r).lasting(span(10)).build();
        }
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.makespan(), span(20));
        assert!((s.resource_stats(r).utilization(span(20), 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_degenerate_divisors_are_zero_not_nan() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("t").on(r).lasting(span(10)).build();
        let s = Engine::new().run(&g).unwrap();
        let stats = s.resource_stats(r);
        assert_eq!(stats.utilization(SimSpan::ZERO, 1), 0.0);
        assert_eq!(stats.utilization(span(10), 0), 0.0);
        assert!(stats.utilization(span(10), 0).is_finite());
    }

    #[test]
    fn dependencies_are_honoured() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(10)).build();
        let b = g.task("b").lasting(span(1)).after(a).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), s.finish_time(a));
    }

    #[test]
    fn diamond_joins_on_slowest_branch() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(1)).build();
        let b = g.task("b").lasting(span(10)).after(a).build();
        let c = g.task("c").lasting(span(3)).after(a).build();
        let d = g.task("d").lasting(span(1)).after(b).after(c).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(d).as_nanos(), 11);
        assert_eq!(s.critical_chain(), vec![a, b, d]);
    }

    #[test]
    fn release_time_gates_start() {
        let mut g = TaskGraph::new();
        let a = g
            .task("a")
            .lasting(span(1))
            .not_before(SimTime::from_nanos(100))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(a), SimTime::from_nanos(100));
        assert_eq!(s.makespan(), span(101));
    }

    #[test]
    fn release_time_applies_after_deps() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(5)).build();
        let b = g
            .task("b")
            .lasting(span(1))
            .after(a)
            .not_before(SimTime::from_nanos(50))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), SimTime::from_nanos(50));
    }

    #[test]
    fn cycle_is_reported_as_deadlock() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(1)).build();
        let b = g.task("b").lasting(span(1)).after(a).build();
        g.add_dep(b, a); // creates the cycle a -> b -> a
        let err = Engine::new().run(&g).unwrap_err();
        match err {
            SimError::Deadlock { stuck } => {
                assert_eq!(stuck, vec!["a".to_string(), "b".to_string()]);
            }
        }
    }

    #[test]
    fn zero_duration_tasks_act_as_barriers() {
        let mut g = TaskGraph::new();
        let a = g.task("a").lasting(span(4)).build();
        let b = g.task("b").lasting(span(6)).build();
        let barrier = g.task("join").after(a).after(b).build();
        let c = g.task("c").lasting(span(1)).after(barrier).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(c).as_nanos(), 6);
    }

    #[test]
    fn fifo_tie_break_is_insertion_order() {
        // Both become ready at t=0; the first-inserted must start first.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(3)).build();
        let b = g.task("b").on(r).lasting(span(3)).build();
        let s = Engine::new().run(&g).unwrap();
        assert!(s.start_time(a) < s.start_time(b));
    }

    #[test]
    fn schedule_is_deterministic() {
        let build = || {
            let mut g = TaskGraph::new();
            let r = g.add_resource("r", 2);
            let mut prev = None;
            for i in 0..50 {
                let mut builder = g.task(format!("t{i}")).on(r).lasting(span(1 + i % 7));
                if let Some(p) = prev {
                    if i % 3 == 0 {
                        builder = builder.after(p);
                    }
                }
                prev = Some(builder.build());
            }
            g
        };
        let s1 = Engine::new().run(&build()).unwrap();
        let s2 = Engine::new().run(&build()).unwrap();
        for i in 0..50 {
            let id = TaskId(i as u32);
            assert_eq!(s1.start_time(id), s2.start_time(id));
            assert_eq!(s1.finish_time(id), s2.finish_time(id));
        }
    }

    #[test]
    fn blocked_by_tracks_resource_predecessor() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.blocked_by(b), Some(a));
        assert_eq!(s.blocked_by(a), None);
        assert_eq!(s.critical_chain(), vec![a, b]);
    }

    #[test]
    fn zero_wait_handoff_is_not_blocked_by_slot_freer() {
        // x and a serialise on `r`; b's release time arrives at the
        // exact instant a's slot frees. b is queued and granted within
        // the same event round (zero queue wait), so its start instant
        // was determined by its release, not by a — attributing the
        // slot-freeing task would fabricate an x -> a -> b critical
        // chain when b's start is independent of both.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let x = g.task("x").on(r).lasting(span(5)).build();
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g
            .task("b")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(10))
            .build();
        let s = Engine::new().run(&g).unwrap();
        // a genuinely waited for x's slot.
        assert_eq!(s.blocked_by(a), Some(x));
        assert_eq!(s.start_time(b), SimTime::from_nanos(10));
        // b's wait was zero: only a's 5 ns in-queue time is recorded.
        assert_eq!(s.resource_stats(r).queue_wait, span(5));
        assert_eq!(s.blocked_by(b), None);
        assert_eq!(s.critical_chain(), vec![b]);
    }

    #[test]
    fn positive_wait_handoff_still_blames_slot_freer() {
        // The complementary case: b was ready strictly before the slot
        // freed, so the slot-freeing task really did set its start.
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(5)).build();
        let b = g
            .task("b")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(3))
            .build();
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.start_time(b), SimTime::from_nanos(5));
        assert_eq!(s.blocked_by(b), Some(a));
        assert_eq!(s.critical_chain(), vec![a, b]);
    }

    #[test]
    fn trace_is_sorted_by_start() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("late")
            .on(r)
            .lasting(span(5))
            .not_before(SimTime::from_nanos(10))
            .build();
        g.task("early").on(r).lasting(span(5)).build();
        let s = Engine::new().run(&g).unwrap();
        let starts: Vec<_> = s.trace().events().iter().map(|e| e.start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
        assert_eq!(s.trace().events()[0].label, "early");
    }

    // ---- Dynamic events. ----

    fn fail(at: u64, resource: ResourceId, fallback: ResourceId, f: f64) -> DynamicEvent {
        DynamicEvent {
            at: SimTime::from_nanos(at),
            kind: DynamicEventKind::Fail {
                resource,
                fallback: Some(fallback),
                duration_factor: f,
            },
        }
    }

    fn scale(at: u64, resource: ResourceId, factor: f64) -> DynamicEvent {
        DynamicEvent {
            at: SimTime::from_nanos(at),
            kind: DynamicEventKind::Scale { resource, factor },
        }
    }

    #[test]
    fn no_events_matches_run_event_for_event() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 2);
        let mut prev = None;
        for i in 0..20 {
            let mut b = g.task(format!("t{i}")).on(r).lasting(span(1 + i % 5));
            if let Some(p) = prev {
                b = b.after(p);
            }
            prev = Some(b.build());
        }
        let a = Engine::new().run(&g).unwrap();
        let b = Engine::new().run_with_events(&g, &[]).unwrap();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.trace().events(), b.trace().events());
    }

    #[test]
    fn scale_rescales_only_the_remaining_duration() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let s = Engine::new()
            .run_with_events(&g, &[scale(4, r, 2.0)])
            .unwrap();
        // 4 ns done, remaining 6 ns doubles to 12: finish at 16.
        assert_eq!(s.finish_time(a).as_nanos(), 16);
        assert_eq!(s.resource_stats(r).busy, span(16));
    }

    #[test]
    fn scale_reprices_queued_and_unstarted_tasks_in_full() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).build();
        let s = Engine::new()
            .run_with_events(&g, &[scale(4, r, 2.0)])
            .unwrap();
        assert_eq!(s.finish_time(a).as_nanos(), 16);
        // b was queued: its whole 10 ns doubles.
        assert_eq!(s.start_time(b).as_nanos(), 16);
        assert_eq!(s.finish_time(b).as_nanos(), 36);
    }

    #[test]
    fn scale_below_one_speeds_the_remainder_up() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let a = g.task("a").on(r).lasting(span(100)).build();
        let s = Engine::new()
            .run_with_events(&g, &[scale(20, r, 0.5)])
            .unwrap();
        assert_eq!(s.finish_time(a).as_nanos(), 60);
    }

    #[test]
    fn fail_preempts_in_flight_and_displaces_the_queue() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let fb = g.add_resource("fb", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).build();
        let s = Engine::new()
            .run_with_events(&g, &[fail(5, r, fb, 1.5)])
            .unwrap();
        // a ran 5 ns on r; its remaining 5 ns re-prices to 8 (7.5
        // rounded) and resumes on fb immediately.
        assert_eq!(s.start_time(a).as_nanos(), 0, "original start survives");
        assert_eq!(s.finish_time(a).as_nanos(), 13);
        // b's full 10 ns re-prices to 15, behind a on fb.
        assert_eq!(s.start_time(b).as_nanos(), 13);
        assert_eq!(s.finish_time(b).as_nanos(), 28);
        // The dead resource keeps the 5 ns it actually served; fb
        // accrues the rest. Completions count on the final resource.
        assert_eq!(s.resource_stats(r).busy, span(5));
        assert_eq!(s.resource_stats(r).served, 0);
        assert_eq!(s.resource_stats(fb).busy, span(8 + 15));
        assert_eq!(s.resource_stats(fb).served, 2);
        // Trace reports the final binding.
        for e in s.trace().events() {
            assert_eq!(e.resource.as_deref(), Some("fb"));
        }
    }

    #[test]
    fn preempted_work_requeues_ahead_of_displaced_queue_and_behind_fb_work() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let fb = g.add_resource("fb", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).build();
        let c = g.task("c").on(fb).lasting(span(20)).build();
        let s = Engine::new()
            .run_with_events(&g, &[fail(5, r, fb, 1.0)])
            .unwrap();
        assert_eq!(s.finish_time(c).as_nanos(), 20);
        // a's 5 ns remainder waits behind c, then b's full 10 ns.
        assert_eq!(s.finish_time(a).as_nanos(), 25);
        assert_eq!(s.start_time(b).as_nanos(), 25);
        assert_eq!(s.finish_time(b).as_nanos(), 35);
    }

    #[test]
    fn fail_rebinds_tasks_that_are_not_yet_ready() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let fb = g.add_resource("fb", 1);
        let a = g.task("a").lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).after(a).build();
        let s = Engine::new()
            .run_with_events(&g, &[fail(5, r, fb, 2.0)])
            .unwrap();
        assert_eq!(s.start_time(b).as_nanos(), 10);
        assert_eq!(s.finish_time(b).as_nanos(), 30);
        assert_eq!(
            s.trace()
                .events()
                .iter()
                .find(|e| e.label == "b")
                .unwrap()
                .resource
                .as_deref(),
            Some("fb")
        );
    }

    #[test]
    fn fail_at_zero_equals_a_prebound_graph() {
        let build = |res_name: &str, factor: f64| {
            let mut g = TaskGraph::new();
            let r = g.add_resource("r", 1);
            let fb = g.add_resource("fb", 1);
            let pick = if res_name == "r" { r } else { fb };
            for i in 0..6 {
                g.task(format!("t{i}"))
                    .on(pick)
                    .lasting(span(7 + i).mul_f64(factor))
                    .build();
            }
            (g, r, fb)
        };
        let (g_dyn, r, fb) = build("r", 1.0);
        let dynamic = Engine::new()
            .run_with_events(&g_dyn, &[fail(0, r, fb, 2.0)])
            .unwrap();
        let (g_pre, _, _) = build("fb", 2.0);
        let prebound = Engine::new().run(&g_pre).unwrap();
        assert_eq!(dynamic.makespan(), prebound.makespan());
        assert_eq!(dynamic.trace().events(), prebound.trace().events());
    }

    #[test]
    fn events_at_or_after_the_makespan_change_nothing() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let fb = g.add_resource("fb", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(10)).after(a).build();
        let healthy = Engine::new().run(&g).unwrap();
        for at in [20, 21, 1000] {
            let faulted = Engine::new()
                .run_with_events(&g, &[fail(at, r, fb, 3.0), scale(at, r, 5.0)])
                .unwrap();
            assert_eq!(healthy.makespan(), faulted.makespan(), "event at {at}");
            assert_eq!(healthy.trace().events(), faulted.trace().events());
            assert_eq!(
                healthy.resource_stats(r).busy,
                faulted.resource_stats(r).busy
            );
        }
        let _ = b;
    }

    #[test]
    fn task_finishing_at_the_fault_instant_completes_on_the_dying_resource() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let fb = g.add_resource("fb", 1);
        let a = g.task("a").on(r).lasting(span(10)).build();
        let b = g.task("b").on(r).lasting(span(4)).after(a).build();
        let s = Engine::new()
            .run_with_events(&g, &[fail(10, r, fb, 1.0)])
            .unwrap();
        // a finished exactly as the link died: it stays on r.
        assert_eq!(s.finish_time(a).as_nanos(), 10);
        let ev_a = s.trace().events().iter().find(|e| e.label == "a").unwrap();
        assert_eq!(ev_a.resource.as_deref(), Some("r"));
        // b had not started: it runs on the fallback.
        assert_eq!(s.finish_time(b).as_nanos(), 14);
        let ev_b = s.trace().events().iter().find(|e| e.label == "b").unwrap();
        assert_eq!(ev_b.resource.as_deref(), Some("fb"));
    }

    #[test]
    fn fail_without_fallback_reports_deadlock() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("doomed").on(r).lasting(span(10)).build();
        let err = Engine::new()
            .run_with_events(
                &g,
                &[DynamicEvent {
                    at: SimTime::from_nanos(5),
                    kind: DynamicEventKind::Fail {
                        resource: r,
                        fallback: None,
                        duration_factor: 1.0,
                    },
                }],
            )
            .unwrap_err();
        match err {
            SimError::Deadlock { stuck } => assert_eq!(stuck, vec!["doomed".to_string()]),
        }
    }

    #[test]
    fn chained_failures_follow_the_current_binding() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("r1", 1);
        let r2 = g.add_resource("r2", 1);
        let r3 = g.add_resource("r3", 1);
        let a = g.task("a").on(r1).lasting(span(100)).build();
        let s = Engine::new()
            .run_with_events(&g, &[fail(10, r1, r2, 1.0), fail(20, r2, r3, 1.0)])
            .unwrap();
        // 10 ns on r1, 10 on r2, the last 80 on r3.
        assert_eq!(s.finish_time(a).as_nanos(), 100);
        assert_eq!(s.resource_stats(r1).busy, span(10));
        assert_eq!(s.resource_stats(r2).busy, span(10));
        assert_eq!(s.resource_stats(r3).busy, span(80));
        let ev = s.trace().events().iter().find(|e| e.label == "a").unwrap();
        assert_eq!(ev.resource.as_deref(), Some("r3"));
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn non_positive_factor_panics() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        g.task("a").on(r).lasting(span(10)).build();
        let _ = Engine::new().run_with_events(&g, &[scale(0, r, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn event_on_unknown_resource_panics() {
        let g = TaskGraph::new();
        let _ = Engine::new().run_with_events(&g, &[scale(0, ResourceId(7), 2.0)]);
    }

    #[test]
    fn makespan_matches_last_finish() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r", 1);
        let mut last = g.task("t0").on(r).lasting(span(2)).build();
        for i in 1..10 {
            last = g
                .task(format!("t{i}"))
                .on(r)
                .lasting(span(2))
                .after(last)
                .build();
        }
        let s = Engine::new().run(&g).unwrap();
        assert_eq!(s.makespan(), span(20));
        assert_eq!(s.finish_time(last).as_nanos(), 20);
    }
}
