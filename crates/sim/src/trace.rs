//! Flat execution traces and interval arithmetic.
//!
//! A [`Trace`] is the simulator's analogue of an `nvprof` timeline
//! export: one [`TraceEvent`] per executed task, with its resource,
//! category, and start/end instants. The profiler crate builds its
//! reports from these.

use std::collections::BTreeMap;

use crate::graph::TaskId;
use crate::time::{SimSpan, SimTime};

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "interval end before start");
        Interval { start, end }
    }

    /// The interval's length.
    pub fn len(&self) -> SimSpan {
        self.end - self.start
    }

    /// `true` if the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `self` and `other` overlap or touch.
    pub fn touches(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Total length of the union of `intervals` (overlaps counted once).
    ///
    /// This is how "time where *any* FP/BP kernel was running" is
    /// computed for the stage-breakdown figures: summing durations would
    /// double-count concurrent kernels on different GPUs.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_sim::{Interval, SimTime, SimSpan};
    ///
    /// let t = SimTime::from_nanos;
    /// let union = Interval::union_len(&mut [
    ///     Interval::new(t(0), t(10)),
    ///     Interval::new(t(5), t(15)),
    ///     Interval::new(t(30), t(40)),
    /// ]);
    /// assert_eq!(union, SimSpan::from_nanos(25));
    /// ```
    pub fn union_len(intervals: &mut [Interval]) -> SimSpan {
        intervals.sort();
        let mut total = SimSpan::ZERO;
        let mut current: Option<Interval> = None;
        for iv in intervals.iter() {
            match &mut current {
                None => current = Some(*iv),
                Some(cur) => {
                    if iv.start <= cur.end {
                        cur.end = cur.end.max(iv.end);
                    } else {
                        total += cur.len();
                        current = Some(*iv);
                    }
                }
            }
        }
        if let Some(cur) = current {
            total += cur.len();
        }
        total
    }
}

/// One executed task in a finished schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The task's id in its graph.
    pub task: TaskId,
    /// Task label (e.g. `"gpu2/bp.conv4"`).
    pub label: String,
    /// Aggregation category (e.g. `"fp"`, `"wu.comm"`, `"api.sync"`).
    pub category: String,
    /// Name of the resource the task ran on, if any.
    pub resource: Option<String>,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl TraceEvent {
    /// The event's duration.
    pub fn duration(&self) -> SimSpan {
        self.end - self.start
    }

    /// The event's time interval.
    pub fn interval(&self) -> Interval {
        Interval::new(self.start, self.end)
    }
}

/// An ordered collection of [`TraceEvent`]s from one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps a list of events (callers should pre-sort by start time;
    /// [`Engine::run`](crate::Engine::run) already does).
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// All events, ordered by start time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose category satisfies `pred`.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| pred(e))
    }

    /// Sum of event durations per category (double-counts overlap; this
    /// is nvprof's "GPU activities" style accounting).
    pub fn busy_by_category(&self) -> BTreeMap<String, SimSpan> {
        let mut map = BTreeMap::new();
        for e in &self.events {
            *map.entry(e.category.clone()).or_insert(SimSpan::ZERO) += e.duration();
        }
        map
    }

    /// Wall-clock span during which at least one event whose category
    /// starts with `prefix` was running (union of intervals).
    pub fn wall_span_of(&self, prefix: &str) -> SimSpan {
        let mut intervals: Vec<Interval> = self
            .events
            .iter()
            .filter(|e| e.category.starts_with(prefix))
            .map(|e| e.interval())
            .collect();
        Interval::union_len(&mut intervals)
    }

    /// Sum of durations of events whose category starts with `prefix`.
    pub fn total_of(&self, prefix: &str) -> SimSpan {
        self.events
            .iter()
            .filter(|e| e.category.starts_with(prefix))
            .map(|e| e.duration())
            .sum()
    }

    /// The end instant of the last event, or `SimTime::ZERO` if empty.
    pub fn end_time(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Appends all events of `other`, shifted forward by `offset`, onto
    /// this trace (used to stitch per-iteration traces into an epoch).
    pub fn append_shifted(&mut self, other: &Trace, offset: SimSpan) {
        for e in &other.events {
            self.events.push(TraceEvent {
                task: e.task,
                label: e.label.clone(),
                category: e.category.clone(),
                resource: e.resource.clone(),
                start: e.start + offset,
                end: e.end + offset,
            });
        }
        self.events.sort_by_key(|e| e.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, cat: &str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            task: TaskId(0),
            label: label.into(),
            category: cat.into(),
            resource: None,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let t = SimTime::from_nanos;
        let mut ivs = vec![
            Interval::new(t(0), t(4)),
            Interval::new(t(2), t(6)),
            Interval::new(t(6), t(8)), // touching counts as merged
            Interval::new(t(20), t(21)),
        ];
        assert_eq!(Interval::union_len(&mut ivs), SimSpan::from_nanos(9));
    }

    #[test]
    fn interval_union_of_empty_is_zero() {
        assert_eq!(Interval::union_len(&mut []), SimSpan::ZERO);
    }

    #[test]
    fn interval_basics() {
        let t = SimTime::from_nanos;
        let a = Interval::new(t(0), t(5));
        let b = Interval::new(t(5), t(9));
        let c = Interval::new(t(6), t(9));
        assert!(a.touches(&b));
        assert!(!a.touches(&c));
        assert_eq!(a.len(), SimSpan::from_nanos(5));
        assert!(Interval::new(t(3), t(3)).is_empty());
    }

    #[test]
    #[should_panic(expected = "interval end before start")]
    fn reversed_interval_panics() {
        let t = SimTime::from_nanos;
        let _ = Interval::new(t(5), t(1));
    }

    #[test]
    fn busy_by_category_sums_durations() {
        let trace = Trace::new(vec![
            ev("k1", "fp", 0, 10),
            ev("k2", "fp", 5, 15),
            ev("x", "wu", 0, 3),
        ]);
        let busy = trace.busy_by_category();
        assert_eq!(busy["fp"], SimSpan::from_nanos(20)); // overlap double-counted
        assert_eq!(busy["wu"], SimSpan::from_nanos(3));
    }

    #[test]
    fn wall_span_unions_overlap() {
        let trace = Trace::new(vec![
            ev("k1", "fp", 0, 10),
            ev("k2", "fp", 5, 15),
            ev("k3", "fp.conv", 30, 35),
        ]);
        // [0,10] ∪ [5,15] merges to 15ns, plus the disjoint [30,35).
        assert_eq!(trace.wall_span_of("fp"), SimSpan::from_nanos(20));
        assert_eq!(trace.total_of("fp"), SimSpan::from_nanos(25));
    }

    #[test]
    fn prefix_matching_selects_subcategories() {
        let trace = Trace::new(vec![
            ev("a", "wu.comm", 0, 4),
            ev("b", "wu.update", 4, 6),
            ev("c", "fp", 0, 1),
        ]);
        assert_eq!(trace.total_of("wu"), SimSpan::from_nanos(6));
        assert_eq!(trace.total_of("wu.update"), SimSpan::from_nanos(2));
    }

    #[test]
    fn append_shifted_offsets_and_reorders() {
        let mut a = Trace::new(vec![ev("a", "fp", 0, 10)]);
        let b = Trace::new(vec![ev("b", "fp", 0, 5)]);
        a.append_shifted(&b, SimSpan::from_nanos(3));
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].label, "b");
        assert_eq!(a.events()[1].start, SimTime::from_nanos(3));
        assert_eq!(a.end_time(), SimTime::from_nanos(10));
    }

    #[test]
    fn end_time_of_empty_trace_is_zero() {
        assert_eq!(Trace::default().end_time(), SimTime::ZERO);
        assert!(Trace::default().is_empty());
    }
}
