//! Degraded-DGX-1 fault-injection sweep: epoch-time and idle-time
//! deltas when the paper's platform loses an NVLink interface or one
//! GPU thermally throttles.
//!
//! The scenarios live on the grid engine's fault axis
//! ([`crate::grid::FaultScenario`], re-exported here); this module is
//! just a grid sweep with a non-trivial fault axis plus the delta
//! bookkeeping against the healthy baseline.
//!
//! A notable non-result drives the scenario choice: the hybrid
//! cube-mesh tolerates any *single* dead NVLink cable at 8 GPUs — an
//! all-NVLink Hamiltonian ring with the same 25 GB/s cross-quad
//! bottleneck always survives, so NCCL renegotiates and epoch time
//! barely moves (see `single_dead_cable_is_survivable_at_8_gpus`
//! below). Only a full interface failure (all of one GPU's bricks)
//! breaks the ring and forces host-bounced hops.

use std::collections::HashMap;
use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_sim::SimSpan;
use voltascope_train::EpochReport;

pub use crate::grid::FaultScenario;

use crate::grid::{epoch_reports, Cell, Executor, GridOut, GridSpec};
use crate::harness::Harness;
use crate::service::GridService;
use crate::workloads::WorkloadSel;

/// One degraded-scenario measurement.
#[derive(Debug, Clone)]
pub struct DegradedRow {
    /// Workload (network).
    pub workload: WorkloadSel,
    /// Communication method.
    pub comm: CommMethod,
    /// Fault scenario.
    pub scenario: FaultScenario,
    /// Raw epoch time in seconds (no jitter protocol: deltas between
    /// scenarios are the signal, repetition noise would bury them).
    pub epoch_s: f64,
    /// Worst per-GPU compute-stream idle share of the steady-state
    /// iteration, in percent.
    pub max_idle_percent: f64,
}

/// The declarative degraded-DGX-1 sweep: every workload × both
/// communication methods × every fault scenario, at the paper's
/// batch-16, 8-GPU point (all eight GPUs so the ring must cross the
/// broken quad boundary).
pub fn spec() -> GridSpec {
    GridSpec::paper()
        .batches([16])
        .gpu_counts([8])
        .faults(FaultScenario::ALL)
}

/// Runs the degraded-DGX-1 sweep over `workloads`, honouring the
/// `VOLTASCOPE_THREADS` executor override.
pub fn degraded_grid(h: &Harness, workloads: &[Workload]) -> Vec<DegradedRow> {
    degraded_grid_with(h, workloads, Executor::from_env())
}

/// Runs the degraded-DGX-1 sweep under an explicit executor.
pub fn degraded_grid_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<DegradedRow> {
    grid_rows(h, &spec().workloads(workloads.iter().copied()), exec)
        .into_pairs()
        .map(|(_, row)| row)
        .collect()
}

/// Runs the degraded-DGX-1 sweep through a caching sweep service. The
/// idle-percent column walks the iteration traces, so this issues a
/// *traced* sweep: slim-loaded snapshot entries are recomputed rather
/// than scanned as fully idle.
pub fn degraded_grid_service(service: &GridService, workloads: &[Workload]) -> Vec<DegradedRow> {
    rows_from(service.sweep_traced(&spec().workloads(workloads.iter().copied())))
        .into_pairs()
        .map(|(_, row)| row)
        .collect()
}

/// Computes [`DegradedRow`]s for every cell of an arbitrary spec.
pub fn grid_rows(h: &Harness, spec: &GridSpec, exec: Executor) -> GridOut<DegradedRow> {
    rows_from(epoch_reports(h, spec, exec))
}

/// Derives the degraded rows from a raw report grid.
pub fn rows_from(out: GridOut<Arc<EpochReport>>) -> GridOut<DegradedRow> {
    out.map(|c, report| degraded_row(c, &report))
}

fn degraded_row(c: &Cell, report: &EpochReport) -> DegradedRow {
    let max_idle_percent = (0..c.gpus)
        .map(|g| {
            let resource = format!("GPU{g}.compute");
            let busy: SimSpan = report
                .iter_trace
                .events()
                .iter()
                .filter(|e| e.resource.as_deref() == Some(&resource))
                .map(|e| e.duration())
                .sum();
            100.0
                * report
                    .iter_time
                    .saturating_sub(busy)
                    .ratio(report.iter_time)
        })
        .fold(0.0f64, f64::max);
    DegradedRow {
        workload: c.workload,
        comm: c.comm,
        scenario: c.fault,
        epoch_s: report.epoch_time.as_secs_f64(),
        max_idle_percent,
    }
}

/// Renders the degraded table: absolute numbers plus deltas against
/// the healthy row of the same (workload, method).
pub fn render(rows: &[DegradedRow]) -> TextTable {
    let baselines: HashMap<(WorkloadSel, CommMethod), (f64, f64)> = rows
        .iter()
        .filter(|r| r.scenario == FaultScenario::Healthy)
        .map(|r| ((r.workload, r.comm), (r.epoch_s, r.max_idle_percent)))
        .collect();
    let mut table = TextTable::new([
        "Network",
        "Method",
        "Scenario",
        "Epoch (s)",
        "d epoch (%)",
        "Max idle (%)",
        "d idle (pts)",
    ]);
    for r in rows {
        let (base_epoch, base_idle) = baselines
            .get(&(r.workload, r.comm))
            .copied()
            .unwrap_or((f64::NAN, f64::NAN));
        table.row([
            r.workload.name().to_string(),
            r.comm.name().to_string(),
            r.scenario.name().to_string(),
            format!("{:.1}", r.epoch_s),
            format!("{:+.1}", 100.0 * (r.epoch_s - base_epoch) / base_epoch),
            format!("{:.1}", r.max_idle_percent),
            format!("{:+.1}", r.max_idle_percent - base_idle),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_topo::{Device, FaultSpec};

    fn epoch_of(rows: &[DegradedRow], w: Workload, c: CommMethod, s: FaultScenario) -> f64 {
        rows.iter()
            .find(|r| r.workload == w && r.comm == c && r.scenario == s)
            .expect("row present")
            .epoch_s
    }

    #[test]
    fn dead_interface_slows_every_nccl_workload_at_8_gpus() {
        let h = Harness::paper();
        let spec = spec().workloads([Workload::LeNet, Workload::AlexNet]);
        let rows: Vec<DegradedRow> = grid_rows(&h, &spec, Executor::Serial)
            .into_pairs()
            .map(|(_, r)| r)
            .collect();
        for w in [Workload::LeNet, Workload::AlexNet] {
            let healthy = epoch_of(&rows, w, CommMethod::Nccl, FaultScenario::Healthy);
            let dead = epoch_of(&rows, w, CommMethod::Nccl, FaultScenario::DeadNvLink);
            assert!(
                dead > healthy * 1.001,
                "{w:?}: dead interface {dead} vs healthy {healthy}"
            );
            let straggler = epoch_of(&rows, w, CommMethod::Nccl, FaultScenario::StragglerGpu);
            // A straggler can never help; whether it hurts depends on
            // the workload (see below).
            assert!(
                straggler >= healthy,
                "{w:?}: straggler {straggler} vs healthy {healthy}"
            );
        }
        // AlexNet's kernels are big enough that GPU3 at 1.5x drags the
        // synchronous iteration. (LeNet is scheduler-bound at 8 GPUs:
        // its tiny kernels hide entirely behind serial host dispatch,
        // so the straggler costs nothing — itself a finding.)
        let healthy = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::Healthy,
        );
        let straggler = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::StragglerGpu,
        );
        assert!(
            straggler > healthy * 1.001,
            "AlexNet straggler {straggler} vs healthy {healthy}"
        );
    }

    #[test]
    fn single_dead_cable_is_survivable_at_8_gpus() {
        // Killing one cross-quad cable leaves an all-NVLink Hamiltonian
        // ring with the same 25 GB/s bottleneck: NCCL renegotiates and
        // the 8-GPU epoch moves by well under the dead-interface hit.
        let h = Harness::paper();
        let cut = Harness {
            sys: h
                .sys
                .with_faults(&FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(5))),
            ..h.clone()
        };
        let model = Workload::AlexNet.build();
        let healthy = h
            .epoch(
                &model,
                16,
                8,
                CommMethod::Nccl,
                voltascope_train::ScalingMode::Strong,
            )
            .epoch_time
            .as_secs_f64();
        let degraded = cut
            .epoch(
                &model,
                16,
                8,
                CommMethod::Nccl,
                voltascope_train::ScalingMode::Strong,
            )
            .epoch_time
            .as_secs_f64();
        let rel = (degraded - healthy).abs() / healthy;
        assert!(
            rel < 0.02,
            "single dead cable changed 8-GPU NCCL epoch by {:.2}%",
            100.0 * rel
        );
    }

    #[test]
    fn single_dead_cable_breaks_the_6_gpu_ring() {
        // At 6 GPUs (0..5), GPU5's only in-set NVLink neighbours are
        // GPU3 and GPU4; killing the 3-5 cable leaves no all-NVLink
        // Hamiltonian cycle, so the ring falls back to host-bounced
        // hops and NCCL measurably slows.
        let h = Harness::paper();
        let cut = Harness {
            sys: h
                .sys
                .with_faults(&FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(5))),
            ..h.clone()
        };
        let model = Workload::AlexNet.build();
        let healthy = h
            .epoch(
                &model,
                16,
                6,
                CommMethod::Nccl,
                voltascope_train::ScalingMode::Strong,
            )
            .epoch_time
            .as_secs_f64();
        let degraded = cut
            .epoch(
                &model,
                16,
                6,
                CommMethod::Nccl,
                voltascope_train::ScalingMode::Strong,
            )
            .epoch_time
            .as_secs_f64();
        assert!(
            degraded > healthy * 1.01,
            "6-GPU ring should break: {degraded} vs {healthy}"
        );
    }

    #[test]
    fn mid_epoch_dead_interface_brackets_healthy_and_always_dead() {
        // The dynamic scenario's epoch must land strictly between the
        // healthy epoch (the fault costs something) and its static
        // twin's (half the epoch ran at the healthy pace).
        let h = Harness::paper();
        let spec = spec()
            .workloads([Workload::AlexNet])
            .comms([CommMethod::Nccl])
            .faults([
                FaultScenario::Healthy,
                FaultScenario::DeadNvLink,
                FaultScenario::MidEpochDeadNvLink,
            ]);
        let rows: Vec<DegradedRow> = grid_rows(&h, &spec, Executor::Serial)
            .into_pairs()
            .map(|(_, r)| r)
            .collect();
        let healthy = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::Healthy,
        );
        let dead = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::DeadNvLink,
        );
        let mid = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::MidEpochDeadNvLink,
        );
        assert!(mid > healthy * 1.001, "mid {mid} vs healthy {healthy}");
        assert!(mid < dead * 0.999, "mid {mid} vs always-dead {dead}");
    }

    #[test]
    fn second_straggler_at_same_factor_barely_moves_the_epoch() {
        // Synchronous data parallelism waits for the slowest rank each
        // iteration: a second GPU throttled at the *same* 1.5x factor
        // can never beat the single-straggler case, and because the
        // iteration is already paced by the first straggler it should
        // cost at most a whisker more (sub-percent, from the second
        // slow rank's own comm-phase contribution).
        let h = Harness::paper();
        let spec = spec()
            .workloads([Workload::AlexNet])
            .faults(FaultScenario::EXTENDED);
        let rows: Vec<DegradedRow> = grid_rows(&h, &spec, Executor::Serial)
            .into_pairs()
            .map(|(_, r)| r)
            .collect();
        let one = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::StragglerGpu,
        );
        let two = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::TwoStragglers,
        );
        let healthy = epoch_of(
            &rows,
            Workload::AlexNet,
            CommMethod::Nccl,
            FaultScenario::Healthy,
        );
        assert!(two >= one, "two stragglers {two} vs one {one}");
        assert!(
            two > healthy * 1.001,
            "two stragglers {two} vs healthy {healthy}"
        );
        // Max-of-ranks: the second straggler adds far less than the
        // first one did.
        assert!(
            two - one < (one - healthy) * 0.5,
            "second straggler added {} but first added {}",
            two - one,
            one - healthy
        );
    }

    #[test]
    fn render_marks_healthy_deltas_as_zero() {
        let h = Harness::paper();
        let spec = spec().workloads([Workload::LeNet]);
        let rows: Vec<DegradedRow> = grid_rows(&h, &spec, Executor::Serial)
            .into_pairs()
            .map(|(_, r)| r)
            .collect();
        let text = render(&rows).render();
        assert!(text.contains("+0.0"));
        assert!(text.contains("healthy"));
        assert!(text.contains("dead NVLink"));
    }
}
