//! Per-table/figure reproduction functions (see DESIGN.md §3 for the
//! experiment index).

pub mod ablation;
pub mod faults;
pub mod idle;
pub mod memory;
pub mod structure;
pub mod timing;

pub use timing::{fig3, fig4, fig5, table2, table3};
