//! Per-GPU idle-time analysis — quantifying the §V-A observation that
//! the DGX-1's asymmetric links leave some GPUs idle ("GPU1 and GPU2
//! remain idle until GPU3 receives the updated weights").

use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_profile::TextTable;
use voltascope_sim::SimSpan;
use voltascope_train::EpochReport;

use crate::grid::{epoch_reports, Cell, Executor, GridOut, GridSpec};
use crate::harness::Harness;
use crate::service::GridService;

/// One GPU's activity within a steady-state iteration.
#[derive(Debug, Clone)]
pub struct IdleRow {
    /// GPU index.
    pub gpu: usize,
    /// Time the compute stream ran kernels (FP/BP/WU).
    pub busy: SimSpan,
    /// Time the compute stream sat idle.
    pub idle: SimSpan,
    /// Idle share of the iteration, in percent.
    pub idle_percent: f64,
}

/// Computes the per-GPU idle table for every cell of `spec`, honouring
/// the `VOLTASCOPE_THREADS` executor override. The result is indexable
/// by [`crate::grid::Cell`], so callers can print sections in any
/// order regardless of enumeration order.
pub fn grid(h: &Harness, spec: &GridSpec) -> GridOut<Vec<IdleRow>> {
    grid_with(h, spec, Executor::from_env())
}

/// Computes the per-GPU idle grid under an explicit executor.
pub fn grid_with(h: &Harness, spec: &GridSpec, exec: Executor) -> GridOut<Vec<IdleRow>> {
    rows_from(epoch_reports(h, spec, exec))
}

/// Computes the per-GPU idle grid through a caching sweep service.
/// Idle scans walk the iteration traces, so this issues a *traced*
/// sweep: slim-loaded snapshot entries (which carry no trace) are
/// recomputed rather than silently scanned as 100% idle.
pub fn grid_service(service: &GridService, spec: &GridSpec) -> GridOut<Vec<IdleRow>> {
    rows_from(service.sweep_traced(spec))
}

/// Derives the per-GPU idle rows from a raw report grid.
pub fn rows_from(out: GridOut<Arc<EpochReport>>) -> GridOut<Vec<IdleRow>> {
    out.map(|c, report| idle_rows(c, &report))
}

fn idle_rows(c: &Cell, report: &EpochReport) -> Vec<IdleRow> {
    (0..c.gpus)
        .map(|g| {
            let resource = format!("GPU{g}.compute");
            let busy: SimSpan = report
                .iter_trace
                .events()
                .iter()
                .filter(|e| e.resource.as_deref() == Some(&resource))
                .map(|e| e.duration())
                .sum();
            let idle = report.iter_time.saturating_sub(busy);
            IdleRow {
                gpu: g,
                busy,
                idle,
                idle_percent: 100.0 * idle.ratio(report.iter_time),
            }
        })
        .collect()
}

/// Measures per-GPU compute idle time for one configuration. Accepts
/// a zoo workload or any [`crate::workloads::WorkloadSel`].
pub fn per_gpu_idle(
    h: &Harness,
    workload: impl Into<crate::workloads::WorkloadSel>,
    batch: usize,
    gpus: usize,
    comm: CommMethod,
) -> Vec<IdleRow> {
    let workload = workload.into();
    let spec = GridSpec::paper()
        .workloads([workload])
        .comms([comm])
        .batches([batch])
        .gpu_counts([gpus]);
    grid_with(h, &spec, Executor::Serial)
        .into_pairs()
        .next()
        .expect("one-cell grid")
        .1
}

/// Renders the idle table.
pub fn render(rows: &[IdleRow]) -> TextTable {
    let mut table = TextTable::new(["GPU", "Busy/iter", "Idle/iter", "Idle (%)"]);
    for r in rows {
        table.row([
            format!("GPU{}", r.gpu),
            r.busy.to_string(),
            r.idle.to_string(),
            format!("{:.1}", r.idle_percent),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo::Workload;

    #[test]
    fn all_gpus_report_and_sum_to_iteration() {
        let h = Harness::paper();
        let rows = per_gpu_idle(&h, Workload::LeNet, 16, 4, CommMethod::P2p);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.idle_percent >= 0.0 && r.idle_percent <= 100.0);
            assert!(!r.busy.is_zero(), "GPU{} never computed", r.gpu);
        }
    }

    #[test]
    fn parameter_server_gpu_is_busiest() {
        // GPU0 runs the update kernels on top of FP/BP, so it idles
        // least under P2P (the others wait on it, §V-A).
        let h = Harness::paper();
        let rows = per_gpu_idle(&h, Workload::AlexNet, 16, 4, CommMethod::P2p);
        let gpu0_idle = rows[0].idle_percent;
        let max_other = rows[1..]
            .iter()
            .map(|r| r.idle_percent)
            .fold(0.0f64, f64::max);
        assert!(
            gpu0_idle <= max_other,
            "GPU0 idle {gpu0_idle:.1}% vs max other {max_other:.1}%"
        );
    }

    #[test]
    fn multi_gpu_idling_exceeds_single_gpu() {
        let h = Harness::paper();
        let one = per_gpu_idle(&h, Workload::LeNet, 16, 1, CommMethod::P2p);
        let eight = per_gpu_idle(&h, Workload::LeNet, 16, 8, CommMethod::P2p);
        let mean8: f64 = eight.iter().map(|r| r.idle_percent).sum::<f64>() / eight.len() as f64;
        assert!(mean8 > one[0].idle_percent);
    }

    #[test]
    fn grid_matches_single_cell_entry_point() {
        let h = Harness::paper();
        let spec = GridSpec::paper()
            .workloads([Workload::AlexNet])
            .batches([16])
            .gpu_counts([4, 8]);
        let out = grid_with(&h, &spec, Executor::Serial);
        assert_eq!(out.len(), 4); // 2 comms x 2 gpu counts
        for (cell, rows) in out.iter() {
            assert_eq!(rows.len(), cell.gpus);
            let single = per_gpu_idle(&h, cell.workload, cell.batch, cell.gpus, cell.comm);
            assert_eq!(render(rows).render(), render(&single).render());
        }
    }

    #[test]
    fn renders() {
        let h = Harness::paper();
        let rows = per_gpu_idle(&h, Workload::LeNet, 16, 2, CommMethod::Nccl);
        assert_eq!(render(&rows).len(), 2);
    }
}
