//! Memory experiments: Table IV and the §V-D batch-size caps.
//!
//! Both sweeps run on the [`crate::grid`] engine; as everywhere, the
//! plain entry points honour the `VOLTASCOPE_THREADS` override and the
//! `*_with` variants take an explicit [`Executor`].

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_train::GpuRole;

use crate::grid::{run_grid, Executor, GridSpec};
use crate::harness::Harness;
use crate::workloads::WorkloadSel;

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Workload.
    pub workload: WorkloadSel,
    /// Per-GPU batch size.
    pub batch: usize,
    /// Pre-training usage of every GPU, GiB.
    pub pre_training_gib: f64,
    /// Training usage of GPU0 (the parameter server), GiB.
    pub gpu0_gib: f64,
    /// Training usage of the other GPUs, GiB.
    pub gpux_gib: f64,
    /// GPU0's additional usage relative to the others, percent.
    pub gpu0_extra_percent: f64,
    /// Increase of GPUx usage relative to the batch-16 row, percent.
    pub increase_vs_b16_percent: f64,
}

/// The declarative Table IV sweep: workloads × paper batches on the
/// paper's representative 4-GPU setup (memory usage is communication-
/// method independent, so the comm axis is a singleton).
pub fn table4_spec(workloads: &[Workload]) -> GridSpec {
    GridSpec::paper()
        .workloads(workloads.iter().copied())
        .comms([CommMethod::Nccl])
        .gpu_counts([4])
}

/// Computes Table IV (4-GPU training; the paper notes the figures are
/// representative of 2/4/8 GPUs), honouring the `VOLTASCOPE_THREADS`
/// executor override.
///
/// # Panics
///
/// Panics if a workload cannot fit batch 16 on the device (none of the
/// paper's five can fail this).
pub fn table4(h: &Harness, workloads: &[Workload]) -> Vec<MemoryRow> {
    table4_with(h, workloads, Executor::from_env())
}

/// Computes Table IV under an explicit executor.
pub fn table4_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<MemoryRow> {
    run_grid(h, &table4_spec(workloads), exec, |ctx| {
        let gpu = &ctx.harness.sys.gpu;
        let mem = &ctx.harness.memory;
        let base = mem
            .usage(ctx.model(), 16, GpuRole::Worker, gpu)
            .expect("batch 16 must fit")
            .training_gib();
        let server = mem
            .usage(ctx.model(), ctx.cell.batch, GpuRole::Server, gpu)
            .expect("paper batch sizes fit");
        let worker = mem
            .usage(ctx.model(), ctx.cell.batch, GpuRole::Worker, gpu)
            .expect("paper batch sizes fit");
        MemoryRow {
            workload: ctx.cell.workload,
            batch: ctx.cell.batch,
            pre_training_gib: worker.pre_training_gib(),
            gpu0_gib: server.training_gib(),
            gpux_gib: worker.training_gib(),
            gpu0_extra_percent: 100.0 * (server.training_gib() - worker.training_gib())
                / worker.training_gib(),
            increase_vs_b16_percent: 100.0 * (worker.training_gib() - base) / base,
        }
    })
    .into_pairs()
    .map(|(_, row)| row)
    .collect()
}

/// Renders Table IV.
pub fn render(rows: &[MemoryRow]) -> TextTable {
    let mut table = TextTable::new([
        "Network",
        "Batch",
        "Pre-training GPUz (GB)",
        "Training GPU0 (GB)",
        "Training GPUx (GB)",
        "GPU0 extra (%)",
        "Increase vs b16 (%)",
    ]);
    for r in rows {
        table.row([
            r.workload.name().to_string(),
            r.batch.to_string(),
            format!("{:.2}", r.pre_training_gib),
            format!("{:.2}", r.gpu0_gib),
            format!("{:.2}", r.gpux_gib),
            format!("{:.1}", r.gpu0_extra_percent),
            format!("{:.1}", r.increase_vs_b16_percent),
        ]);
    }
    table
}

/// One row of the §V-D batch-size capacity search.
#[derive(Debug, Clone)]
pub struct MaxBatchRow {
    /// Workload.
    pub workload: WorkloadSel,
    /// Largest power-of-two per-GPU batch that fits, if any.
    pub max_batch: Option<usize>,
}

/// The declarative capacity-search sweep: one cell per workload.
pub fn max_batch_spec(workloads: &[Workload]) -> GridSpec {
    GridSpec::paper()
        .workloads(workloads.iter().copied())
        .comms([CommMethod::Nccl])
        .batches([16])
        .gpu_counts([1])
}

/// Finds the largest trainable batch size per workload (§V-D: 64 for
/// Inception-v3 and ResNet, 128 for GoogLeNet on the real machine),
/// honouring the `VOLTASCOPE_THREADS` executor override.
pub fn max_batch(h: &Harness, workloads: &[Workload]) -> Vec<MaxBatchRow> {
    max_batch_with(h, workloads, Executor::from_env())
}

/// Computes the capacity search under an explicit executor.
pub fn max_batch_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<MaxBatchRow> {
    run_grid(h, &max_batch_spec(workloads), exec, |ctx| MaxBatchRow {
        workload: ctx.cell.workload,
        max_batch: ctx
            .harness
            .memory
            .max_batch(ctx.model(), &ctx.harness.sys.gpu),
    })
    .into_pairs()
    .map(|(_, row)| row)
    .collect()
}

/// Renders the capacity-search table.
pub fn render_max_batch(rows: &[MaxBatchRow]) -> TextTable {
    let mut table = TextTable::new(["Network", "Max batch/GPU"]);
    for r in rows {
        table.row([
            r.workload.name().to_string(),
            r.max_batch
                .map(|b| b.to_string())
                .unwrap_or_else(|| "OOM at 16".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_trends_match_paper() {
        let h = Harness::paper();
        let rows = table4(&h, &[Workload::InceptionV3]);
        assert_eq!(rows.len(), 3);
        let b16 = &rows[0];
        let b64 = &rows[2];
        // GPU0 always above GPUx; gap percentage shrinks with batch.
        assert!(b16.gpu0_gib > b16.gpux_gib);
        assert!(b16.gpu0_extra_percent > b64.gpu0_extra_percent);
        // Paper §V-D: batch 16 -> 64 grows Inception-v3 memory ~1.83x.
        let growth = b64.gpu0_gib / b16.gpu0_gib;
        assert!((1.5..3.0).contains(&growth), "growth {growth}");
        // Pre-training usage is batch-independent.
        assert_eq!(b16.pre_training_gib, b64.pre_training_gib);
        assert_eq!(b16.increase_vs_b16_percent, 0.0);
        assert!(b64.increase_vs_b16_percent > 100.0);
    }

    #[test]
    fn inception_near_11gb_at_batch_64() {
        let h = Harness::paper();
        let rows = table4(&h, &[Workload::InceptionV3]);
        let b64 = rows.iter().find(|r| r.batch == 64).unwrap();
        assert!(
            (9.0..14.0).contains(&b64.gpu0_gib),
            "Inception-v3 b64 GPU0 = {:.1} GB (paper: 11 GB)",
            b64.gpu0_gib
        );
    }

    #[test]
    fn capacity_caps_match_paper_for_heavy_nets() {
        let h = Harness::paper();
        let rows = max_batch(
            &h,
            &[Workload::InceptionV3, Workload::ResNet, Workload::LeNet],
        );
        let cap = |w: Workload| {
            rows.iter()
                .find(|r| r.workload == w)
                .unwrap()
                .max_batch
                .unwrap()
        };
        // §V-D: Inception-v3 and ResNet cap at batch 64.
        assert_eq!(cap(Workload::InceptionV3), 64);
        assert_eq!(cap(Workload::ResNet), 64);
        // LeNet is unconstrained at any batch the sweep covers.
        assert!(cap(Workload::LeNet) >= 1024);
    }

    #[test]
    fn tables_render() {
        let h = Harness::paper();
        let rows = table4(&h, &[Workload::LeNet]);
        assert!(!render(&rows).is_empty());
        let caps = max_batch(&h, &[Workload::LeNet]);
        assert!(!render_max_batch(&caps).is_empty());
    }
}
