//! Structural experiments: Table I (network census), Fig. 1 (training
//! timeline) and Fig. 2 (topology).

use voltascope_comm::CommMethod;
use voltascope_dnn::{zoo::Workload, NetworkStats};
use voltascope_profile::{render_timeline, TextTable};
use voltascope_train::ScalingMode;

use crate::harness::Harness;

/// Reproduces Table I: the description of the five networks.
pub fn table1(workloads: &[Workload]) -> Vec<NetworkStats> {
    workloads
        .iter()
        .map(|w| NetworkStats::of(&w.build()))
        .collect()
}

/// Renders Table I.
pub fn render_table1(stats: &[NetworkStats]) -> TextTable {
    let mut table = TextTable::new([
        "Network",
        "Layers",
        "Conv Layers",
        "Incep/Res Modules",
        "FC Layers",
        "Weights",
    ]);
    for s in stats {
        table.row([
            s.name.clone(),
            s.layers.to_string(),
            s.conv_layers.to_string(),
            s.inception_modules.to_string(),
            s.fc_layers.to_string(),
            s.weights_human(),
        ]);
    }
    table
}

/// Reproduces Fig. 1: an ASCII timeline of one steady-state training
/// iteration (per-GPU compute streams, host threads, and links).
pub fn fig1_timeline(h: &Harness, workload: Workload, gpus: usize, width: usize) -> String {
    let model = workload.build();
    let report = h.epoch(&model, 16, gpus, CommMethod::P2p, ScalingMode::Strong);
    render_timeline(&report.iter_trace, width)
}

/// Reproduces Fig. 2: the DGX-1 connectivity matrix plus a Graphviz
/// description.
pub fn fig2_topology(h: &Harness) -> String {
    format!(
        "{}\n{}\n\nGraphviz:\n{}",
        h.sys.topo.name(),
        h.sys.topo.connectivity_matrix(),
        h.sys.topo.to_dot()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_networks() {
        let stats = table1(&Workload::ALL);
        assert_eq!(stats.len(), 5);
        let table = render_table1(&stats);
        let text = table.render();
        assert!(text.contains("GoogLeNet"));
        assert!(text.contains("61K")); // LeNet weights
    }

    #[test]
    fn fig1_shows_all_four_gpus() {
        let h = Harness::paper();
        let art = fig1_timeline(&h, Workload::LeNet, 4, 80);
        for g in 0..4 {
            assert!(art.contains(&format!("GPU{g}.compute")), "missing GPU{g}");
        }
        // FP, BP and WU activity all visible.
        assert!(art.contains('F') && art.contains('B') && art.contains('W'));
    }

    #[test]
    fn fig2_contains_matrix_and_dot() {
        let h = Harness::paper();
        let out = fig2_topology(&h);
        assert!(out.contains("NV2"));
        assert!(out.contains("graph \"DGX-1V\""));
    }
}
