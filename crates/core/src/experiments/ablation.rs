//! Design-space ablations (DESIGN.md §5): rerun the training-time
//! experiment on variant platforms to isolate which hardware property
//! causes which effect the paper observes.

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_topo::{dgx1_v100, full_nvlink_switch, pcie_only, single_lane_dgx1, Topology};
use voltascope_train::ScalingMode;

use crate::harness::Harness;

/// A platform variant for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's DGX-1 (baseline).
    Dgx1,
    /// DGX-1 wiring with all NVLink double connections flattened to
    /// single lanes — isolates the asymmetric-bandwidth effect (§V-A).
    SingleLane,
    /// No NVLink at all (Tallent et al.'s PCIe baseline, §III).
    PcieOnly,
    /// Idealised all-to-all NVSwitch: every pair one hop.
    NvSwitch,
    /// DGX-1 wiring but with GPU routers allowed to forward packets —
    /// removes the design limitation of §V-A footnote 4.
    ForwardingGpus,
}

impl Platform {
    /// All variants, baseline first.
    pub const ALL: [Platform; 5] = [
        Platform::Dgx1,
        Platform::SingleLane,
        Platform::PcieOnly,
        Platform::NvSwitch,
        Platform::ForwardingGpus,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Dgx1 => "DGX-1",
            Platform::SingleLane => "DGX-1 single-lane",
            Platform::PcieOnly => "PCIe-only",
            Platform::NvSwitch => "NVSwitch (ideal)",
            Platform::ForwardingGpus => "DGX-1 + GPU forwarding",
        }
    }

    /// Builds the variant topology.
    pub fn topology(self) -> Topology {
        match self {
            Platform::Dgx1 => dgx1_v100(),
            Platform::SingleLane => single_lane_dgx1(),
            Platform::PcieOnly => pcie_only(8),
            Platform::NvSwitch => full_nvlink_switch(8),
            Platform::ForwardingGpus => {
                let mut t = dgx1_v100();
                t.set_gpus_forward(true);
                t
            }
        }
    }
}

/// One ablation result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Platform variant.
    pub platform: Platform,
    /// Communication method.
    pub comm: CommMethod,
    /// Epoch time in seconds.
    pub epoch_s: f64,
}

/// Runs the topology ablation for one workload/batch/GPU-count, under
/// both communication methods.
pub fn topology_ablation(
    h: &Harness,
    workload: Workload,
    batch: usize,
    gpus: usize,
) -> Vec<AblationRow> {
    let model = workload.build();
    let mut rows = Vec::new();
    for platform in Platform::ALL {
        let mut sys = h.sys.clone();
        sys.topo = platform.topology();
        let variant = Harness {
            sys,
            ..h.clone()
        };
        for comm in CommMethod::ALL {
            let r = variant.epoch(&model, batch, gpus, comm, ScalingMode::Strong);
            rows.push(AblationRow {
                platform,
                comm,
                epoch_s: r.epoch_time.as_secs_f64(),
            });
        }
    }
    rows
}

/// Renders the ablation table (slowdown relative to the DGX-1
/// baseline of the same method).
pub fn render(rows: &[AblationRow]) -> TextTable {
    let baseline = |comm: CommMethod| {
        rows.iter()
            .find(|r| r.platform == Platform::Dgx1 && r.comm == comm)
            .map(|r| r.epoch_s)
            .unwrap_or(f64::NAN)
    };
    let mut table = TextTable::new(["Platform", "Method", "Epoch (s)", "vs DGX-1"]);
    for r in rows {
        table.row([
            r.platform.name().to_string(),
            r.comm.name().to_string(),
            format!("{:.1}", r.epoch_s),
            format!("{:.2}x", r.epoch_s / baseline(r.comm)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_only_is_slowest_for_communication_heavy_training() {
        let h = Harness::paper();
        // AlexNet, 61M weights: communication dominates at 4 GPUs.
        let rows = topology_ablation(&h, Workload::AlexNet, 16, 4);
        let time = |p: Platform, c: CommMethod| {
            rows.iter()
                .find(|r| r.platform == p && r.comm == c)
                .unwrap()
                .epoch_s
        };
        for comm in CommMethod::ALL {
            assert!(
                time(Platform::PcieOnly, comm) > time(Platform::Dgx1, comm),
                "{comm}: PCIe-only should be slower than NVLink"
            );
        }
    }

    #[test]
    fn single_lane_never_beats_baseline() {
        let h = Harness::paper();
        let rows = topology_ablation(&h, Workload::AlexNet, 16, 2);
        let time = |p: Platform, c: CommMethod| {
            rows.iter()
                .find(|r| r.platform == p && r.comm == c)
                .unwrap()
                .epoch_s
        };
        for comm in CommMethod::ALL {
            assert!(time(Platform::SingleLane, comm) >= time(Platform::Dgx1, comm) * 0.999);
        }
    }

    #[test]
    fn ablation_renders_relative_column() {
        let h = Harness::paper();
        let rows = topology_ablation(&h, Workload::LeNet, 16, 2);
        let text = render(&rows).render();
        assert!(text.contains("1.00x"));
        assert!(text.contains("PCIe-only"));
    }
}
