//! Design-space ablations (DESIGN.md §5): rerun the training-time
//! experiment on variant platforms to isolate which hardware property
//! causes which effect the paper observes.
//!
//! The platform variants themselves live on the grid engine's platform
//! axis ([`crate::grid::Platform`], re-exported here); the ablation is
//! just a grid sweep with a non-trivial platform axis.

use std::collections::HashMap;
use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_train::EpochReport;

pub use crate::grid::Platform;

use crate::grid::{epoch_reports, Executor, GridOut, GridSpec};
use crate::harness::Harness;
use crate::service::GridService;

/// One ablation result.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Platform variant.
    pub platform: Platform,
    /// Communication method.
    pub comm: CommMethod,
    /// Epoch time in seconds.
    pub epoch_s: f64,
}

/// The declarative ablation sweep: every platform variant × both
/// communication methods, at one workload/batch/GPU-count point.
pub fn spec(workload: Workload, batch: usize, gpus: usize) -> GridSpec {
    GridSpec::paper()
        .workloads([workload])
        .batches([batch])
        .gpu_counts([gpus])
        .platforms(Platform::ALL)
}

/// Runs the topology ablation for one workload/batch/GPU-count, under
/// both communication methods, honouring the `VOLTASCOPE_THREADS`
/// executor override.
pub fn topology_ablation(
    h: &Harness,
    workload: Workload,
    batch: usize,
    gpus: usize,
) -> Vec<AblationRow> {
    topology_ablation_with(h, workload, batch, gpus, Executor::from_env())
}

/// Runs the topology ablation under an explicit executor.
pub fn topology_ablation_with(
    h: &Harness,
    workload: Workload,
    batch: usize,
    gpus: usize,
    exec: Executor,
) -> Vec<AblationRow> {
    rows_from(&epoch_reports(h, &spec(workload, batch, gpus), exec))
}

/// Runs the topology ablation through a caching sweep service.
pub fn topology_ablation_service(
    service: &GridService,
    workload: Workload,
    batch: usize,
    gpus: usize,
) -> Vec<AblationRow> {
    rows_from(&service.sweep(&spec(workload, batch, gpus)))
}

/// Derives the ablation rows from a raw report grid.
pub fn rows_from(out: &GridOut<Arc<EpochReport>>) -> Vec<AblationRow> {
    out.iter()
        .map(|(c, r)| AblationRow {
            platform: c.platform,
            comm: c.comm,
            epoch_s: r.epoch_time.as_secs_f64(),
        })
        .collect()
}

/// Renders the ablation table (slowdown relative to the DGX-1
/// baseline of the same method).
pub fn render(rows: &[AblationRow]) -> TextTable {
    let baselines: HashMap<CommMethod, f64> = rows
        .iter()
        .filter(|r| r.platform == Platform::Dgx1)
        .map(|r| (r.comm, r.epoch_s))
        .collect();
    let mut table = TextTable::new(["Platform", "Method", "Epoch (s)", "vs DGX-1"]);
    for r in rows {
        let baseline = baselines.get(&r.comm).copied().unwrap_or(f64::NAN);
        table.row([
            r.platform.name().to_string(),
            r.comm.name().to_string(),
            format!("{:.1}", r.epoch_s),
            format!("{:.2}x", r.epoch_s / baseline),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_only_is_slowest_for_communication_heavy_training() {
        let h = Harness::paper();
        // AlexNet, 61M weights: communication dominates at 4 GPUs.
        let rows = topology_ablation(&h, Workload::AlexNet, 16, 4);
        let time = |p: Platform, c: CommMethod| {
            rows.iter()
                .find(|r| r.platform == p && r.comm == c)
                .unwrap()
                .epoch_s
        };
        for comm in CommMethod::ALL {
            assert!(
                time(Platform::PcieOnly, comm) > time(Platform::Dgx1, comm),
                "{comm}: PCIe-only should be slower than NVLink"
            );
        }
    }

    #[test]
    fn single_lane_never_beats_baseline() {
        let h = Harness::paper();
        let rows = topology_ablation(&h, Workload::AlexNet, 16, 2);
        let time = |p: Platform, c: CommMethod| {
            rows.iter()
                .find(|r| r.platform == p && r.comm == c)
                .unwrap()
                .epoch_s
        };
        for comm in CommMethod::ALL {
            assert!(time(Platform::SingleLane, comm) >= time(Platform::Dgx1, comm) * 0.999);
        }
    }

    #[test]
    fn ablation_renders_relative_column() {
        let h = Harness::paper();
        let rows = topology_ablation(&h, Workload::LeNet, 16, 2);
        let text = render(&rows).render();
        assert!(text.contains("1.00x"));
        assert!(text.contains("PCIe-only"));
    }
}
