//! Timing experiments: Fig. 3, Table II, Fig. 4, Table III, Fig. 5.
//!
//! Every sweep here is declared as a [`GridSpec`] and executed through
//! the [`crate::grid`] engine; each `grid`/`rows` entry point has a
//! `*_with` variant taking an explicit [`Executor`], while the plain
//! variant honours the `VOLTASCOPE_THREADS` environment override.
//!
//! Every sweep also has a `*_service` variant that routes through a
//! caching [`GridService`](crate::service::GridService). Both paths
//! derive their rows from the same raw [`EpochReport`] grid via a
//! shared `rows_from`, so their tables are byte-identical — the
//! service merely skips recomputing cells it has already seen.

use std::collections::HashSet;
use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_train::{EpochReport, ScalingMode};

use crate::grid::{epoch_reports, Cell, Executor, GridOut, GridSpec};
use crate::harness::{Harness, Measurement};
use crate::service::GridService;
use crate::workloads::WorkloadSel;

/// The paper's batch-size sweep (alias of [`crate::grid::PAPER_BATCHES`]).
pub const BATCHES: [usize; 3] = crate::grid::PAPER_BATCHES;
/// The paper's GPU-count sweep (alias of [`crate::grid::PAPER_GPU_COUNTS`]).
pub const GPU_COUNTS: [usize; 4] = crate::grid::PAPER_GPU_COUNTS;

/// One bar of Fig. 3: a (workload, method, batch, GPUs) training time.
#[derive(Debug, Clone)]
pub struct TrainingTimeCell {
    /// Workload.
    pub workload: WorkloadSel,
    /// Communication method.
    pub comm: CommMethod,
    /// Per-GPU batch size.
    pub batch: usize,
    /// GPU count.
    pub gpus: usize,
    /// Mean +/- stddev epoch time.
    pub time: Measurement,
}

/// Reproduces Fig. 3: training time per epoch for every workload,
/// method, batch size and GPU count (strong scaling, 256K images).
///
/// # Example
///
/// ```no_run
/// use voltascope::{experiments::fig3, Harness};
/// use voltascope_dnn::zoo::Workload;
///
/// let cells = fig3::grid(&Harness::paper(), &[Workload::LeNet]);
/// assert_eq!(cells.len(), 2 * 3 * 4); // methods x batches x gpu counts
/// ```
pub mod fig3 {
    use super::*;

    /// The declarative Fig. 3 sweep for the given workloads.
    pub fn spec(workloads: &[Workload]) -> GridSpec {
        GridSpec::paper().workloads(workloads.iter().copied())
    }

    /// Computes the grid for the given workloads, honouring the
    /// `VOLTASCOPE_THREADS` executor override.
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<TrainingTimeCell> {
        grid_with(h, workloads, Executor::from_env())
    }

    /// Computes the grid under an explicit executor.
    pub fn grid_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<TrainingTimeCell> {
        rows_from(h, &epoch_reports(h, &spec(workloads), exec))
    }

    /// Computes the grid through a caching sweep service.
    pub fn grid_service(service: &GridService, workloads: &[Workload]) -> Vec<TrainingTimeCell> {
        rows_from(service.base(), &service.sweep(&spec(workloads)))
    }

    /// Derives the Fig. 3 rows from a raw report grid: the repetition
    /// protocol's jittered measurement per cell, salted by the cell key
    /// alone, so both execution paths agree exactly.
    pub fn rows_from(h: &Harness, out: &GridOut<Arc<EpochReport>>) -> Vec<TrainingTimeCell> {
        out.iter()
            .map(|(c, r)| TrainingTimeCell {
                workload: c.workload,
                comm: c.comm,
                batch: c.batch,
                gpus: c.gpus,
                time: h.measure(r.epoch_time.as_secs_f64(), c.jitter_salt()),
            })
            .collect()
    }

    /// Renders the grid as the paper prints it: one row per
    /// (workload, method, batch), one column per GPU count.
    pub fn render(cells: &[TrainingTimeCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "Method",
            "Batch",
            "1 GPU (s)",
            "2 GPUs (s)",
            "4 GPUs (s)",
            "8 GPUs (s)",
        ]);
        // Order-preserving dedup: first appearance wins, regardless of
        // how the cells are ordered (Vec::dedup would only collapse
        // *consecutive* duplicates).
        let mut seen = HashSet::new();
        let keys: Vec<(WorkloadSel, CommMethod, usize)> = cells
            .iter()
            .map(|c| (c.workload, c.comm, c.batch))
            .filter(|k| seen.insert(*k))
            .collect();
        let index: std::collections::HashMap<
            (WorkloadSel, CommMethod, usize, usize),
            &TrainingTimeCell,
        > = cells
            .iter()
            .map(|c| ((c.workload, c.comm, c.batch, c.gpus), c))
            .collect();
        for (workload, comm, batch) in keys {
            let cell = |gpus: usize| -> String {
                index
                    .get(&(workload, comm, batch, gpus))
                    .map(|c| format!("{:.1} ± {:.1}", c.time.mean_s, c.time.stddev_s))
                    .unwrap_or_else(|| "-".into())
            };
            table.row([
                workload.name().to_string(),
                comm.name().to_string(),
                batch.to_string(),
                cell(1),
                cell(2),
                cell(4),
                cell(8),
            ]);
        }
        table
    }
}

/// Reproduces Table II: NCCL overhead vs P2P on a single GPU.
pub mod table2 {
    use super::*;

    /// One row: workload, batch, overhead percentage.
    #[derive(Debug, Clone)]
    pub struct OverheadRow {
        /// Workload.
        pub workload: WorkloadSel,
        /// Per-GPU batch size.
        pub batch: usize,
        /// `100 * (T_nccl - T_p2p) / T_p2p` on one GPU.
        pub overhead_percent: f64,
    }

    /// The declarative Table II sweep: both methods on a single GPU.
    pub fn spec(workloads: &[Workload]) -> GridSpec {
        GridSpec::paper()
            .workloads(workloads.iter().copied())
            .gpu_counts([1])
    }

    /// Computes the overhead rows for the given workloads, honouring
    /// the `VOLTASCOPE_THREADS` executor override.
    pub fn rows(h: &Harness, workloads: &[Workload]) -> Vec<OverheadRow> {
        rows_with(h, workloads, Executor::from_env())
    }

    /// Computes the overhead rows under an explicit executor.
    pub fn rows_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<OverheadRow> {
        rows_from(&epoch_reports(h, &spec(workloads), exec))
    }

    /// Computes the overhead rows through a caching sweep service.
    pub fn rows_service(service: &GridService, workloads: &[Workload]) -> Vec<OverheadRow> {
        rows_from(&service.sweep(&spec(workloads)))
    }

    /// Derives the Table II rows from a raw report grid. Each P2P cell
    /// (in enumeration order, i.e. workload-major then batch) pairs
    /// with the NCCL cell of the same configuration.
    pub fn rows_from(out: &GridOut<Arc<EpochReport>>) -> Vec<OverheadRow> {
        let secs = out.index_by(|c| (c.workload, c.comm, c.batch));
        out.cells()
            .iter()
            .filter(|c| c.comm == CommMethod::P2p)
            .map(|c| {
                let p2p = secs[&(c.workload, CommMethod::P2p, c.batch)]
                    .epoch_time
                    .as_secs_f64();
                let nccl = secs[&(c.workload, CommMethod::Nccl, c.batch)]
                    .epoch_time
                    .as_secs_f64();
                OverheadRow {
                    workload: c.workload,
                    batch: c.batch,
                    overhead_percent: 100.0 * (nccl - p2p) / p2p,
                }
            })
            .collect()
    }

    /// Renders Table II.
    pub fn render(rows: &[OverheadRow]) -> TextTable {
        let mut table = TextTable::new(["Network", "Batch Size", "NCCL Overhead (%)"]);
        for r in rows {
            table.row([
                r.workload.name().to_string(),
                r.batch.to_string(),
                format!("{:.1}", r.overhead_percent),
            ]);
        }
        table
    }
}

/// Reproduces Fig. 4: epoch time broken into FP+BP and WU (NCCL).
pub mod fig4 {
    use super::*;

    /// One stacked bar.
    #[derive(Debug, Clone)]
    pub struct BreakdownCell {
        /// Workload.
        pub workload: WorkloadSel,
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// FP+BP (computation) seconds per epoch.
        pub fp_bp_s: f64,
        /// Exposed WU (communication) seconds per epoch.
        pub wu_s: f64,
    }

    /// The declarative Fig. 4 sweep (NCCL, as in the paper).
    pub fn spec(workloads: &[Workload]) -> GridSpec {
        GridSpec::paper()
            .workloads(workloads.iter().copied())
            .comms([CommMethod::Nccl])
    }

    /// Computes the breakdown grid, honouring the `VOLTASCOPE_THREADS`
    /// executor override.
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<BreakdownCell> {
        grid_with(h, workloads, Executor::from_env())
    }

    /// Computes the breakdown grid under an explicit executor.
    pub fn grid_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<BreakdownCell> {
        rows_from(&epoch_reports(h, &spec(workloads), exec))
    }

    /// Computes the breakdown grid through a caching sweep service.
    pub fn grid_service(service: &GridService, workloads: &[Workload]) -> Vec<BreakdownCell> {
        rows_from(&service.sweep(&spec(workloads)))
    }

    /// Derives the Fig. 4 rows from a raw report grid.
    pub fn rows_from(out: &GridOut<Arc<EpochReport>>) -> Vec<BreakdownCell> {
        out.iter()
            .map(|(c, r)| BreakdownCell {
                workload: c.workload,
                batch: c.batch,
                gpus: c.gpus,
                fp_bp_s: r.fp_bp_epoch().as_secs_f64(),
                wu_s: r.wu_epoch().as_secs_f64(),
            })
            .collect()
    }

    /// Renders the breakdown table (X-axis = (GPU count, batch size),
    /// as in the paper).
    pub fn render(cells: &[BreakdownCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "(GPUs, Batch)",
            "FP+BP (s)",
            "WU (s)",
            "WU share (%)",
        ]);
        for c in cells {
            let total = c.fp_bp_s + c.wu_s;
            table.row([
                c.workload.name().to_string(),
                format!("({}, {})", c.gpus, c.batch),
                format!("{:.1}", c.fp_bp_s),
                format!("{:.1}", c.wu_s),
                format!("{:.1}", 100.0 * c.wu_s / total),
            ]);
        }
        table
    }
}

/// Reproduces Table III: `cudaStreamSynchronize` time share for LeNet.
pub mod table3 {
    use super::*;

    /// One row of Table III.
    #[derive(Debug, Clone)]
    pub struct SyncRow {
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// Share of total training time spent in (or blocked on)
        /// `cudaStreamSynchronize`, in percent.
        pub percent: f64,
    }

    /// The declarative Table III sweep (LeNet with NCCL, §V-C).
    pub fn spec() -> GridSpec {
        GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::Nccl])
    }

    /// Computes the rows, honouring the `VOLTASCOPE_THREADS` executor
    /// override.
    pub fn rows(h: &Harness) -> Vec<SyncRow> {
        rows_with(h, Executor::from_env())
    }

    /// Computes the rows under an explicit executor.
    pub fn rows_with(h: &Harness, exec: Executor) -> Vec<SyncRow> {
        rows_from(&epoch_reports(h, &spec(), exec))
    }

    /// Computes the rows through a caching sweep service.
    pub fn rows_service(service: &GridService) -> Vec<SyncRow> {
        rows_from(&service.sweep(&spec()))
    }

    /// Derives the Table III rows from a raw report grid.
    pub fn rows_from(out: &GridOut<Arc<EpochReport>>) -> Vec<SyncRow> {
        out.iter()
            .map(|(c, r)| SyncRow {
                batch: c.batch,
                gpus: c.gpus,
                percent: r.sync_percent(),
            })
            .collect()
    }

    /// Renders Table III.
    pub fn render(rows: &[SyncRow]) -> TextTable {
        let mut table = TextTable::new(["Batch Size", "GPU Count", "Time (%)"]);
        for r in rows {
            table.row([
                r.batch.to_string(),
                r.gpus.to_string(),
                format!("{:.1}", r.percent),
            ]);
        }
        table
    }
}

/// Reproduces Fig. 5: weak-scaling vs strong-scaling training time.
pub mod fig5 {
    use super::*;

    /// One comparison cell: time to process 256K images per GPU-epoch
    /// under both scaling regimes.
    #[derive(Debug, Clone)]
    pub struct WeakScalingCell {
        /// Workload.
        pub workload: WorkloadSel,
        /// Communication method.
        pub comm: CommMethod,
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// Strong-scaling epoch time (256K images total).
        pub strong_s: f64,
        /// Weak-scaling time normalised to 256K images (epoch time /
        /// GPU count), the paper's "average time for training with 256K
        /// images".
        pub weak_norm_s: f64,
        /// Weak-scaling raw epoch time (256K x GPUs images).
        pub weak_total_s: f64,
    }

    /// The declarative Fig. 5 sweep: both scaling regimes of the full
    /// paper grid.
    pub fn spec(workloads: &[Workload]) -> GridSpec {
        GridSpec::paper()
            .workloads(workloads.iter().copied())
            .scalings([ScalingMode::Strong, ScalingMode::Weak])
    }

    /// Computes the weak-scaling grid, honouring the
    /// `VOLTASCOPE_THREADS` executor override.
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<WeakScalingCell> {
        grid_with(h, workloads, Executor::from_env())
    }

    /// Computes the weak-scaling grid under an explicit executor.
    pub fn grid_with(h: &Harness, workloads: &[Workload], exec: Executor) -> Vec<WeakScalingCell> {
        rows_from(&epoch_reports(h, &spec(workloads), exec))
    }

    /// Computes the weak-scaling grid through a caching sweep service.
    pub fn grid_service(service: &GridService, workloads: &[Workload]) -> Vec<WeakScalingCell> {
        rows_from(&service.sweep(&spec(workloads)))
    }

    /// Derives the Fig. 5 rows from a raw report grid: each
    /// strong-scaling cell pairs with the weak-scaling cell of the same
    /// configuration.
    pub fn rows_from(out: &GridOut<Arc<EpochReport>>) -> Vec<WeakScalingCell> {
        let index = out.index();
        out.cells()
            .iter()
            .filter(|c| c.scaling == ScalingMode::Strong)
            .map(|&strong_cell| {
                let weak_cell = Cell {
                    scaling: ScalingMode::Weak,
                    ..strong_cell
                };
                let strong = index[&strong_cell].epoch_time.as_secs_f64();
                let weak = index[&weak_cell].epoch_time.as_secs_f64();
                WeakScalingCell {
                    workload: strong_cell.workload,
                    comm: strong_cell.comm,
                    batch: strong_cell.batch,
                    gpus: strong_cell.gpus,
                    strong_s: strong,
                    weak_norm_s: weak / strong_cell.gpus as f64,
                    weak_total_s: weak,
                }
            })
            .collect()
    }

    /// Renders the comparison table.
    pub fn render(cells: &[WeakScalingCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "Method",
            "Batch",
            "GPUs",
            "Strong (s)",
            "Weak/GPU (s)",
            "Weak total (s)",
        ]);
        for c in cells {
            table.row([
                c.workload.name().to_string(),
                c.comm.name().to_string(),
                c.batch.to_string(),
                c.gpus.to_string(),
                format!("{:.1}", c.strong_s),
                format!("{:.1}", c.weak_norm_s),
                format!("{:.1}", c.weak_total_s),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        Harness::paper()
    }

    #[test]
    fn fig3_lenet_shapes() {
        let h = harness();
        let cells = fig3::grid(&h, &[Workload::LeNet]);
        assert_eq!(cells.len(), 24);
        let t = |comm: CommMethod, batch: usize, gpus: usize| -> f64 {
            cells
                .iter()
                .find(|c| c.comm == comm && c.batch == batch && c.gpus == gpus)
                .unwrap()
                .time
                .mean_s
        };
        // More GPUs -> faster, sublinearly (paper: 3.36x at 8 GPUs P2P).
        let speedup8 = t(CommMethod::P2p, 16, 1) / t(CommMethod::P2p, 16, 8);
        assert!(
            (1.5..7.0).contains(&speedup8),
            "LeNet 8-GPU P2P speedup {speedup8}"
        );
        // P2P beats NCCL for LeNet at every GPU count (§V-A).
        for gpus in GPU_COUNTS {
            assert!(
                t(CommMethod::P2p, 16, gpus) < t(CommMethod::Nccl, 16, gpus),
                "NCCL should lose on LeNet at {gpus} GPUs"
            );
        }
        // Batch scaling is near-linear (paper: 1.92x and 3.67x at 4 GPUs).
        let b_ratio = t(CommMethod::P2p, 16, 4) / t(CommMethod::P2p, 64, 4);
        assert!(
            (2.0..4.4).contains(&b_ratio),
            "batch 16->64 ratio {b_ratio}"
        );
        let table = fig3::render(&cells);
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn fig3_render_survives_shuffled_cells() {
        // Regression: the old renderer used Vec::dedup on the row keys,
        // which only removes *consecutive* duplicates — a shuffled cell
        // order silently emitted duplicate rows.
        let h = harness();
        let mut cells = fig3::grid_with(&h, &[Workload::LeNet], Executor::Serial);
        let canonical = fig3::render(&cells).render();
        // Deterministic shuffle: rotate then interleave halves.
        cells.rotate_left(7);
        let half = cells.len() / 2;
        let (a, b) = cells.split_at(half);
        let shuffled: Vec<TrainingTimeCell> = a
            .iter()
            .zip(b.iter())
            .flat_map(|(x, y)| [y.clone(), x.clone()])
            .collect();
        assert_eq!(shuffled.len(), cells.len());
        let table = fig3::render(&shuffled);
        // Same number of rows as the canonical rendering: every
        // (workload, method, batch) key appears exactly once.
        assert_eq!(table.len(), canonical.lines().count() - 2);
        // Every canonical row is still present (row order follows the
        // shuffled first-appearance order, but no row is duplicated or
        // dropped).
        let rendered = table.render();
        for line in canonical.lines().skip(2) {
            assert!(rendered.contains(line), "row missing after shuffle: {line}");
        }
    }

    #[test]
    fn table2_lenet_overhead_near_paper_value() {
        let h = harness();
        let rows = table2::rows(&h, &[Workload::LeNet]);
        let b16 = rows.iter().find(|r| r.batch == 16).unwrap();
        // §V-B: 21.8% for LeNet at batch 16 on one GPU.
        assert!(
            (10.0..40.0).contains(&b16.overhead_percent),
            "LeNet b16 overhead {}",
            b16.overhead_percent
        );
        // §V-B: overhead grows with batch size for small networks.
        let b64 = rows.iter().find(|r| r.batch == 64).unwrap();
        assert!(
            b64.overhead_percent > b16.overhead_percent,
            "overhead should grow with batch: {} -> {}",
            b16.overhead_percent,
            b64.overhead_percent
        );
    }

    #[test]
    fn table3_sync_share_falls_with_batch() {
        let h = harness();
        let rows = table3::rows(&h);
        let pct = |batch, gpus| {
            rows.iter()
                .find(|r| r.batch == batch && r.gpus == gpus)
                .unwrap()
                .percent
        };
        // §V-C: the share decreases as the batch grows.
        assert!(pct(16, 1) > pct(64, 1));
        assert!(pct(16, 4) > pct(64, 4));
        assert!(!table3::render(&rows).is_empty());
    }

    #[test]
    fn fig4_single_gpu_wu_is_negligible() {
        let h = harness();
        let cells = fig4::grid(&h, &[Workload::LeNet]);
        let c1 = cells.iter().find(|c| c.gpus == 1 && c.batch == 16).unwrap();
        assert!(c1.wu_s < c1.fp_bp_s, "1-GPU WU should be small");
        let c8 = cells.iter().find(|c| c.gpus == 8 && c.batch == 16).unwrap();
        assert!(c8.wu_s / (c8.wu_s + c8.fp_bp_s) > c1.wu_s / (c1.wu_s + c1.fp_bp_s));
    }

    #[test]
    fn fig5_weak_scaling_beats_strong_for_lenet() {
        // §V-E: LeNet's weak-scaling speedup exceeds strong scaling
        // because fixed per-epoch overheads amortise over more work.
        let h = harness();
        let cells = fig5::grid(&h, &[Workload::LeNet]);
        let cell = cells
            .iter()
            .find(|c| c.comm == CommMethod::Nccl && c.batch == 16 && c.gpus == 8)
            .unwrap();
        assert!(
            cell.weak_norm_s <= cell.strong_s * 1.05,
            "weak {} vs strong {}",
            cell.weak_norm_s,
            cell.strong_s
        );
    }
}
