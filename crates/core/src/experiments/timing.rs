//! Timing experiments: Fig. 3, Table II, Fig. 4, Table III, Fig. 5.

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_profile::TextTable;
use voltascope_train::ScalingMode;

use crate::harness::{Harness, Measurement};

/// The paper's batch-size sweep.
pub const BATCHES: [usize; 3] = [16, 32, 64];
/// The paper's GPU-count sweep.
pub const GPU_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One bar of Fig. 3: a (workload, method, batch, GPUs) training time.
#[derive(Debug, Clone)]
pub struct TrainingTimeCell {
    /// Workload.
    pub workload: Workload,
    /// Communication method.
    pub comm: CommMethod,
    /// Per-GPU batch size.
    pub batch: usize,
    /// GPU count.
    pub gpus: usize,
    /// Mean +/- stddev epoch time.
    pub time: Measurement,
}

/// Reproduces Fig. 3: training time per epoch for every workload,
/// method, batch size and GPU count (strong scaling, 256K images).
///
/// # Example
///
/// ```no_run
/// use voltascope::{experiments::fig3, Harness};
/// use voltascope_dnn::zoo::Workload;
///
/// let cells = fig3::grid(&Harness::paper(), &[Workload::LeNet]);
/// assert_eq!(cells.len(), 2 * 3 * 4); // methods x batches x gpu counts
/// ```
pub mod fig3 {
    use super::*;

    /// Computes the grid for the given workloads.
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<TrainingTimeCell> {
        let mut cells = Vec::new();
        for &workload in workloads {
            let model = workload.build();
            for comm in CommMethod::ALL {
                for batch in BATCHES {
                    for gpus in GPU_COUNTS {
                        let time = h.training_time_of(
                            &model,
                            workload,
                            batch,
                            gpus,
                            comm,
                            ScalingMode::Strong,
                        );
                        cells.push(TrainingTimeCell {
                            workload,
                            comm,
                            batch,
                            gpus,
                            time,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Renders the grid as the paper prints it: one row per
    /// (workload, method, batch), one column per GPU count.
    pub fn render(cells: &[TrainingTimeCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "Method",
            "Batch",
            "1 GPU (s)",
            "2 GPUs (s)",
            "4 GPUs (s)",
            "8 GPUs (s)",
        ]);
        let mut keys: Vec<(Workload, CommMethod, usize)> = cells
            .iter()
            .map(|c| (c.workload, c.comm, c.batch))
            .collect();
        keys.dedup();
        for (workload, comm, batch) in keys {
            let cell = |gpus: usize| -> String {
                cells
                    .iter()
                    .find(|c| {
                        c.workload == workload
                            && c.comm == comm
                            && c.batch == batch
                            && c.gpus == gpus
                    })
                    .map(|c| format!("{:.1} ± {:.1}", c.time.mean_s, c.time.stddev_s))
                    .unwrap_or_else(|| "-".into())
            };
            table.row([
                workload.name().to_string(),
                comm.name().to_string(),
                batch.to_string(),
                cell(1),
                cell(2),
                cell(4),
                cell(8),
            ]);
        }
        table
    }
}

/// Reproduces Table II: NCCL overhead vs P2P on a single GPU.
pub mod table2 {
    use super::*;

    /// One row: workload, batch, overhead percentage.
    #[derive(Debug, Clone)]
    pub struct OverheadRow {
        /// Workload.
        pub workload: Workload,
        /// Per-GPU batch size.
        pub batch: usize,
        /// `100 * (T_nccl - T_p2p) / T_p2p` on one GPU.
        pub overhead_percent: f64,
    }

    /// Computes the overhead rows for the given workloads.
    pub fn rows(h: &Harness, workloads: &[Workload]) -> Vec<OverheadRow> {
        let mut rows = Vec::new();
        for &workload in workloads {
            let model = workload.build();
            for batch in BATCHES {
                let p2p = h
                    .epoch(&model, batch, 1, CommMethod::P2p, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                let nccl = h
                    .epoch(&model, batch, 1, CommMethod::Nccl, ScalingMode::Strong)
                    .epoch_time
                    .as_secs_f64();
                rows.push(OverheadRow {
                    workload,
                    batch,
                    overhead_percent: 100.0 * (nccl - p2p) / p2p,
                });
            }
        }
        rows
    }

    /// Renders Table II.
    pub fn render(rows: &[OverheadRow]) -> TextTable {
        let mut table = TextTable::new(["Network", "Batch Size", "NCCL Overhead (%)"]);
        for r in rows {
            table.row([
                r.workload.name().to_string(),
                r.batch.to_string(),
                format!("{:.1}", r.overhead_percent),
            ]);
        }
        table
    }
}

/// Reproduces Fig. 4: epoch time broken into FP+BP and WU (NCCL).
pub mod fig4 {
    use super::*;

    /// One stacked bar.
    #[derive(Debug, Clone)]
    pub struct BreakdownCell {
        /// Workload.
        pub workload: Workload,
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// FP+BP (computation) seconds per epoch.
        pub fp_bp_s: f64,
        /// Exposed WU (communication) seconds per epoch.
        pub wu_s: f64,
    }

    /// Computes the breakdown grid (NCCL, as in the paper's Fig. 4).
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<BreakdownCell> {
        let mut cells = Vec::new();
        for &workload in workloads {
            let model = workload.build();
            for batch in BATCHES {
                for gpus in GPU_COUNTS {
                    let r = h.epoch(&model, batch, gpus, CommMethod::Nccl, ScalingMode::Strong);
                    cells.push(BreakdownCell {
                        workload,
                        batch,
                        gpus,
                        fp_bp_s: r.fp_bp_epoch().as_secs_f64(),
                        wu_s: r.wu_epoch().as_secs_f64(),
                    });
                }
            }
        }
        cells
    }

    /// Renders the breakdown table (X-axis = (GPU count, batch size),
    /// as in the paper).
    pub fn render(cells: &[BreakdownCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "(GPUs, Batch)",
            "FP+BP (s)",
            "WU (s)",
            "WU share (%)",
        ]);
        for c in cells {
            let total = c.fp_bp_s + c.wu_s;
            table.row([
                c.workload.name().to_string(),
                format!("({}, {})", c.gpus, c.batch),
                format!("{:.1}", c.fp_bp_s),
                format!("{:.1}", c.wu_s),
                format!("{:.1}", 100.0 * c.wu_s / total),
            ]);
        }
        table
    }
}

/// Reproduces Table III: `cudaStreamSynchronize` time share for LeNet.
pub mod table3 {
    use super::*;

    /// One row of Table III.
    #[derive(Debug, Clone)]
    pub struct SyncRow {
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// Share of total training time spent in (or blocked on)
        /// `cudaStreamSynchronize`, in percent.
        pub percent: f64,
    }

    /// Computes the rows (LeNet with NCCL, matching §V-C).
    pub fn rows(h: &Harness) -> Vec<SyncRow> {
        let model = Workload::LeNet.build();
        let mut rows = Vec::new();
        for batch in BATCHES {
            for gpus in GPU_COUNTS {
                let r = h.epoch(&model, batch, gpus, CommMethod::Nccl, ScalingMode::Strong);
                rows.push(SyncRow {
                    batch,
                    gpus,
                    percent: r.sync_percent(),
                });
            }
        }
        rows
    }

    /// Renders Table III.
    pub fn render(rows: &[SyncRow]) -> TextTable {
        let mut table = TextTable::new(["Batch Size", "GPU Count", "Time (%)"]);
        for r in rows {
            table.row([
                r.batch.to_string(),
                r.gpus.to_string(),
                format!("{:.1}", r.percent),
            ]);
        }
        table
    }
}

/// Reproduces Fig. 5: weak-scaling vs strong-scaling training time.
pub mod fig5 {
    use super::*;

    /// One comparison cell: time to process 256K images per GPU-epoch
    /// under both scaling regimes.
    #[derive(Debug, Clone)]
    pub struct WeakScalingCell {
        /// Workload.
        pub workload: Workload,
        /// Communication method.
        pub comm: CommMethod,
        /// Per-GPU batch size.
        pub batch: usize,
        /// GPU count.
        pub gpus: usize,
        /// Strong-scaling epoch time (256K images total).
        pub strong_s: f64,
        /// Weak-scaling time normalised to 256K images (epoch time /
        /// GPU count), the paper's "average time for training with 256K
        /// images".
        pub weak_norm_s: f64,
        /// Weak-scaling raw epoch time (256K x GPUs images).
        pub weak_total_s: f64,
    }

    /// Computes the weak-scaling grid.
    pub fn grid(h: &Harness, workloads: &[Workload]) -> Vec<WeakScalingCell> {
        let mut cells = Vec::new();
        for &workload in workloads {
            let model = workload.build();
            for comm in CommMethod::ALL {
                for batch in BATCHES {
                    for gpus in GPU_COUNTS {
                        let strong = h
                            .epoch(&model, batch, gpus, comm, ScalingMode::Strong)
                            .epoch_time
                            .as_secs_f64();
                        let weak = h
                            .epoch(&model, batch, gpus, comm, ScalingMode::Weak)
                            .epoch_time
                            .as_secs_f64();
                        cells.push(WeakScalingCell {
                            workload,
                            comm,
                            batch,
                            gpus,
                            strong_s: strong,
                            weak_norm_s: weak / gpus as f64,
                            weak_total_s: weak,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Renders the comparison table.
    pub fn render(cells: &[WeakScalingCell]) -> TextTable {
        let mut table = TextTable::new([
            "Workload",
            "Method",
            "Batch",
            "GPUs",
            "Strong (s)",
            "Weak/GPU (s)",
            "Weak total (s)",
        ]);
        for c in cells {
            table.row([
                c.workload.name().to_string(),
                c.comm.name().to_string(),
                c.batch.to_string(),
                c.gpus.to_string(),
                format!("{:.1}", c.strong_s),
                format!("{:.1}", c.weak_norm_s),
                format!("{:.1}", c.weak_total_s),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Harness {
        Harness::paper()
    }

    #[test]
    fn fig3_lenet_shapes() {
        let h = harness();
        let cells = fig3::grid(&h, &[Workload::LeNet]);
        assert_eq!(cells.len(), 24);
        let t = |comm: CommMethod, batch: usize, gpus: usize| -> f64 {
            cells
                .iter()
                .find(|c| c.comm == comm && c.batch == batch && c.gpus == gpus)
                .unwrap()
                .time
                .mean_s
        };
        // More GPUs -> faster, sublinearly (paper: 3.36x at 8 GPUs P2P).
        let speedup8 = t(CommMethod::P2p, 16, 1) / t(CommMethod::P2p, 16, 8);
        assert!(
            (1.5..7.0).contains(&speedup8),
            "LeNet 8-GPU P2P speedup {speedup8}"
        );
        // P2P beats NCCL for LeNet at every GPU count (§V-A).
        for gpus in GPU_COUNTS {
            assert!(
                t(CommMethod::P2p, 16, gpus) < t(CommMethod::Nccl, 16, gpus),
                "NCCL should lose on LeNet at {gpus} GPUs"
            );
        }
        // Batch scaling is near-linear (paper: 1.92x and 3.67x at 4 GPUs).
        let b_ratio = t(CommMethod::P2p, 16, 4) / t(CommMethod::P2p, 64, 4);
        assert!((2.0..4.4).contains(&b_ratio), "batch 16->64 ratio {b_ratio}");
        let table = fig3::render(&cells);
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn table2_lenet_overhead_near_paper_value() {
        let h = harness();
        let rows = table2::rows(&h, &[Workload::LeNet]);
        let b16 = rows.iter().find(|r| r.batch == 16).unwrap();
        // §V-B: 21.8% for LeNet at batch 16 on one GPU.
        assert!(
            (10.0..40.0).contains(&b16.overhead_percent),
            "LeNet b16 overhead {}",
            b16.overhead_percent
        );
        // §V-B: overhead grows with batch size for small networks.
        let b64 = rows.iter().find(|r| r.batch == 64).unwrap();
        assert!(
            b64.overhead_percent > b16.overhead_percent,
            "overhead should grow with batch: {} -> {}",
            b16.overhead_percent,
            b64.overhead_percent
        );
    }

    #[test]
    fn table3_sync_share_falls_with_batch() {
        let h = harness();
        let rows = table3::rows(&h);
        let pct = |batch, gpus| {
            rows.iter()
                .find(|r| r.batch == batch && r.gpus == gpus)
                .unwrap()
                .percent
        };
        // §V-C: the share decreases as the batch grows.
        assert!(pct(16, 1) > pct(64, 1));
        assert!(pct(16, 4) > pct(64, 4));
        assert!(!table3::render(&rows).is_empty());
    }

    #[test]
    fn fig4_single_gpu_wu_is_negligible() {
        let h = harness();
        let cells = fig4::grid(&h, &[Workload::LeNet]);
        let c1 = cells
            .iter()
            .find(|c| c.gpus == 1 && c.batch == 16)
            .unwrap();
        assert!(c1.wu_s < c1.fp_bp_s, "1-GPU WU should be small");
        let c8 = cells
            .iter()
            .find(|c| c.gpus == 8 && c.batch == 16)
            .unwrap();
        assert!(c8.wu_s / (c8.wu_s + c8.fp_bp_s) > c1.wu_s / (c1.wu_s + c1.fp_bp_s));
    }

    #[test]
    fn fig5_weak_scaling_beats_strong_for_lenet() {
        // §V-E: LeNet's weak-scaling speedup exceeds strong scaling
        // because fixed per-epoch overheads amortise over more work.
        let h = harness();
        let cells = fig5::grid(&h, &[Workload::LeNet]);
        let cell = cells
            .iter()
            .find(|c| {
                c.comm == CommMethod::Nccl && c.batch == 16 && c.gpus == 8
            })
            .unwrap();
        assert!(
            cell.weak_norm_s <= cell.strong_s * 1.05,
            "weak {} vs strong {}",
            cell.weak_norm_s,
            cell.strong_s
        );
    }
}
