//! Pluggable execution strategies for grid sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a grid's cells are executed.
///
/// Both strategies produce results in cell-enumeration order; the
/// parallel strategy distributes cells over `std::thread::scope`
/// workers pulling from a shared atomic work index (cells have very
/// uneven costs — Inception-v3 at batch 64 is orders of magnitude
/// heavier than LeNet at batch 16 — so dynamic work-stealing beats
/// static chunking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Run every cell on the calling thread, in enumeration order.
    Serial,
    /// Run cells on `threads` scoped worker threads.
    Parallel {
        /// Worker thread count (clamped to at least 1).
        threads: usize,
    },
}

impl Executor {
    /// A parallel executor sized to the machine.
    pub fn machine() -> Self {
        Executor::Parallel {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Reads the `VOLTASCOPE_THREADS` override:
    ///
    /// * unset, empty or `0` — parallel, one worker per hardware
    ///   thread ([`Executor::machine`]);
    /// * `1` or `serial` — [`Executor::Serial`];
    /// * `N` — parallel with `N` workers.
    ///
    /// Unparseable values fall back to [`Executor::machine`] rather
    /// than failing an experiment run over a typo.
    pub fn from_env() -> Self {
        match std::env::var("VOLTASCOPE_THREADS") {
            Err(_) => Executor::machine(),
            Ok(v) => match v.trim() {
                "" | "0" => Executor::machine(),
                "1" | "serial" => Executor::Serial,
                n => n
                    .parse::<usize>()
                    .map(|threads| Executor::Parallel { threads })
                    .unwrap_or_else(|_| Executor::machine()),
            },
        }
    }

    /// Worker thread count this executor will use.
    pub fn threads(&self) -> usize {
        match *self {
            Executor::Serial => 1,
            Executor::Parallel { threads } => threads.max(1),
        }
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// `f` must be a pure function of its index: the parallel strategy
    /// calls it from worker threads in nondeterministic order, and the
    /// result vector is assembled by index so the output is identical
    /// to the serial strategy's.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.threads().min(n);
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Compute into a worker-local buffer and merge once
                    // at the end, so the shared lock is taken once per
                    // worker rather than once per cell.
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    let mut slots = slots.lock().expect("grid worker poisoned result slots");
                    for (i, value) in local {
                        slots[i] = Some(value);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("grid worker poisoned result slots")
            .into_iter()
            .map(|slot| slot.expect("every grid slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| i * i + 1;
        let serial = Executor::Serial.run(100, f);
        for threads in [1, 2, 3, 8, 200] {
            let parallel = Executor::Parallel { threads }.run(100, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn zero_and_one_cell_grids_work() {
        assert_eq!(Executor::machine().run(0, |i| i), Vec::<usize>::new());
        assert_eq!(Executor::Parallel { threads: 4 }.run(1, |i| i), vec![0]);
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Executor::Serial.threads(), 1);
        assert_eq!(Executor::Parallel { threads: 0 }.threads(), 1);
        assert!(Executor::machine().threads() >= 1);
    }

    #[test]
    fn parallel_actually_uses_worker_threads() {
        let main = std::thread::current().id();
        let ids = Executor::Parallel { threads: 4 }.run(64, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            std::thread::current().id()
        });
        assert!(ids.iter().any(|id| *id != main));
    }
}
