//! Declarative sweep descriptions.

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_train::ScalingMode;

use super::cell::{Cell, FaultScenario, Platform};
use crate::workloads::WorkloadSel;

/// The paper's batch-size sweep.
pub const PAPER_BATCHES: [usize; 3] = [16, 32, 64];
/// The paper's GPU-count sweep.
pub const PAPER_GPU_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A declarative experiment sweep: one value list per axis.
///
/// [`GridSpec::paper`] starts every axis at the paper's canonical
/// value, so an experiment only names the axes it sweeps:
///
/// ```
/// use voltascope::grid::GridSpec;
/// use voltascope_comm::CommMethod;
///
/// // Fig. 4 sweeps workload x batch x GPUs under NCCL only:
/// let spec = GridSpec::paper().comms([CommMethod::Nccl]);
/// assert_eq!(spec.len(), 5 * 1 * 3 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct GridSpec {
    workloads: Vec<WorkloadSel>,
    comms: Vec<CommMethod>,
    batches: Vec<usize>,
    gpu_counts: Vec<usize>,
    scalings: Vec<ScalingMode>,
    platforms: Vec<Platform>,
    faults: Vec<FaultScenario>,
}

impl GridSpec {
    /// The paper's default grid: all five workloads, both communication
    /// methods, batches 16/32/64, 1/2/4/8 GPUs, strong scaling, on the
    /// baseline DGX-1.
    pub fn paper() -> Self {
        GridSpec {
            workloads: Workload::ALL.map(WorkloadSel::Zoo).to_vec(),
            comms: CommMethod::ALL.to_vec(),
            batches: PAPER_BATCHES.to_vec(),
            gpu_counts: PAPER_GPU_COUNTS.to_vec(),
            scalings: vec![ScalingMode::Strong],
            platforms: vec![Platform::Dgx1],
            faults: vec![FaultScenario::Healthy],
        }
    }

    /// Replaces the workload axis. Accepts zoo workloads, data
    /// workloads, or [`WorkloadSel`] values directly.
    pub fn workloads<I>(mut self, workloads: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<WorkloadSel>,
    {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the communication-method axis.
    pub fn comms(mut self, comms: impl IntoIterator<Item = CommMethod>) -> Self {
        self.comms = comms.into_iter().collect();
        self
    }

    /// Replaces the batch-size axis.
    pub fn batches(mut self, batches: impl IntoIterator<Item = usize>) -> Self {
        self.batches = batches.into_iter().collect();
        self
    }

    /// Replaces the GPU-count axis.
    pub fn gpu_counts(mut self, gpu_counts: impl IntoIterator<Item = usize>) -> Self {
        self.gpu_counts = gpu_counts.into_iter().collect();
        self
    }

    /// Replaces the scaling-mode axis.
    pub fn scalings(mut self, scalings: impl IntoIterator<Item = ScalingMode>) -> Self {
        self.scalings = scalings.into_iter().collect();
        self
    }

    /// Replaces the platform axis.
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = Platform>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Replaces the fault-scenario axis (default: healthy only).
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultScenario>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// The workload axis values.
    pub fn workload_axis(&self) -> &[WorkloadSel] {
        &self.workloads
    }

    /// The platform axis values.
    pub fn platform_axis(&self) -> &[Platform] {
        &self.platforms
    }

    /// The fault-scenario axis values.
    pub fn fault_axis(&self) -> &[FaultScenario] {
        &self.faults
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.comms.len()
            * self.batches.len()
            * self.gpu_counts.len()
            * self.scalings.len()
            * self.platforms.len()
            * self.faults.len()
    }

    /// Whether the grid has no cells (any axis empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every cell in the **canonical order**: workload →
    /// platform → fault → comm → batch → GPUs → scaling (scaling
    /// innermost so regime pairs of the same configuration are
    /// adjacent; fault right after platform because a scenario is a
    /// modifier of the platform under test).
    ///
    /// This order is part of the golden-output contract: renderers
    /// derive their row order from it, and the parallel executor
    /// returns results in exactly this order regardless of which
    /// thread computed which cell. The singleton `Healthy` default
    /// keeps pre-fault-axis grids enumerating exactly as before.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.len());
        for &workload in &self.workloads {
            for &platform in &self.platforms {
                for &fault in &self.faults {
                    for &comm in &self.comms {
                        for &batch in &self.batches {
                            for &gpus in &self.gpu_counts {
                                for &scaling in &self.scalings {
                                    cells.push(Cell {
                                        workload,
                                        comm,
                                        batch,
                                        gpus,
                                        scaling,
                                        platform,
                                        fault,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_the_fig3_shape() {
        let spec = GridSpec::paper();
        assert_eq!(spec.len(), 5 * 2 * 3 * 4);
        assert_eq!(spec.cells().len(), spec.len());
        assert!(!spec.is_empty());
    }

    #[test]
    fn enumeration_order_is_workload_major_scaling_minor() {
        let spec = GridSpec::paper()
            .workloads([Workload::LeNet, Workload::AlexNet])
            .comms([CommMethod::P2p])
            .batches([16])
            .gpu_counts([1, 2])
            .scalings([ScalingMode::Strong, ScalingMode::Weak]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload, Workload::LeNet);
        assert_eq!(cells[0].scaling, ScalingMode::Strong);
        assert_eq!(cells[1].scaling, ScalingMode::Weak);
        assert_eq!(cells[1].gpus, 1);
        assert_eq!(cells[2].gpus, 2);
        assert_eq!(cells[4].workload, Workload::AlexNet);
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let spec = GridSpec::paper().batches([]);
        assert!(spec.is_empty());
        assert!(spec.cells().is_empty());
    }

    #[test]
    fn fault_axis_defaults_to_healthy_singleton() {
        let spec = GridSpec::paper();
        assert_eq!(spec.fault_axis(), &[FaultScenario::Healthy]);
        assert!(spec
            .cells()
            .iter()
            .all(|c| c.fault == FaultScenario::Healthy));
    }

    #[test]
    fn fault_axis_multiplies_the_grid_inside_each_platform() {
        let spec = GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::Nccl])
            .batches([16])
            .gpu_counts([8])
            .faults(FaultScenario::ALL);
        assert_eq!(spec.len(), 3);
        let cells = spec.cells();
        assert_eq!(cells[0].fault, FaultScenario::Healthy);
        assert_eq!(cells[1].fault, FaultScenario::DeadNvLink);
        assert_eq!(cells[2].fault, FaultScenario::StragglerGpu);
    }
}
