//! # The declarative experiment grid engine
//!
//! Every result in the paper is a configuration grid — Fig. 3 alone is
//! 5 workloads × 2 communication methods × 3 batch sizes × 4 GPU
//! counts — and every cell of every grid is a pure function of its
//! configuration. This module replaces the hand-rolled nested sweep
//! loops the experiment modules used to carry with one engine:
//!
//! * [`GridSpec`] — the declarative description of a sweep: one value
//!   list per axis (workload, communication method, batch size, GPU
//!   count, scaling mode, platform variant), each defaulting to the
//!   paper's canonical choice so an experiment only names the axes it
//!   actually sweeps.
//! * [`Cell`] — one typed grid point. Cells are `Copy + Eq + Hash`, so
//!   renderers index results in O(1) instead of linearly scanning
//!   result vectors. Jitter salts are derived from the cell key alone
//!   ([`Cell::jitter_salt`]), never from execution order.
//! * [`Executor`] — pluggable execution strategy: [`Executor::Serial`]
//!   or [`Executor::Parallel`] (std `thread::scope` work-chunking over
//!   an atomic work index; the workspace deliberately has no rayon).
//!   [`Executor::from_env`] reads the `VOLTASCOPE_THREADS` override.
//! * [`GridRunner`] — pre-builds each workload's [`Model`] once per
//!   grid (shared via `Arc` across worker threads) and each platform
//!   variant's [`Harness`] once, then maps a cell function over the
//!   enumeration.
//!
//! ## Determinism
//!
//! Cell enumeration order is fixed (workload → platform → comm → batch
//! → GPUs → scaling) and results are written into slots indexed by the
//! cell's enumeration position, so [`Executor::Serial`] and
//! [`Executor::Parallel`] produce **bit-identical** result vectors for
//! any thread count — verified by `tests/determinism.rs`.
//!
//! ## Example
//!
//! ```
//! use voltascope::grid::{Executor, GridRunner, GridSpec};
//! use voltascope::Harness;
//! use voltascope_dnn::zoo::Workload;
//!
//! let spec = GridSpec::paper()
//!     .workloads([Workload::LeNet])
//!     .batches([16])
//!     .gpu_counts([1, 4]);
//! let harness = Harness::paper();
//! let runner = GridRunner::new(&harness, &spec);
//! let out = runner.run(Executor::Serial, &spec, |ctx| {
//!     ctx.harness
//!         .epoch(ctx.model(), ctx.cell.batch, ctx.cell.gpus, ctx.cell.comm, ctx.cell.scaling)
//!         .epoch_time
//! });
//! assert_eq!(out.len(), 2 * 2); // comm methods x GPU counts
//! ```

mod cell;
mod executor;
mod runner;
mod spec;

pub use cell::{Cell, FaultScenario, Platform};
pub use executor::Executor;
pub use runner::{cell_report, epoch_reports, harness_for, run_grid, CellCtx, GridOut, GridRunner};
pub use spec::{GridSpec, PAPER_BATCHES, PAPER_GPU_COUNTS};

#[allow(unused_imports)] // rustdoc links
use voltascope_dnn::Model;

#[allow(unused_imports)] // rustdoc links
use crate::Harness;
