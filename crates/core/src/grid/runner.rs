//! Shared-context grid execution and indexed results.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use voltascope_dnn::Model;
use voltascope_train::{EpochReport, MidEpochFault};
use voltascope_workload::Definition;

use super::cell::{Cell, FaultScenario, Platform};
use super::executor::Executor;
use super::spec::GridSpec;
use crate::workloads::WorkloadSel;
use crate::Harness;

/// Everything a cell function needs, resolved once per grid rather
/// than once per cell: the platform-adjusted harness and the resolved
/// workload definition.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx<'r> {
    /// The grid point being evaluated.
    pub cell: Cell,
    /// Harness whose system model matches `cell.platform`.
    pub harness: &'r Harness,
    /// The cell's workload definition, resolved once per grid and
    /// shared.
    pub def: &'r Definition,
}

impl<'r> CellCtx<'r> {
    /// The cell's built [`Model`], for experiments that inspect graph
    /// structure or memory (data-only workloads have no model).
    ///
    /// # Panics
    ///
    /// Panics when the cell's workload is data-defined; model-reading
    /// experiments must sweep zoo workloads.
    pub fn model(&self) -> &'r Model {
        self.def.model().unwrap_or_else(|| {
            panic!(
                "workload `{}` is data-defined and has no built model",
                self.cell.workload.name()
            )
        })
    }
}

/// Pre-resolved shared state for one grid: each workload's
/// [`Definition`] resolved exactly once (building the zoo model and/or
/// attaching the parsed spec), and one [`Harness`] per (platform,
/// fault scenario) combination, all behind `Arc` so parallel workers
/// share them without copying.
#[derive(Debug, Clone)]
pub struct GridRunner {
    defs: HashMap<WorkloadSel, Arc<Definition>>,
    harnesses: HashMap<(Platform, FaultScenario), Arc<Harness>>,
}

impl GridRunner {
    /// Builds the shared context for `spec`: one definition per
    /// workload on the axis, one harness per (platform, fault) pair on
    /// the axes.
    pub fn new(base: &Harness, spec: &GridSpec) -> Self {
        let defs = spec
            .workload_axis()
            .iter()
            .map(|&w| (w, Arc::new(w.definition())))
            .collect();
        let mut harnesses = HashMap::new();
        for &p in spec.platform_axis() {
            for &f in spec.fault_axis() {
                harnesses.insert((p, f), Arc::new(harness_for(base, p, f)));
            }
        }
        GridRunner { defs, harnesses }
    }

    /// Maps `f` over every cell of `spec` under `exec`, returning the
    /// values in cell-enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `spec` names a workload or platform this runner was
    /// not built for (always build the runner from the same spec, or a
    /// superset).
    pub fn run<T, F>(&self, exec: Executor, spec: &GridSpec, f: F) -> GridOut<T>
    where
        T: Send,
        F: Fn(CellCtx<'_>) -> T + Sync,
    {
        let cells = spec.cells();
        let values = exec.run(cells.len(), |i| {
            let cell = cells[i];
            let ctx = CellCtx {
                cell,
                harness: self
                    .harnesses
                    .get(&(cell.platform, cell.fault))
                    .expect("runner built for this platform and fault axis"),
                def: self
                    .defs
                    .get(&cell.workload)
                    .expect("runner built for this workload axis"),
            };
            f(ctx)
        });
        GridOut { cells, values }
    }
}

/// Builds the [`Harness`] variant for one (platform, fault) pair:
/// `base` itself for the healthy baseline DGX-1, otherwise `base` with
/// the variant topology swapped in and the fault spec applied. The
/// measurement-protocol fields (reps, jitter, seed) are always
/// inherited unchanged, so post-processing a variant's raw epoch with
/// the *base* harness is byte-identical to using the variant harness.
///
/// Mid-epoch scenarios ([`FaultScenario::mid_epoch_fraction`]) keep
/// the platform topology *healthy*: their fault strikes at simulation
/// time via the engine's dynamic-event machinery ([`cell_report`]),
/// not by rewiring the topology before lowering.
pub fn harness_for(base: &Harness, platform: Platform, fault: FaultScenario) -> Harness {
    let static_fault = fault != FaultScenario::Healthy && fault.mid_epoch_fraction().is_none();
    if platform == Platform::Dgx1 && !static_fault {
        return base.clone();
    }
    let mut sys = base.sys.clone();
    if platform != Platform::Dgx1 {
        sys.topo = platform.topology();
    }
    if static_fault {
        sys = sys.with_faults(&fault.spec());
    }
    Harness {
        sys,
        ..base.clone()
    }
}

/// Simulates one cell's [`EpochReport`], dispatching on the fault
/// scenario: static scenarios run the ordinary epoch against the
/// (already degraded) harness; mid-epoch scenarios run the dynamic
/// piecewise epoch against the healthy harness, with the fault lowered
/// to engine events at [`FaultScenario::mid_epoch_fraction`]. Both the
/// direct grid path ([`epoch_reports`]) and the caching service route
/// every cell through here, so the two stay interchangeable.
pub fn cell_report(harness: &Harness, def: &Definition, cell: &Cell) -> EpochReport {
    match cell.fault.mid_epoch_fraction() {
        Some(fraction) => harness.epoch_def_dynamic(
            def,
            cell.batch,
            cell.gpus,
            cell.comm,
            cell.scaling,
            &MidEpochFault::new(cell.fault.spec(), fraction),
        ),
        None => harness.epoch_def(def, cell.batch, cell.gpus, cell.comm, cell.scaling),
    }
}

/// Runs one grid end to end: build the shared context, execute, return
/// indexed results. The common entry point for experiment modules.
pub fn run_grid<T, F>(base: &Harness, spec: &GridSpec, exec: Executor, f: F) -> GridOut<T>
where
    T: Send,
    F: Fn(CellCtx<'_>) -> T + Sync,
{
    GridRunner::new(base, spec).run(exec, spec, f)
}

/// Simulates the raw [`EpochReport`] of every cell of `spec` — the
/// direct-path twin of [`crate::service::GridService::sweep`]. Both
/// produce the same `GridOut<Arc<EpochReport>>` shape, so experiment
/// row derivations are agnostic about which path computed their cells.
pub fn epoch_reports(base: &Harness, spec: &GridSpec, exec: Executor) -> GridOut<Arc<EpochReport>> {
    run_grid(base, spec, exec, |ctx| {
        Arc::new(cell_report(ctx.harness, ctx.def, &ctx.cell))
    })
}

/// The results of one grid run: values in cell-enumeration order plus
/// O(1) lookup by cell key.
#[derive(Debug, Clone)]
pub struct GridOut<T> {
    cells: Vec<Cell>,
    values: Vec<T>,
}

impl<T> GridOut<T> {
    /// Assembles a grid result from already-paired cells and values
    /// (used by the service layer, which answers some cells from cache
    /// rather than executing the whole grid).
    ///
    /// # Panics
    ///
    /// Panics when the lengths disagree.
    pub(crate) fn from_parts(cells: Vec<Cell>, values: Vec<T>) -> Self {
        assert_eq!(
            cells.len(),
            values.len(),
            "one value per cell in enumeration order"
        );
        GridOut { cells, values }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid was empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells, in enumeration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The values, in enumeration order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterates `(cell, value)` pairs in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = (&Cell, &T)> {
        self.cells.iter().zip(self.values.iter())
    }

    /// Consumes the grid into `(cell, value)` pairs.
    pub fn into_pairs(self) -> impl Iterator<Item = (Cell, T)> {
        self.cells.into_iter().zip(self.values)
    }

    /// An O(1) index over the full cell keys.
    pub fn index(&self) -> HashMap<Cell, &T> {
        self.cells.iter().copied().zip(self.values.iter()).collect()
    }

    /// An O(1) index over a derived key (e.g. `(workload, batch)` when
    /// the other axes are singletons). Later cells win on key
    /// collisions, matching enumeration order.
    pub fn index_by<K, F>(&self, key: F) -> HashMap<K, &T>
    where
        K: Eq + Hash,
        F: Fn(&Cell) -> K,
    {
        self.cells
            .iter()
            .map(&key)
            .zip(self.values.iter())
            .collect()
    }

    /// Looks up one cell's value.
    pub fn get(&self, cell: &Cell) -> Option<&T> {
        self.cells
            .iter()
            .position(|c| c == cell)
            .map(|i| &self.values[i])
    }

    /// Maps the values, keeping cells and order.
    pub fn map<U, F: FnMut(&Cell, T) -> U>(self, mut f: F) -> GridOut<U> {
        let GridOut { cells, values } = self;
        let values = cells.iter().zip(values).map(|(c, v)| f(c, v)).collect();
        GridOut { cells, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_comm::CommMethod;
    use voltascope_dnn::zoo::Workload;

    fn small_spec() -> GridSpec {
        GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::P2p])
            .batches([16, 32])
            .gpu_counts([1, 2])
    }

    #[test]
    fn runner_shares_one_definition_per_workload() {
        let h = Harness::paper();
        let spec = small_spec();
        let runner = GridRunner::new(&h, &spec);
        let out = runner.run(Executor::Serial, &spec, |ctx| {
            (
                ctx.def as *const Definition as usize,
                ctx.model() as *const Model as usize,
            )
        });
        let first = out.values()[0];
        assert!(out.values().iter().all(|&p| p == first));
    }

    #[test]
    fn results_are_indexable_by_cell() {
        let h = Harness::paper();
        let spec = small_spec();
        let out = run_grid(&h, &spec, Executor::Serial, |ctx| {
            (ctx.cell.batch, ctx.cell.gpus)
        });
        assert_eq!(out.len(), 4);
        let index = out.index();
        for (cell, value) in out.iter() {
            assert_eq!(index[cell], value);
            assert_eq!(out.get(cell), Some(value));
        }
        let by_batch = out.index_by(|c| (c.batch, c.gpus));
        assert_eq!(by_batch[&(32, 2)], &(32, 2));
    }

    #[test]
    fn platform_axis_swaps_the_topology() {
        let h = Harness::paper();
        let spec = small_spec()
            .batches([16])
            .gpu_counts([2])
            .platforms([Platform::Dgx1, Platform::PcieOnly]);
        let out = run_grid(&h, &spec, Executor::Serial, |ctx| {
            ctx.harness.sys.topo.name().to_string()
        });
        let names: Vec<&str> = out.values().iter().map(String::as_str).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn mid_epoch_scenarios_keep_the_harness_healthy() {
        // Dynamic scenarios inject their fault at simulation time, so
        // the harness topology must stay the healthy platform — the
        // pre-fault iterations and the communicator are built against
        // it.
        let h = Harness::paper();
        let healthy = harness_for(&h, Platform::Dgx1, FaultScenario::Healthy);
        let dynamic = harness_for(&h, Platform::Dgx1, FaultScenario::MidEpochDeadNvLink);
        let dead = harness_for(&h, Platform::Dgx1, FaultScenario::DeadNvLink);
        assert_eq!(dynamic.sys.topo.name(), healthy.sys.topo.name());
        assert_ne!(dead.sys.topo.name(), healthy.sys.topo.name());
        let straggling = harness_for(&h, Platform::Dgx1, FaultScenario::MidEpochStraggler);
        assert!(straggling.sys.gpu_slowdown.is_empty());
    }

    #[test]
    fn fault_axis_degrades_the_harness_system() {
        let h = Harness::paper();
        let spec = small_spec()
            .batches([16])
            .gpu_counts([8])
            .faults(FaultScenario::ALL);
        let out = run_grid(&h, &spec, Executor::Serial, |ctx| {
            (
                ctx.cell.fault,
                ctx.harness.sys.topo.name().to_string(),
                ctx.harness.sys.gpu_slowdown.len(),
            )
        });
        let index = out.index_by(|c| c.fault);
        let (_, healthy_name, healthy_slow) = index[&FaultScenario::Healthy];
        let (_, dead_name, _) = index[&FaultScenario::DeadNvLink];
        let (_, _, straggler_slow) = index[&FaultScenario::StragglerGpu];
        assert_eq!(*healthy_slow, 0);
        assert_ne!(healthy_name, dead_name);
        assert_eq!(*straggler_slow, 1);
    }
}
