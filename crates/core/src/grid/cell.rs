//! Typed grid points and platform variants.

use voltascope_comm::CommMethod;
use voltascope_topo::{
    dgx1_v100, full_nvlink_switch, pcie_only, single_lane_dgx1, Device, FaultSpec, Topology,
};
use voltascope_train::ScalingMode;

use crate::workloads::WorkloadSel;

/// A platform variant for the ablation axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's DGX-1 (baseline).
    Dgx1,
    /// DGX-1 wiring with all NVLink double connections flattened to
    /// single lanes — isolates the asymmetric-bandwidth effect (§V-A).
    SingleLane,
    /// No NVLink at all (Tallent et al.'s PCIe baseline, §III).
    PcieOnly,
    /// Idealised all-to-all NVSwitch: every pair one hop.
    NvSwitch,
    /// DGX-1 wiring but with GPU routers allowed to forward packets —
    /// removes the design limitation of §V-A footnote 4.
    ForwardingGpus,
}

impl Platform {
    /// All variants, baseline first.
    pub const ALL: [Platform; 5] = [
        Platform::Dgx1,
        Platform::SingleLane,
        Platform::PcieOnly,
        Platform::NvSwitch,
        Platform::ForwardingGpus,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Dgx1 => "DGX-1",
            Platform::SingleLane => "DGX-1 single-lane",
            Platform::PcieOnly => "PCIe-only",
            Platform::NvSwitch => "NVSwitch (ideal)",
            Platform::ForwardingGpus => "DGX-1 + GPU forwarding",
        }
    }

    /// Builds the variant topology.
    pub fn topology(self) -> Topology {
        match self {
            Platform::Dgx1 => dgx1_v100(),
            Platform::SingleLane => single_lane_dgx1(),
            Platform::PcieOnly => pcie_only(8),
            Platform::NvSwitch => full_nvlink_switch(8),
            Platform::ForwardingGpus => {
                let mut t = dgx1_v100();
                t.set_gpus_forward(true);
                t
            }
        }
    }
}

/// A canned degraded-DGX-1 scenario for the fault axis of the grid.
///
/// Each variant names a reproducible [`FaultSpec`]; experiments sweep
/// these instead of carrying ad-hoc specs so cells stay small `Copy`
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScenario {
    /// No faults: the baseline platform as-is.
    Healthy,
    /// GPU3's NVLink interface is dead (all its NVLink bricks down).
    /// This is the interesting single-point failure: killing any *one*
    /// NVLink cable leaves an all-NVLink 8-GPU Hamiltonian ring with
    /// the same 25 GB/s bottleneck (the hybrid cube-mesh tolerates it),
    /// but a dead interface forces the ring through host-bounced PCIe
    /// hops.
    DeadNvLink,
    /// GPU3 is a straggler: thermal throttling runs its kernels 1.5x
    /// slower, dragging every synchronous iteration with it.
    StragglerGpu,
    /// GPU3 *and* GPU6 straggle at 1.5x simultaneously — one on each
    /// CPU socket. Synchronous data parallelism waits for the slowest
    /// rank per iteration, so a second straggler at the same factor
    /// barely moves the epoch beyond the single-straggler case; this
    /// scenario exists to demonstrate that max-of-ranks behaviour.
    TwoStragglers,
    /// The [`FaultScenario::DeadNvLink`] interface failure striking at
    /// 50% of the epoch instead of existing from the start: pre-fault
    /// iterations run healthy, the in-flight iteration re-routes its
    /// dead-link traffic through the engine's dynamic-event machinery,
    /// and the tail runs at the renegotiated host-bounced pace.
    MidEpochDeadNvLink,
    /// The [`FaultScenario::StragglerGpu`] throttling starting at 50%
    /// of the epoch: GPU3's in-flight kernels stretch mid-iteration,
    /// then the tail runs at the statically throttled pace.
    MidEpochStraggler,
}

impl FaultScenario {
    /// The scenarios swept by the canonical degraded-DGX-1 experiment,
    /// healthy first. Frozen at three entries: the golden outputs under
    /// `results/` enumerate exactly this set, so new scenarios join
    /// [`FaultScenario::EXTENDED`] instead.
    pub const ALL: [FaultScenario; 3] = [
        FaultScenario::Healthy,
        FaultScenario::DeadNvLink,
        FaultScenario::StragglerGpu,
    ];

    /// Every canned scenario, including those outside the canonical
    /// golden sweep.
    pub const EXTENDED: [FaultScenario; 6] = [
        FaultScenario::Healthy,
        FaultScenario::DeadNvLink,
        FaultScenario::StragglerGpu,
        FaultScenario::TwoStragglers,
        FaultScenario::MidEpochDeadNvLink,
        FaultScenario::MidEpochStraggler,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::Healthy => "healthy",
            FaultScenario::DeadNvLink => "dead NVLink (GPU3)",
            FaultScenario::StragglerGpu => "straggler GPU3 (1.5x)",
            FaultScenario::TwoStragglers => "stragglers GPU3+GPU6 (1.5x)",
            FaultScenario::MidEpochDeadNvLink => "dead NVLink (GPU3) at 50%",
            FaultScenario::MidEpochStraggler => "straggler GPU3 (1.5x) at 50%",
        }
    }

    /// The fault specification this scenario injects. For mid-epoch
    /// scenarios this is the fault that eventually strikes; pair it
    /// with [`FaultScenario::mid_epoch_fraction`] to decide *when* it
    /// applies (the grid harness stays healthy and the fault is lowered
    /// to dynamic engine events instead of rewiring the topology).
    pub fn spec(self) -> FaultSpec {
        match self {
            FaultScenario::Healthy => FaultSpec::new(),
            FaultScenario::DeadNvLink | FaultScenario::MidEpochDeadNvLink => {
                FaultSpec::new().kill_nvlinks_of(Device::gpu(3))
            }
            FaultScenario::StragglerGpu | FaultScenario::MidEpochStraggler => {
                FaultSpec::new().slow_gpu(Device::gpu(3), 1.5)
            }
            FaultScenario::TwoStragglers => {
                FaultSpec::new().two_stragglers(Device::gpu(3), Device::gpu(6), 1.5)
            }
        }
    }

    /// For dynamic scenarios, the epoch fraction at which
    /// [`FaultScenario::spec`] strikes; `None` for scenarios whose
    /// fault exists for the whole epoch (the topology is rewired before
    /// lowering and every iteration pays the degraded price).
    pub fn mid_epoch_fraction(self) -> Option<f64> {
        match self {
            FaultScenario::MidEpochDeadNvLink | FaultScenario::MidEpochStraggler => Some(0.5),
            _ => None,
        }
    }
}

/// One typed point of an experiment grid: the full configuration of a
/// single measurement. Cells are small `Copy` keys, `Eq + Hash` so
/// renderers can index results directly instead of scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Workload (network) selector: zoo builder or data-defined spec.
    pub workload: WorkloadSel,
    /// Communication method.
    pub comm: CommMethod,
    /// Per-GPU batch size.
    pub batch: usize,
    /// GPU count.
    pub gpus: usize,
    /// Dataset scaling regime.
    pub scaling: ScalingMode,
    /// Platform variant.
    pub platform: Platform,
    /// Fault-injection scenario applied to the platform.
    pub fault: FaultScenario,
}

impl Cell {
    /// The jitter salt of the repetition protocol, derived from the
    /// cell key alone so that execution order (and executor choice)
    /// can never influence the sampled jitter stream.
    ///
    /// The bit layout is **frozen**: it must keep matching the seed
    /// harness's formula so the golden outputs under `results/` stay
    /// byte-identical. Zoo workloads tag their enum discriminant
    /// (0..=4) exactly as before; data workloads occupy the disjoint
    /// `0x20 + index` range (see [`WorkloadSel::salt_tag`]). Scaling
    /// mode, platform and fault scenario are deliberately not salted —
    /// the jittered-measurement protocol is only applied to the
    /// baseline-platform strong-scaling grids (Fig. 3); all other
    /// experiments (including the degraded-DGX-1 sweep) report raw
    /// epoch times.
    pub fn jitter_salt(&self) -> u64 {
        (self.workload.salt_tag() << 40)
            | ((self.batch as u64) << 24)
            | ((self.gpus as u64) << 16)
            | (self.comm == CommMethod::Nccl) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use voltascope_dnn::zoo::Workload;

    fn cell(workload: Workload, comm: CommMethod, batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: workload.into(),
            comm,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    #[test]
    fn salts_are_distinct_across_the_paper_grid() {
        let mut seen = std::collections::HashSet::new();
        for w in Workload::ALL {
            for comm in CommMethod::ALL {
                for batch in [16, 32, 64] {
                    for gpus in [1, 2, 4, 8] {
                        assert!(
                            seen.insert(cell(w, comm, batch, gpus).jitter_salt()),
                            "salt collision at {w:?}/{comm:?}/{batch}/{gpus}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn salt_matches_the_frozen_seed_formula() {
        let c = cell(Workload::LeNet, CommMethod::Nccl, 16, 4);
        let expect = ((Workload::LeNet as u64) << 40) | (16u64 << 24) | (4u64 << 16) | 1;
        assert_eq!(c.jitter_salt(), expect);
    }

    #[test]
    fn platform_topologies_build() {
        for p in Platform::ALL {
            let t = p.topology();
            assert!(!p.name().is_empty());
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn fault_scenarios_apply_to_every_platform() {
        for p in Platform::ALL {
            for f in FaultScenario::EXTENDED {
                // Every canned scenario must be valid on every platform
                // topology (GPU3 exists everywhere; its NVLink-kill is
                // a no-op on PCIe-only, which has no NVLinks).
                let t = p.topology().apply(&f.spec());
                assert!(!t.name().is_empty(), "{p:?}/{f:?}");
                assert!(!f.name().is_empty());
            }
        }
    }

    #[test]
    fn healthy_scenario_is_the_empty_spec() {
        for f in FaultScenario::EXTENDED {
            assert_eq!(f.spec().is_healthy(), f == FaultScenario::Healthy, "{f:?}");
        }
    }

    #[test]
    fn mid_epoch_scenarios_strike_halfway_with_their_static_twin_spec() {
        assert_eq!(
            FaultScenario::MidEpochDeadNvLink.mid_epoch_fraction(),
            Some(0.5)
        );
        assert_eq!(
            FaultScenario::MidEpochStraggler.mid_epoch_fraction(),
            Some(0.5)
        );
        for f in FaultScenario::ALL {
            assert_eq!(f.mid_epoch_fraction(), None, "{f:?}");
        }
        assert_eq!(FaultScenario::TwoStragglers.mid_epoch_fraction(), None);
        // Each dynamic scenario strikes with exactly its static twin's
        // fault, so the two rows bracket the same damage.
        assert_eq!(
            format!("{:?}", FaultScenario::MidEpochDeadNvLink.spec()),
            format!("{:?}", FaultScenario::DeadNvLink.spec())
        );
        assert_eq!(
            format!("{:?}", FaultScenario::MidEpochStraggler.spec()),
            format!("{:?}", FaultScenario::StragglerGpu.spec())
        );
    }

    #[test]
    fn canonical_sweep_is_frozen_and_extended_is_a_superset() {
        // The degraded-DGX-1 golden enumerates exactly ALL; it must not
        // grow when scenarios are added.
        assert_eq!(FaultScenario::ALL.len(), 3);
        for f in FaultScenario::ALL {
            assert!(FaultScenario::EXTENDED.contains(&f));
        }
        assert!(FaultScenario::EXTENDED.contains(&FaultScenario::TwoStragglers));
        assert!(FaultScenario::EXTENDED.contains(&FaultScenario::MidEpochDeadNvLink));
        assert!(FaultScenario::EXTENDED.contains(&FaultScenario::MidEpochStraggler));
        // Dynamic scenarios must stay out of the frozen canonical sweep.
        assert!(FaultScenario::ALL
            .iter()
            .all(|f| f.mid_epoch_fraction().is_none()));
    }

    #[test]
    fn two_stragglers_slow_both_sockets() {
        let spec = FaultScenario::TwoStragglers.spec();
        assert_eq!(spec.slowdown_of(Device::gpu(3)), 1.5);
        assert_eq!(spec.slowdown_of(Device::gpu(6)), 1.5);
        assert_eq!(spec.slowdown_of(Device::gpu(0)), 1.0);
    }
}
