//! Workload selection and the data-workload registry.
//!
//! The grid machinery keys cells by [`WorkloadSel`]: either a zoo
//! workload built in Rust ([`Workload`]) or a [`DataWorkload`] — a
//! `.workload` spec discovered on disk, indexed into a process-wide
//! registry so the selector stays a small `Copy` key.
//!
//! # Registry
//!
//! The registry loads lazily from `$VOLTASCOPE_WORKLOAD_DIR`, falling
//! back to the repository's `workloads/` directory. Files are taken in
//! filename order (sorted), so [`DataWorkload`] indices — and the
//! jitter salts derived from them — are stable for a fixed directory
//! content. A missing directory yields an empty registry; a file that
//! fails to parse aborts with the parser's typed error (CI's
//! parse-all-workloads step reports the same error first).
//!
//! # Data-driven zoo
//!
//! Setting `VOLTASCOPE_WORKLOAD_SOURCE=data` makes every zoo selector
//! resolve to a [`Definition::Checked`]: epoch timing then lowers from
//! the checked-in `.workload` file while the built model stays
//! available for memory/census queries. The golden CI job re-runs the
//! full suite in this mode to prove the data path byte-identical.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use voltascope_dnn::zoo::Workload;
use voltascope_workload::{Definition, ParseError, WorkloadSpec};

/// Environment variable overriding the `.workload` search directory.
pub const WORKLOAD_DIR_ENV: &str = "VOLTASCOPE_WORKLOAD_DIR";
/// Environment variable selecting the zoo definition source
/// (`data` routes zoo timing through the parsed `.workload` files).
pub const WORKLOAD_SOURCE_ENV: &str = "VOLTASCOPE_WORKLOAD_SOURCE";

/// A workload from the on-disk registry, identified by its stable
/// index (filename-sorted position in the workload directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataWorkload(u16);

impl DataWorkload {
    /// Registry index (filename-sorted, stable per directory content).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The workload's display name (the spec's `name` directive).
    pub fn name(self) -> &'static str {
        &registry().entries[self.index()].name
    }

    /// The parsed spec.
    pub fn spec(self) -> &'static Arc<WorkloadSpec> {
        &registry().entries[self.index()].spec
    }

    /// The file the spec was parsed from.
    pub fn path(self) -> &'static Path {
        &registry().entries[self.index()].path
    }
}

impl std::fmt::Display for DataWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Selects a workload for a grid cell: a Rust-built zoo network or a
/// data-defined `.workload` spec. Small `Copy` key, `Eq + Hash`, like
/// every other cell axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadSel {
    /// One of the five paper workloads, built in Rust.
    Zoo(Workload),
    /// A registered data workload.
    Data(DataWorkload),
}

impl WorkloadSel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadSel::Zoo(w) => w.name(),
            WorkloadSel::Data(d) => d.name(),
        }
    }

    /// The zoo workload, when this selector is one.
    pub fn zoo(self) -> Option<Workload> {
        match self {
            WorkloadSel::Zoo(w) => Some(w),
            WorkloadSel::Data(_) => None,
        }
    }

    /// The workload tag salted into the jitter stream. Zoo tags are
    /// the **frozen** enum discriminants (0..=4, golden-locked); data
    /// workloads occupy a disjoint range starting at `0x20`.
    pub fn salt_tag(self) -> u64 {
        match self {
            WorkloadSel::Zoo(w) => w as u64,
            WorkloadSel::Data(d) => 0x20 + d.0 as u64,
        }
    }

    /// Resolves a selector from a name: zoo names/aliases first, then
    /// registered data workloads (exact spec name).
    pub fn from_name(name: &str) -> Option<WorkloadSel> {
        if let Some(w) = Workload::from_name(name) {
            return Some(WorkloadSel::Zoo(w));
        }
        find_data(name).map(WorkloadSel::Data)
    }

    /// Resolves the selector to a workload [`Definition`].
    ///
    /// Zoo selectors yield [`Definition::Builder`] unless
    /// `VOLTASCOPE_WORKLOAD_SOURCE=data`, in which case the registered
    /// spec of the same name is attached as [`Definition::Checked`]
    /// and timing lowers from the data file.
    ///
    /// # Panics
    ///
    /// Panics when the data source is requested but no spec with the
    /// zoo model's name is registered.
    pub fn definition(self) -> Definition {
        match self {
            WorkloadSel::Zoo(w) => {
                let model = Arc::new(w.build());
                if data_source_requested() {
                    let spec = find_data(model.name())
                        .unwrap_or_else(|| {
                            panic!(
                                "{WORKLOAD_SOURCE_ENV}=data but no .workload spec named `{}` is registered",
                                model.name()
                            )
                        })
                        .spec()
                        .clone();
                    Definition::Checked { model, spec }
                } else {
                    Definition::Builder(model)
                }
            }
            WorkloadSel::Data(d) => Definition::Data(d.spec().clone()),
        }
    }
}

impl From<Workload> for WorkloadSel {
    fn from(w: Workload) -> Self {
        WorkloadSel::Zoo(w)
    }
}

impl From<DataWorkload> for WorkloadSel {
    fn from(d: DataWorkload) -> Self {
        WorkloadSel::Data(d)
    }
}

impl PartialEq<Workload> for WorkloadSel {
    fn eq(&self, other: &Workload) -> bool {
        matches!(self, WorkloadSel::Zoo(w) if w == other)
    }
}

impl std::fmt::Display for WorkloadSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

struct Entry {
    name: String,
    spec: Arc<WorkloadSpec>,
    path: PathBuf,
}

struct Registry {
    entries: Vec<Entry>,
}

/// Whether zoo timing should lower from the data files.
fn data_source_requested() -> bool {
    std::env::var(WORKLOAD_SOURCE_ENV).is_ok_and(|v| v == "data")
}

/// The directory the registry loads from: the env override, else the
/// repository's `workloads/` directory next to the workspace root.
pub fn workload_dir() -> PathBuf {
    match std::env::var_os(WORKLOAD_DIR_ENV) {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads"),
    }
}

/// Parses every `*.workload` file under `dir` in filename order.
/// Pure helper behind the process registry, also used by the CI
/// parse-all-workloads gate.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, WorkloadSpec)>, (PathBuf, ParseError)> {
    let Ok(read) = std::fs::read_dir(dir) else {
        return Ok(Vec::new()); // missing directory == empty registry
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "workload"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        match WorkloadSpec::parse(&text) {
            Ok(spec) => out.push((path, spec)),
            Err(e) => return Err((path, e)),
        }
    }
    Ok(out)
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let entries = load_dir(&workload_dir())
            .unwrap_or_else(|(path, e)| panic!("{}: {e}", path.display()))
            .into_iter()
            .map(|(path, spec)| Entry {
                name: spec.name.clone(),
                spec: Arc::new(spec),
                path,
            })
            .collect();
        Registry { entries }
    })
}

/// All registered data workloads, in registry (filename) order.
pub fn data_workloads() -> Vec<DataWorkload> {
    (0..registry().entries.len())
        .map(|i| DataWorkload(i as u16))
        .collect()
}

/// Finds a registered data workload by exact spec name.
pub fn find_data(name: &str) -> Option<DataWorkload> {
    registry()
        .entries
        .iter()
        .position(|e| e.name == name)
        .map(|i| DataWorkload(i as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_selectors_convert_and_compare() {
        let sel: WorkloadSel = Workload::AlexNet.into();
        assert_eq!(sel, Workload::AlexNet);
        assert_ne!(sel, Workload::LeNet);
        assert_eq!(sel.name(), "AlexNet");
        assert_eq!(sel.zoo(), Some(Workload::AlexNet));
        assert_eq!(sel.to_string(), "AlexNet");
    }

    #[test]
    fn zoo_salt_tags_are_the_frozen_discriminants() {
        for w in Workload::ALL {
            assert_eq!(WorkloadSel::Zoo(w).salt_tag(), w as u64);
        }
        // Data tags live in a disjoint range.
        assert_eq!(WorkloadSel::Data(DataWorkload(0)).salt_tag(), 0x20);
        assert_eq!(WorkloadSel::Data(DataWorkload(3)).salt_tag(), 0x23);
    }

    #[test]
    fn builder_definition_by_default() {
        let def = WorkloadSel::Zoo(Workload::LeNet).definition();
        assert!(matches!(def, Definition::Builder(_)));
        assert_eq!(def.name(), "LeNet");
    }

    #[test]
    fn load_dir_tolerates_missing_directory() {
        let loaded = load_dir(Path::new("/nonexistent/voltascope-workloads")).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn from_name_resolves_zoo_aliases() {
        assert_eq!(
            WorkloadSel::from_name("resnet-50"),
            Some(WorkloadSel::Zoo(Workload::ResNet))
        );
        assert_eq!(WorkloadSel::from_name("definitely-not-a-workload"), None);
    }

    #[test]
    fn checked_in_workload_files_register() {
        // The repository ships the six zoo files plus the transformer;
        // registry order is filename-sorted.
        let names: Vec<&str> = data_workloads().iter().map(|d| d.name()).collect();
        assert!(names.contains(&"LeNet"), "registry: {names:?}");
        assert!(names.contains(&"GPT2-Small"), "registry: {names:?}");
        let gpt = find_data("GPT2-Small").unwrap();
        assert!(gpt.spec().pipeline_stages > 1);
        assert!(gpt.path().ends_with("transformer_pp.workload"));
        // Data definitions resolve without a Rust model.
        let def = WorkloadSel::Data(gpt).definition();
        assert!(def.model().is_none());
        assert!(def.lowered(16).is_ok());
    }
}
