//! # voltascope — reproduction harness for *Profiling DNN Workloads on
//! a Volta-based DGX-1 System* (IISWC 2018)
//!
//! This crate is the top of the workspace: it composes the simulated
//! DGX-1 ([`calibration`]), the five-workload model zoo, the two
//! communication backends, and the profiling surface into one
//! [`Harness`] with a function per paper table/figure under
//! [`experiments`]:
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Table I (networks) | [`experiments::structure::table1`] |
//! | Fig. 1 (timeline)  | [`experiments::structure::fig1_timeline`] |
//! | Fig. 2 (topology)  | [`experiments::structure::fig2_topology`] |
//! | Fig. 3 (training time) | [`experiments::fig3::grid`] |
//! | Table II (NCCL overhead) | [`experiments::table2::rows`] |
//! | Fig. 4 (FP+BP vs WU) | [`experiments::fig4::grid`] |
//! | Table III (sync share) | [`experiments::table3::rows`] |
//! | Table IV (memory) | [`experiments::memory::table4`] |
//! | §V-D (max batch) | [`experiments::memory::max_batch`] |
//! | Fig. 5 (weak scaling) | [`experiments::fig5::grid`] |
//! | Ablations (DESIGN.md §5) | [`experiments::ablation`] |
//!
//! # Example
//!
//! ```
//! use voltascope::{experiments::structure, Harness};
//! use voltascope_dnn::zoo::Workload;
//!
//! // Regenerate Table I.
//! let stats = structure::table1(&Workload::ALL);
//! let table = structure::render_table1(&stats);
//! println!("{}", table.render());
//! assert_eq!(stats.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod experiments;
pub mod grid;
mod harness;
pub mod service;
pub mod workloads;

pub use harness::{Harness, Measurement};
pub use workloads::{DataWorkload, WorkloadSel};

// Compile-time guarantee for the parallel experiment grid: the whole
// harness crosses sweep worker threads by shared reference.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Harness>();
    assert_send_sync::<Measurement>();
    assert_send_sync::<grid::Cell>();
    assert_send_sync::<grid::GridSpec>();
    // The sweep service is shared by reference across request threads.
    assert_send_sync::<service::GridService>();
};
