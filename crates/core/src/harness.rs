//! The experiment harness: configured system + measurement protocol.

use voltascope_comm::CommMethod;
use voltascope_dnn::{zoo::Workload, Model};
use voltascope_sim::{mean_stddev, Jitter};
use voltascope_train::{
    simulate_epoch, simulate_epoch_dynamic_lowered, simulate_epoch_lowered, DatasetSpec,
    EpochReport, MemoryModel, MidEpochFault, ScalingMode, SystemModel, TrainConfig,
};
use voltascope_workload::Definition;

use crate::calibration;

/// A measurement: mean and standard deviation over the repetitions of
/// the paper's protocol (5 runs per configuration, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean over repetitions, in seconds.
    pub mean_s: f64,
    /// Sample standard deviation, in seconds.
    pub stddev_s: f64,
}

/// The configured experiment harness: the calibrated DGX-1 plus the
/// paper's measurement protocol.
///
/// # Example
///
/// ```
/// use voltascope::Harness;
/// use voltascope_comm::CommMethod;
/// use voltascope_dnn::zoo::Workload;
///
/// let harness = Harness::paper();
/// let m = harness.training_time(Workload::LeNet, 64, 4, CommMethod::P2p,
///                               voltascope_train::ScalingMode::Strong);
/// assert!(m.mean_s > 0.0);
/// assert!(m.stddev_s < m.mean_s);
/// ```
#[derive(Debug, Clone)]
pub struct Harness {
    /// The simulated platform.
    pub sys: SystemModel,
    /// The memory model for Table IV.
    pub memory: MemoryModel,
    /// Repetitions per configuration.
    pub reps: u32,
    /// Relative jitter between repetitions.
    pub jitter_sigma: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl Harness {
    /// The paper's calibrated protocol (see [`crate::calibration`]).
    pub fn paper() -> Self {
        Harness {
            sys: calibration::dgx1_system(),
            memory: calibration::memory_model(),
            reps: calibration::REPETITIONS,
            jitter_sigma: calibration::JITTER_SIGMA,
            seed: calibration::SEED,
        }
    }

    /// Simulates one epoch and returns the detailed report (no jitter).
    pub fn epoch(
        &self,
        model: &Model,
        batch: usize,
        gpus: usize,
        comm: CommMethod,
        scaling: ScalingMode,
    ) -> EpochReport {
        let cfg = TrainConfig {
            batch_per_gpu: batch,
            gpu_count: gpus,
            comm,
            scaling,
            dataset: DatasetSpec::imagenet_256k(),
            bucket_fusion_bytes: 0,
        };
        simulate_epoch(&self.sys, model, &cfg)
    }

    /// Like [`Harness::epoch`] but driven by a workload [`Definition`]:
    /// builder-backed definitions lower from the Rust model (identical
    /// to [`Harness::epoch`] by construction), data-backed ones from
    /// the parsed `.workload` spec.
    ///
    /// # Panics
    ///
    /// Panics with the lowering error's message when the definition
    /// fails validation (empty workload, zero batch, ...), matching
    /// [`simulate_epoch`]'s behaviour for invalid models.
    pub fn epoch_def(
        &self,
        def: &Definition,
        batch: usize,
        gpus: usize,
        comm: CommMethod,
        scaling: ScalingMode,
    ) -> EpochReport {
        let cfg = TrainConfig {
            batch_per_gpu: batch,
            gpu_count: gpus,
            comm,
            scaling,
            dataset: DatasetSpec::imagenet_256k(),
            bucket_fusion_bytes: 0,
        };
        let lowered = def.lowered(batch).unwrap_or_else(|e| panic!("{e}"));
        simulate_epoch_lowered(&self.sys, &lowered, &cfg)
    }

    /// Like [`Harness::epoch_def`] but with `fault` striking partway
    /// through the epoch
    /// ([`voltascope_train::simulate_epoch_dynamic_lowered`]). The
    /// harness's system must be the *healthy* platform: the fault is
    /// lowered to dynamic engine events mid-epoch rather than rewiring
    /// the topology before lowering.
    ///
    /// The steady-state columns of the returned report (`iter_time`,
    /// `iter_trace`, utilisation, ...) describe the **post-fault**
    /// regime — the pace the epoch settles into once NCCL has
    /// renegotiated — while `epoch_time` is the piecewise composition
    /// (healthy head + transition iteration + degraded tail).
    ///
    /// # Panics
    ///
    /// As [`Harness::epoch_def`], plus the fault-spec validation of
    /// `Topology::apply`.
    pub fn epoch_def_dynamic(
        &self,
        def: &Definition,
        batch: usize,
        gpus: usize,
        comm: CommMethod,
        scaling: ScalingMode,
        fault: &MidEpochFault,
    ) -> EpochReport {
        let cfg = TrainConfig {
            batch_per_gpu: batch,
            gpu_count: gpus,
            comm,
            scaling,
            dataset: DatasetSpec::imagenet_256k(),
            bucket_fusion_bytes: 0,
        };
        let lowered = def.lowered(batch).unwrap_or_else(|e| panic!("{e}"));
        let dynamic = simulate_epoch_dynamic_lowered(&self.sys, &lowered, &cfg, fault);
        EpochReport {
            epoch_time: dynamic.epoch_time,
            ..dynamic.degraded
        }
    }

    /// Simulates one epoch with full control over the configuration
    /// (used by the ablation sweeps, e.g. gradient-bucket fusion).
    pub fn epoch_cfg(&self, model: &Model, cfg: &TrainConfig) -> EpochReport {
        simulate_epoch(&self.sys, model, cfg)
    }

    /// Applies the repetition protocol to an epoch time: `reps`
    /// jittered samples, deterministic per configuration.
    pub fn measure(&self, epoch_seconds: f64, config_salt: u64) -> Measurement {
        let mut jitter = Jitter::new(self.seed ^ config_salt, self.jitter_sigma);
        let samples: Vec<f64> = (0..self.reps)
            .map(|_| jitter.perturb(epoch_seconds))
            .collect();
        let (mean_s, stddev_s) = mean_stddev(&samples);
        Measurement { mean_s, stddev_s }
    }

    /// End-to-end: simulate + repetition protocol for one cell of the
    /// Fig. 3 grid.
    pub fn training_time(
        &self,
        workload: Workload,
        batch: usize,
        gpus: usize,
        comm: CommMethod,
        scaling: ScalingMode,
    ) -> Measurement {
        let model = workload.build();
        self.training_time_of(&model, workload, batch, gpus, comm, scaling)
    }

    /// Like [`Harness::training_time`] but reusing a pre-built model
    /// (grids over many cells should build each model once).
    pub fn training_time_of(
        &self,
        model: &Model,
        workload: Workload,
        batch: usize,
        gpus: usize,
        comm: CommMethod,
        scaling: ScalingMode,
    ) -> Measurement {
        let report = self.epoch(model, batch, gpus, comm, scaling);
        let salt = ((workload as u64) << 40)
            | ((batch as u64) << 24)
            | ((gpus as u64) << 16)
            | (comm == CommMethod::Nccl) as u64;
        self.measure(report.epoch_time.as_secs_f64(), salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_protocol_is_deterministic() {
        let h = Harness::paper();
        let a = h.measure(10.0, 42);
        let b = h.measure(10.0, 42);
        assert_eq!(a, b);
        let c = h.measure(10.0, 43);
        assert_ne!(a, c, "different configs must jitter differently");
    }

    #[test]
    fn jitter_is_small_relative_to_mean() {
        let h = Harness::paper();
        let m = h.measure(100.0, 7);
        assert!((m.mean_s - 100.0).abs() < 5.0);
        assert!(m.stddev_s < 6.0);
    }

    #[test]
    fn harness_runs_an_epoch() {
        let h = Harness::paper();
        let model = Workload::LeNet.build();
        let r = h.epoch(&model, 16, 2, CommMethod::P2p, ScalingMode::Strong);
        assert!(r.iterations > 0);
        assert!(!r.epoch_time.is_zero());
    }
}
