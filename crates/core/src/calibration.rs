//! Calibration constants pinning the simulator to the paper's platform.
//!
//! Every number here is tied either to a public hardware datum or to a
//! quantitative statement in the paper; DESIGN.md §4 explains the
//! policy (match *shapes*, not absolute seconds).

use voltascope_comm::collective::NcclCosts;
use voltascope_comm::{BandwidthEfficiency, TuningSpace};
use voltascope_gpu::{ApiCostModel, GpuSpec, KernelCostModel};
use voltascope_sim::SimSpan;
use voltascope_train::{MemoryModel, SystemModel};

/// Number of repetitions per configuration (paper Fig. 3: "mean
/// training time of 5 repetitions").
pub const REPETITIONS: u32 = 5;

/// Relative standard deviation of run-to-run jitter. The paper's
/// stddev whiskers are small relative to the bars; ~1.5% reproduces
/// that visual scale.
pub const JITTER_SIGMA: f64 = 0.015;

/// Base seed for the deterministic jitter streams.
pub const SEED: u64 = 0x155C_2018;

/// The calibrated DGX-1 system model.
///
/// * GPU: Tesla V100-SXM2-16GB (80 SMs, 15.7 TF FP32, 125 TF tensor,
///   16 GB HBM2 at 900 GB/s) — §IV-A.
/// * NVLink 25 GB/s per lane per direction, aggregating to 50 GB/s on
///   double connections — §IV-A.
/// * Kernel efficiency curve: ceiling 0.055 of the tensor peak (~6.9
///   TFLOP/s effective) with a 50 MFLOP half-saturation knee — matching
///   MXNet-18.04-era V100 training throughputs at per-GPU batches of
///   16-64, and leaving LeNet launch-bound (the paper reports 18.3%
///   compute utilisation for LeNet, §V-C) while Inception-v3's larger
///   kernels amortise, giving its near-linear FP+BP scaling.
/// * API costs: single-digit-microsecond launches, 25 us stream
///   synchronisation — Broadwell-era driver figures; Table III's
///   amortisation trend follows from their fixedness.
/// * Host dispatch: 130 us of serial scheduler work per GPU per
///   iteration (MXNet iterator + kvstore bookkeeping), fitted to the
///   paper's LeNet strong-scaling speedups of 1.62/2.37/3.36x at
///   2/4/8 GPUs (§V-A).
/// * NCCL: 20 us per-bucket kernel overhead + 120 ms per-epoch
///   communicator setup + 300 us/GPU grouped-call marshalling per
///   iteration (multi-GPU only) + 4 us per-ring-step protocol cost at
///   85% sustained link bandwidth, calibrated against the paper's
///   21.8% LeNet batch-16 single-GPU overhead (§V-B), the Table II
///   trends, and the P2P-vs-NCCL crossovers of Fig. 3.
/// * NCCL tuning space: the paper's NCCL 2.0/2.1 stack ran
///   single-channel Simple-protocol rings only — LL128 and the
///   ring/tree auto-selection arrived with NCCL 2.4, after the study —
///   and the fitted constants above (step cost, 85% efficiency)
///   subsume whatever per-size protocol behaviour that stack had. The
///   default space is therefore the `{ring} x {Simple} x {1 channel}`
///   singleton ([`TuningSpace::paper`]); `VOLTASCOPE_NCCL_PROTO`
///   opens the modern LL / LL128 / Simple x ring/tree x channel space
///   (DESIGN.md §5.2, and the `protocol_sweep` golden for the
///   crossover structure on healthy and degraded fabrics).
/// * P2P: 70 us of kvstore orchestration per per-key transfer on the
///   source GPU's host thread — the per-key tax that makes the deep
///   many-bucket networks favour NCCL at 4-8 GPUs (§V-A).
pub fn dgx1_system() -> SystemModel {
    let gpu = GpuSpec::tesla_v100();
    let kernels = KernelCostModel {
        max_efficiency: 0.055,
        knee_flops: 5.0e7,
        ..KernelCostModel::new(&gpu)
    };
    let api = ApiCostModel {
        launch_kernel: SimSpan::from_micros(7),
        memcpy_async: SimSpan::from_micros(9),
        stream_synchronize: SimSpan::from_micros(25),
        event_record: SimSpan::from_micros(2),
        malloc: SimSpan::from_micros(80),
    };
    let nccl = NcclCosts {
        kernel_overhead: SimSpan::from_micros(20),
        epoch_setup: SimSpan::from_millis(120),
        step_overhead: SimSpan::from_micros(4),
        bandwidth_efficiency: BandwidthEfficiency::new(0.85)
            .unwrap_or_else(|e| panic!("calibration constant rejected: {e}")),
        group_call_overhead: SimSpan::from_micros(300),
        tuning: TuningSpace::from_env(),
        chunking: false,
    };
    SystemModel {
        topo: voltascope_topo::dgx1_v100(),
        gpu,
        kernels,
        api,
        nccl,
        host_dispatch: SimSpan::from_micros(130),
        p2p_issue: SimSpan::from_micros(70),
        bp_wu_overlap: false,
        gpu_slowdown: Default::default(),
        compute_streams: 1,
    }
}

/// The calibrated memory model (Table IV): activation multiplier 1.3
/// makes Inception-v3 at batch 64 land at ~12 GB on GPU0 (paper: 11
/// GB) and reproduces the batch caps of §V-D for ResNet/Inception-v3.
pub fn memory_model() -> MemoryModel {
    MemoryModel::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_matches_paper_platform() {
        let sys = dgx1_system();
        assert_eq!(sys.topo.gpu_count(), 8);
        assert_eq!(sys.gpu.sm_count, 80);
        assert_eq!(sys.gpu.memory_bytes, 16 << 30);
    }

    #[test]
    fn lenet_is_launch_bound_at_paper_utilization() {
        // §V-C: LeNet achieves ~18.3% compute utilisation; our LeNet
        // kernels must sit far below the efficiency ceiling.
        let sys = dgx1_system();
        let model = voltascope_dnn::zoo::lenet();
        let kernels = model.kernel_profile(16);
        let biggest = kernels.iter().map(|k| k.flops).max().unwrap();
        let util = sys.kernels.achieved_utilization(biggest as f64, true);
        assert!(util < 0.05, "LeNet utilisation too high: {util}");
    }

    #[test]
    fn inception_kernels_amortise_far_better_than_lenet() {
        let sys = dgx1_system();
        let inception = voltascope_dnn::zoo::inception_v3();
        let lenet = voltascope_dnn::zoo::lenet();
        let biggest = |m: &voltascope_dnn::Model| {
            m.kernel_profile(16).iter().map(|k| k.flops).max().unwrap() as f64
        };
        let u_inc = sys.kernels.achieved_utilization(biggest(&inception), true);
        let u_len = sys.kernels.achieved_utilization(biggest(&lenet), true);
        // Inception-v3's kernels sit at the efficiency ceiling; LeNet's
        // largest kernel reaches less than half of it.
        assert!(
            u_inc > 0.9 * sys.kernels.max_efficiency,
            "inception {u_inc}"
        );
        assert!(u_len < 0.5 * sys.kernels.max_efficiency, "lenet {u_len}");
    }
}
