//! # Cached, single-flight sweep service over the grid engine
//!
//! [`GridService`] is a concurrent request front end for the grid
//! engine: callers submit sweeps (a [`GridSpec`] or an explicit
//! [`Cell`] list) and the service answers every cell it has already
//! computed from a shared cache, coalesces cells another request is
//! currently computing (single-flight), and schedules only the
//! genuinely missing cells onto its [`Executor`] worker pool.
//!
//! The cached value per cell is the [`EpochReport`] — the raw,
//! jitter-free simulation output every portable experiment derives its
//! rows from. Post-processing (the repetition protocol's jittered
//! [`crate::Measurement`], FP+BP/WU splits, sync shares, idle scans)
//! is cheap and deterministic, so experiment modules re-derive their
//! tables from cached reports and stay byte-identical to the direct
//! [`crate::grid::GridRunner`] path.
//!
//! ## Cache keying
//!
//! The cache key is the full [`Cell`] — including the platform variant
//! and fault scenario — so a PCIe-only AlexNet epoch can never answer
//! a DGX-1 request for the same (workload, comm, batch, gpus, scaling)
//! point. Keys are never evicted: the whole paper grid is a few
//! thousand cells of a few-KB report each, far below any meaningful
//! memory bound, and eviction would reintroduce recomputation
//! nondeterminism for long request streams.
//!
//! ## Single-flight
//!
//! A cell is claimed (marked in-flight) under the state lock before
//! computation starts, so overlapping requests for the same cell
//! compute it exactly once: the first request computes, later requests
//! park on a condition variable and are woken when the report is
//! published. Cell computations are pure simulations and do not panic
//! for valid cells; a panicking computation aborts its request and is
//! not unwound into a cache retraction.
//!
//! ## Example
//!
//! ```
//! use voltascope::grid::{Executor, GridSpec};
//! use voltascope::service::GridService;
//! use voltascope::Harness;
//! use voltascope_dnn::zoo::Workload;
//!
//! let service = GridService::with_executor(Harness::paper(), Executor::Serial);
//! let spec = GridSpec::paper().workloads([Workload::LeNet]).batches([16]);
//! let first = service.sweep(&spec);
//! let again = service.sweep(&spec);
//! assert_eq!(first.len(), again.len());
//! // The second sweep was answered entirely from cache.
//! assert_eq!(service.stats().computed, first.len() as u64);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use voltascope_dnn::zoo::Workload;
use voltascope_dnn::Model;
use voltascope_train::EpochReport;

use crate::grid::{harness_for, Cell, Executor, FaultScenario, GridOut, GridSpec, Platform};
use crate::Harness;

/// One cache entry: either being computed by some request right now,
/// or done and shareable.
#[derive(Debug)]
enum Slot {
    InFlight,
    Done(Arc<EpochReport>),
}

/// Lock-guarded service state: the report cache plus the lazily grown
/// model/harness pools (the same sharing the [`crate::grid::GridRunner`]
/// does per grid, but across the service's whole lifetime).
#[derive(Debug, Default)]
struct State {
    cache: HashMap<Cell, Slot>,
    models: HashMap<Workload, Arc<Model>>,
    harnesses: HashMap<(Platform, FaultScenario), Arc<Harness>>,
}

/// Counters describing how a [`GridService`] answered its requests so
/// far. Monotone; snapshot via [`GridService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests served ([`GridService::run_cells`] / [`GridService::sweep`] calls).
    pub requests: u64,
    /// Total cells across all requests (duplicates counted).
    pub cells: u64,
    /// Cells answered from a completed cache entry.
    pub hits: u64,
    /// Cells coalesced onto a computation already in flight (including
    /// duplicate cells within a single request).
    pub coalesced: u64,
    /// Cells actually computed (each unique cell at most once, ever).
    pub computed: u64,
}

impl ServiceStats {
    /// Fraction of requested cells answered without new computation
    /// (cache hits plus coalesced), in `[0, 1]`; zero for no traffic.
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.cells as f64
        }
    }
}

/// A concurrent sweep front end: deduplicating, caching, single-flight.
/// See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct GridService {
    base: Harness,
    exec: Executor,
    state: Mutex<State>,
    ready: Condvar,
    requests: AtomicU64,
    cells: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    computed: AtomicU64,
}

impl GridService {
    /// A service over `base`, executing missing cells under the
    /// environment-selected executor ([`Executor::from_env`], honouring
    /// `VOLTASCOPE_THREADS`).
    pub fn new(base: Harness) -> Self {
        Self::with_executor(base, Executor::from_env())
    }

    /// A service with an explicit executor for missing cells.
    pub fn with_executor(base: Harness, exec: Executor) -> Self {
        GridService {
            base,
            exec,
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            requests: AtomicU64::new(0),
            cells: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            computed: AtomicU64::new(0),
        }
    }

    /// The base harness requests are simulated against. Its
    /// measurement-protocol fields apply to every platform/fault
    /// variant (see [`harness_for`]), so renderers post-process cached
    /// reports with this harness.
    pub fn base(&self) -> &Harness {
        &self.base
    }

    /// The executor missing cells are scheduled onto.
    pub fn executor(&self) -> Executor {
        self.exec
    }

    /// Runs a full declarative sweep through the cache, returning an
    /// indexed [`GridOut`] in the spec's canonical enumeration order —
    /// the same shape [`crate::grid::run_grid`] produces, so renderers
    /// are agnostic about which path computed their cells.
    pub fn sweep(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        let cells = spec.cells();
        let reports = self.run_cells(&cells);
        GridOut::from_parts(cells, reports)
    }

    /// Answers one request for an explicit cell list: cache hits are
    /// returned as-is, in-flight cells are awaited, and missing cells
    /// are claimed and computed on this service's executor. Returns one
    /// report per input cell, in input order (duplicates allowed).
    pub fn run_cells(&self, cells: &[Cell]) -> Vec<Arc<EpochReport>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.cells.fetch_add(cells.len() as u64, Ordering::Relaxed);

        // Claim phase: classify every cell under one lock acquisition.
        // Missing cells are marked in flight *before* the lock drops,
        // so no concurrent request can double-compute them.
        let mine: Vec<(Cell, Arc<Model>, Arc<Harness>)> = {
            let mut state = self.state.lock().expect("service state poisoned");
            let mut mine = Vec::new();
            for &cell in cells {
                match state.cache.get(&cell) {
                    Some(Slot::Done(_)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Slot::InFlight) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        state.cache.insert(cell, Slot::InFlight);
                        let model = state
                            .models
                            .entry(cell.workload)
                            .or_insert_with(|| Arc::new(cell.workload.build()))
                            .clone();
                        let harness = state
                            .harnesses
                            .entry((cell.platform, cell.fault))
                            .or_insert_with(|| {
                                Arc::new(harness_for(&self.base, cell.platform, cell.fault))
                            })
                            .clone();
                        mine.push((cell, model, harness));
                    }
                }
            }
            mine
        };

        // Compute phase: only the cells this request claimed, on the
        // worker pool. Each report is published (and waiters notified)
        // as soon as it exists, not at the end of the batch, so
        // overlapping requests stream results out of this one.
        self.exec.run(mine.len(), |i| {
            let (cell, model, harness) = &mine[i];
            let report =
                Arc::new(harness.epoch(model, cell.batch, cell.gpus, cell.comm, cell.scaling));
            self.computed.fetch_add(1, Ordering::Relaxed);
            let mut state = self.state.lock().expect("service state poisoned");
            state.cache.insert(*cell, Slot::Done(report.clone()));
            drop(state);
            self.ready.notify_all();
        });

        // Assemble phase: by now every claimed cell is done; cells
        // claimed by other requests may still be in flight, so park on
        // the condition variable until they publish.
        let mut state = self.state.lock().expect("service state poisoned");
        let mut reports = Vec::with_capacity(cells.len());
        for cell in cells {
            let report = loop {
                match state.cache.get(cell) {
                    Some(Slot::Done(report)) => break report.clone(),
                    _ => {
                        state = self
                            .ready
                            .wait(state)
                            .expect("service state poisoned while waiting");
                    }
                }
            };
            reports.push(report);
        }
        reports
    }

    /// Snapshot of the request counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct cells resident in the cache (completed or in
    /// flight).
    pub fn cached_cells(&self) -> usize {
        self.state
            .lock()
            .expect("service state poisoned")
            .cache
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_comm::CommMethod;
    use voltascope_train::ScalingMode;

    fn lenet_cell(batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: Workload::LeNet,
            comm: CommMethod::P2p,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2)];
        let first = service.run_cells(&cells);
        let second = service.run_cells(&cells);
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(second.iter()) {
            // Same Arc, not merely equal values.
            assert!(Arc::ptr_eq(a, b));
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(service.cached_cells(), 2);
    }

    #[test]
    fn duplicate_cells_within_a_request_compute_once() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cell = lenet_cell(16, 1);
        let reports = service.run_cells(&[cell, cell, cell]);
        assert_eq!(reports.len(), 3);
        assert!(Arc::ptr_eq(&reports[0], &reports[1]));
        assert!(Arc::ptr_eq(&reports[1], &reports[2]));
        let stats = service.stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.coalesced, 2);
    }

    #[test]
    fn overlapping_sweeps_only_compute_the_missing_cells() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let small = GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::P2p])
            .batches([16])
            .gpu_counts([1, 2]);
        let bigger = small.clone().gpu_counts([1, 2, 4]);
        service.sweep(&small);
        let out = service.sweep(&bigger);
        assert_eq!(out.len(), 3);
        let stats = service.stats();
        assert_eq!(stats.computed, 3, "only the 4-GPU cell was new");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn empty_requests_are_answered_without_computation() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        assert!(service.run_cells(&[]).is_empty());
        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.cells, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn sweep_preserves_canonical_enumeration_order() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let spec = GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::P2p, CommMethod::Nccl])
            .batches([16])
            .gpu_counts([2]);
        let out = service.sweep(&spec);
        assert_eq!(out.cells(), spec.cells().as_slice());
    }
}
