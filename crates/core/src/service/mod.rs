//! # Cached, single-flight sweep service over the grid engine
//!
//! [`GridService`] is a concurrent request front end for the grid
//! engine: callers submit sweeps (a [`GridSpec`] or an explicit
//! [`Cell`] list) and the service answers every cell it has already
//! computed from a shared cache, coalesces cells another request is
//! currently computing (single-flight), and schedules only the
//! genuinely missing cells onto its [`Executor`] worker pool.
//!
//! The cached value per cell is the [`EpochReport`] — the raw,
//! jitter-free simulation output every portable experiment derives its
//! rows from. Post-processing (the repetition protocol's jittered
//! [`crate::Measurement`], FP+BP/WU splits, sync shares, idle scans)
//! is cheap and deterministic, so experiment modules re-derive their
//! tables from cached reports and stay byte-identical to the direct
//! [`crate::grid::GridRunner`] path.
//!
//! ## Cache keying
//!
//! The cache key is the full [`Cell`] — including the platform variant
//! and fault scenario — so a PCIe-only AlexNet epoch can never answer
//! a DGX-1 request for the same (workload, comm, batch, gpus, scaling)
//! point. Keys are never evicted: the whole paper grid is a few
//! thousand cells of a few-KB report each, far below any meaningful
//! memory bound, and eviction would reintroduce recomputation
//! nondeterminism for long request streams.
//!
//! ## Single-flight
//!
//! A cell is claimed (marked in-flight) under the state lock before
//! computation starts, so overlapping requests for the same cell
//! compute it exactly once: the first request computes, later requests
//! park on a condition variable and are woken when the report is
//! published.
//!
//! ## Panic recovery
//!
//! Cell computations are pure simulations and do not panic for valid
//! cells, but an invalid cell (e.g. a GPU count beyond the topology)
//! panics inside the simulator. Every claim is therefore protected by
//! an unwind guard: if the computing request panics before publishing,
//! the guard reverts all of its unfinished in-flight claims to
//! *absent* and wakes every waiter. A request that was parked on such
//! a claim adopts the cell and computes it itself (and, for a
//! genuinely poisonous cell, observes the same panic rather than a
//! deadlock). The state lock is never held across a computation, and
//! lock acquisition recovers from mutex poisoning — the cache's
//! invariants are maintained by the guards, not by the panicking
//! section — so one failed request can never wedge the service.
//!
//! ## Persistence
//!
//! The cache can be snapshotted to disk and reloaded across processes:
//! [`GridService::save`] writes every completed cell through the
//! versioned, fingerprinted format of [`persist`], and
//! [`GridService::with_snapshot`] warm-starts a service from such a
//! file (falling back to an empty cache when the file is missing,
//! stale, or corrupt). The regeneration binaries wire this to the
//! `VOLTASCOPE_CACHE` environment variable.
//!
//! ### Lazy trace decode
//!
//! Warm starts load snapshots through
//! [`persist::load_entries_lazy`]: cells and scalar fields are parsed
//! eagerly, but each entry's trace block stays *encoded* — a
//! [`persist::LazyTrace`] window into the snapshot image — until a
//! trace-consuming request actually touches that cell. Ordinary
//! (table-only) requests serve lazy entries as hits with empty traces
//! and never decode a single event; the first traced request decodes
//! the block under the state lock and upgrades the entry to a full
//! `Done` in place (counted by [`GridService::trace_decodes`]).
//! Re-saving an untouched lazy entry copies its encoded block
//! verbatim, so a warm load-then-save round-trip is byte-identical
//! without decoding anything.
//!
//! ### Slim snapshots
//!
//! [`GridService::save_with`] can omit the iteration traces (the bulk
//! of snapshot size) per the `VOLTASCOPE_CACHE_SLIM` opt-out. Entries
//! loaded from such a snapshot are held *slim-marked* in the cache:
//! ordinary requests serve them as hits (every scalar field
//! round-trips exactly), but trace-consuming requests issued through
//! [`GridService::sweep_traced`] / [`GridService::run_cells_traced`]
//! treat a slim entry as missing and recompute the cell, so an idle
//! scan can never silently render from an empty trace. Recomputation
//! publishes the full report, upgrading the entry in place.
//!
//! ## Async front end
//!
//! [`sched`] layers a non-blocking, prioritised scheduler over this
//! service: requests become tickets on a bounded queue drained by a
//! worker pool, with strict-priority bands, deficit-round-robin
//! fairness across clients, cancellation, deadlines and backpressure.
//! Reports flow through the same cache, so the two paths are
//! byte-identical.
//!
//! ## Example
//!
//! ```
//! use voltascope::grid::{Executor, GridSpec};
//! use voltascope::service::GridService;
//! use voltascope::Harness;
//! use voltascope_dnn::zoo::Workload;
//!
//! let service = GridService::with_executor(Harness::paper(), Executor::Serial);
//! let spec = GridSpec::paper().workloads([Workload::LeNet]).batches([16]);
//! let first = service.sweep(&spec);
//! let again = service.sweep(&spec);
//! assert_eq!(first.len(), again.len());
//! // The second sweep was answered entirely from cache.
//! assert_eq!(service.stats().computed, first.len() as u64);
//! ```

pub mod persist;
pub mod sched;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use voltascope_train::EpochReport;
use voltascope_workload::Definition;

use crate::grid::{self, harness_for, Cell, Executor, FaultScenario, GridOut, GridSpec, Platform};
use crate::workloads::WorkloadSel;
use crate::Harness;

use persist::PersistError;

/// One cache entry: either being computed by some request right now,
/// or done and shareable. A claim whose computation panics is removed
/// entirely (reverted to absent) by its unwind guard. `DoneSlim`
/// entries were loaded from a slim snapshot: their scalar fields are
/// exact but the iteration trace is empty, so trace-consuming requests
/// treat them as missing and recompute (see the module docs).
/// `DoneLazy` entries were loaded from a full snapshot but their trace
/// block is still encoded: scalar requests serve them as-is, and the
/// first traced request decodes the block and upgrades the slot to
/// `Done` in place.
#[derive(Debug)]
enum Slot {
    InFlight,
    Done(Arc<EpochReport>),
    DoneSlim(Arc<EpochReport>),
    DoneLazy {
        report: Arc<EpochReport>,
        trace: persist::LazyTrace,
    },
}

/// How [`GridService::cell_report`] answered one cell, for the
/// scheduler's duplicate accounting: duplicates of a cell inherit the
/// first occurrence's class (`Computed` duplicates are intra-request
/// repeats, `Hit`/`Coalesced` duplicates are more of the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellClass {
    /// Served from a completed cache entry.
    Hit,
    /// Waited on a computation some other thread had in flight.
    Coalesced,
    /// Claimed and computed by this call.
    Computed,
}

/// Lock-guarded service state: the report cache plus the lazily grown
/// definition/harness pools (the same sharing the
/// [`crate::grid::GridRunner`] does per grid, but across the service's
/// whole lifetime).
#[derive(Debug, Default)]
struct State {
    cache: HashMap<Cell, Slot>,
    defs: HashMap<WorkloadSel, Arc<Definition>>,
    harnesses: HashMap<(Platform, FaultScenario), Arc<Harness>>,
}

/// Counters describing how a [`GridService`] answered its requests so
/// far. Monotone; snapshot via [`GridService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests served ([`GridService::run_cells`] / [`GridService::sweep`] calls).
    pub requests: u64,
    /// Total cells across all requests (duplicates counted).
    pub cells: u64,
    /// Cells answered from a completed cache entry (including entries
    /// preloaded from a snapshot).
    pub hits: u64,
    /// Cells coalesced onto a computation another request already had
    /// in flight.
    pub coalesced: u64,
    /// Intra-request duplicates of a cell the *same* request claimed
    /// moments earlier. These enjoy no cache benefit — the request
    /// pays for the computation itself — so they are tracked apart
    /// from hits/coalesced and excluded from [`ServiceStats::hit_rate`].
    pub repeats: u64,
    /// Cells actually computed (each unique cell at most once, unless
    /// a panicked claim was reverted and the cell later recomputed).
    pub computed: u64,
}

impl ServiceStats {
    /// Fraction of requested cells answered without new computation
    /// (cache hits plus cross-request coalescing), in `[0, 1]`; zero
    /// for no traffic. Intra-request repeats of a freshly claimed cell
    /// do not count — a cold request `[c, c]` reports a 0% hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.cells as f64
        }
    }
}

/// How [`GridService::with_snapshot`] started: warm from a loaded
/// snapshot, cold because none existed, or cold because the file was
/// rejected (stale or damaged).
#[derive(Debug)]
pub enum SnapshotStatus {
    /// The snapshot was valid; this many cells were preloaded.
    Loaded {
        /// Number of cache entries loaded from the file.
        cells: usize,
    },
    /// No snapshot file existed at the path.
    Cold,
    /// A file existed but was rejected; the service starts empty and
    /// recomputes (a later [`GridService::save`] repairs the file).
    Rejected(PersistError),
}

impl fmt::Display for SnapshotStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotStatus::Loaded { cells } => write!(f, "warm start: loaded {cells} cells"),
            SnapshotStatus::Cold => write!(f, "cold start: no snapshot"),
            SnapshotStatus::Rejected(e) => write!(f, "cold start: snapshot rejected ({e})"),
        }
    }
}

/// A concurrent sweep front end: deduplicating, caching, single-flight.
/// See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct GridService {
    base: Harness,
    exec: Executor,
    state: Mutex<State>,
    ready: Condvar,
    requests: AtomicU64,
    cells: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    repeats: AtomicU64,
    computed: AtomicU64,
    trace_decodes: AtomicU64,
}

/// Unwind guard over a request's claimed cells: on drop, any cell the
/// request claimed but never published is reverted to absent and every
/// waiter is woken, so a panicking computation cannot leave permanent
/// in-flight claims behind. On the normal path all claimed cells are
/// `Done` by drop time and the guard is a cheap no-op sweep.
///
/// The guard takes the state lock in `drop`, so it must never be
/// dropped while the caller holds that lock.
struct ClaimGuard<'a> {
    service: &'a GridService,
    cells: Vec<Cell>,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.cells.is_empty() {
            return;
        }
        let mut reverted = false;
        {
            let mut state = self.service.lock_state();
            for cell in &self.cells {
                if matches!(state.cache.get(cell), Some(Slot::InFlight)) {
                    state.cache.remove(cell);
                    reverted = true;
                }
            }
        }
        if reverted {
            // Waiters re-inspect the slot: absent means "adopt and
            // compute yourself" (see the assemble loop).
            self.service.ready.notify_all();
        }
    }
}

impl GridService {
    /// A service over `base`, executing missing cells under the
    /// environment-selected executor ([`Executor::from_env`], honouring
    /// `VOLTASCOPE_THREADS`).
    pub fn new(base: Harness) -> Self {
        Self::with_executor(base, Executor::from_env())
    }

    /// A service with an explicit executor for missing cells.
    pub fn with_executor(base: Harness, exec: Executor) -> Self {
        GridService {
            base,
            exec,
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            requests: AtomicU64::new(0),
            cells: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            repeats: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            trace_decodes: AtomicU64::new(0),
        }
    }

    /// A service warm-started from the snapshot file at `path`
    /// (load-or-empty): a valid snapshot written under the same
    /// harness calibration preloads the cache; a missing, stale, or
    /// corrupt file yields an empty cache with the reason in the
    /// returned [`SnapshotStatus`]. Preloaded cells are served as
    /// ordinary cache hits.
    pub fn with_snapshot(
        base: Harness,
        exec: Executor,
        path: impl AsRef<Path>,
    ) -> (Self, SnapshotStatus) {
        let fingerprint = persist::harness_fingerprint(&base);
        let service = Self::with_executor(base, exec);
        let status = match persist::load_entries_lazy(path.as_ref(), fingerprint) {
            Ok(entries) => {
                let cells = entries.len();
                let mut state = service.lock_state();
                for (cell, report, trace) in entries {
                    let slot = match trace {
                        persist::EntryTrace::Slim => Slot::DoneSlim(report),
                        persist::EntryTrace::Lazy(trace) => Slot::DoneLazy { report, trace },
                    };
                    state.cache.insert(cell, slot);
                }
                drop(state);
                SnapshotStatus::Loaded { cells }
            }
            Err(e) if e.is_missing_file() => SnapshotStatus::Cold,
            Err(e) => SnapshotStatus::Rejected(e),
        };
        (service, status)
    }

    /// Snapshots every completed cache entry to `path` (atomically:
    /// temp sibling + rename), keyed by this service's harness
    /// fingerprint, with full iteration traces. In-flight claims are
    /// skipped. Returns the number of cells written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<usize, PersistError> {
        self.save_with(path, false)
    }

    /// Snapshots the cache, optionally slim: when `slim` is true the
    /// iteration traces are omitted from every written entry (the
    /// `VOLTASCOPE_CACHE_SLIM` mode — see the module docs). Entries
    /// that were themselves loaded from a slim snapshot are always
    /// written slim, whatever `slim` says: their traces are empty
    /// placeholders, and persisting them as full entries would launder
    /// a slim entry into one that trace consumers trust.
    pub fn save_with(&self, path: impl AsRef<Path>, slim: bool) -> Result<usize, PersistError> {
        use persist::TraceOut;
        let entries: Vec<(Cell, Arc<EpochReport>, TraceOut)> = {
            let state = self.lock_state();
            state
                .cache
                .iter()
                .filter_map(|(cell, slot)| match slot {
                    Slot::Done(report) => {
                        let out = if slim {
                            TraceOut::Slim
                        } else {
                            TraceOut::Events
                        };
                        Some((*cell, report.clone(), out))
                    }
                    Slot::DoneSlim(report) => Some((*cell, report.clone(), TraceOut::Slim)),
                    // An undecoded lazy entry re-saves its encoded
                    // block verbatim: byte-identical to a fresh encode
                    // (the decoder only accepts canonical blocks) and
                    // free of any decode cost.
                    Slot::DoneLazy { report, trace } => {
                        let out = if slim {
                            TraceOut::Slim
                        } else {
                            TraceOut::Raw(trace.clone())
                        };
                        Some((*cell, report.clone(), out))
                    }
                    Slot::InFlight => None,
                })
                .collect()
        };
        persist::save_with_traces(
            path.as_ref(),
            persist::harness_fingerprint(&self.base),
            &entries,
        )?;
        Ok(entries.len())
    }

    /// The base harness requests are simulated against. Its
    /// measurement-protocol fields apply to every platform/fault
    /// variant (see [`harness_for`]), so renderers post-process cached
    /// reports with this harness.
    pub fn base(&self) -> &Harness {
        &self.base
    }

    /// The executor missing cells are scheduled onto.
    pub fn executor(&self) -> Executor {
        self.exec
    }

    /// Runs a full declarative sweep through the cache, returning an
    /// indexed [`GridOut`] in the spec's canonical enumeration order —
    /// the same shape [`crate::grid::run_grid`] produces, so renderers
    /// are agnostic about which path computed their cells.
    pub fn sweep(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        let cells = spec.cells();
        let reports = self.run_cells(&cells);
        GridOut::from_parts(cells, reports)
    }

    /// Like [`GridService::sweep`], for consumers that walk the
    /// iteration traces (idle scans, timeline renders): slim-marked
    /// cache entries are recomputed instead of served, so every
    /// returned report carries its full trace. On a service that never
    /// loaded a slim snapshot this is identical to `sweep`.
    pub fn sweep_traced(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        let cells = spec.cells();
        let reports = self.run_cells_traced(&cells, true);
        GridOut::from_parts(cells, reports)
    }

    /// Answers one request for an explicit cell list: cache hits are
    /// returned as-is, in-flight cells are awaited, and missing cells
    /// are claimed and computed on this service's executor. Returns one
    /// report per input cell, in input order (duplicates allowed).
    ///
    /// Slim-marked entries (loaded from a slim snapshot) are served as
    /// ordinary hits — their scalar fields are exact, only the
    /// iteration trace is empty. Trace consumers must use
    /// [`GridService::run_cells_traced`] instead.
    ///
    /// # Panics
    ///
    /// Panics if a claimed cell's simulation panics (e.g. an invalid
    /// GPU count); the claim is reverted first, so other requests are
    /// unaffected (see the module docs' panic-recovery section).
    pub fn run_cells(&self, cells: &[Cell]) -> Vec<Arc<EpochReport>> {
        self.run_cells_traced(cells, false)
    }

    /// [`GridService::run_cells`] with an explicit trace requirement:
    /// when `traced` is true, slim-marked entries count as missing and
    /// are reclaimed and recomputed (publishing the full report, which
    /// upgrades the cache entry in place).
    pub fn run_cells_traced(&self, cells: &[Cell], traced: bool) -> Vec<Arc<EpochReport>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.cells.fetch_add(cells.len() as u64, Ordering::Relaxed);

        // Claim phase: classify every cell under one lock acquisition.
        // Missing cells are marked in flight *before* the lock drops,
        // so no concurrent request can double-compute them. Duplicates
        // of a cell claimed earlier in this same request are neither
        // hits nor coalesced — the request pays for the computation —
        // so they are tracked as `repeats`.
        let mine: Vec<(Cell, Arc<Definition>, Arc<Harness>)> = {
            let mut state = self.lock_state();
            let mut mine = Vec::new();
            let mut claimed_here: HashSet<Cell> = HashSet::new();
            for &cell in cells {
                if claimed_here.contains(&cell) {
                    self.repeats.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // A traced request touching a lazy entry decodes its
                // block right here, under the same lock hold,
                // upgrading the slot to `Done`; a block that fails to
                // decode falls through and is reclaimed like a
                // missing cell.
                if traced
                    && matches!(state.cache.get(&cell), Some(Slot::DoneLazy { .. }))
                    && self.upgrade_lazy(&mut state, cell).is_some()
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                match state.cache.get(&cell) {
                    Some(Slot::Done(_)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Slot::DoneSlim(_) | Slot::DoneLazy { .. }) if !traced => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Slot::InFlight) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    // A slim (or undecodable lazy) entry cannot serve
                    // a traced request: reclaim it and recompute the
                    // full report.
                    Some(Slot::DoneSlim(_) | Slot::DoneLazy { .. }) | None => {
                        state.cache.insert(cell, Slot::InFlight);
                        claimed_here.insert(cell);
                        let (def, harness) = Self::pools(&mut state, &self.base, cell);
                        mine.push((cell, def, harness));
                    }
                }
            }
            mine
        };

        // Every claim is covered by the unwind guard from here on: a
        // panic anywhere below reverts the unpublished claims and
        // wakes waiters before the panic continues unwinding.
        let claims = ClaimGuard {
            service: self,
            cells: mine.iter().map(|(cell, _, _)| *cell).collect(),
        };

        // Compute phase: only the cells this request claimed, on the
        // worker pool. Each report is published (and waiters notified)
        // as soon as it exists, not at the end of the batch, so
        // overlapping requests stream results out of this one.
        self.exec.run(mine.len(), |i| {
            let (cell, def, harness) = &mine[i];
            let report = Arc::new(grid::cell_report(harness, def, cell));
            self.computed.fetch_add(1, Ordering::Relaxed);
            let mut state = self.lock_state();
            state.cache.insert(*cell, Slot::Done(report.clone()));
            drop(state);
            self.ready.notify_all();
        });
        // Normal path: everything we claimed is published, so the
        // guard's sweep finds nothing to revert. Dropped here, before
        // the assemble lock, because the guard locks the state itself.
        drop(claims);

        // Assemble phase: by now every cell this request claimed is
        // done; cells claimed by other requests may still be in
        // flight, so park on the condition variable until they
        // publish. An *absent* cell here means its claimant panicked
        // and the claim was reverted — adopt it and compute inline.
        let mut state = self.lock_state();
        let mut reports = Vec::with_capacity(cells.len());
        for cell in cells {
            let report = loop {
                match state.cache.get(cell) {
                    Some(Slot::Done(report)) => break report.clone(),
                    // Only reachable when `!traced` (a traced request
                    // upgraded or reclaimed every slim/lazy entry in
                    // its claim phase, and computations always publish
                    // full reports).
                    Some(Slot::DoneSlim(report) | Slot::DoneLazy { report, .. }) => {
                        break report.clone()
                    }
                    Some(Slot::InFlight) => {
                        state = self
                            .ready
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    None => {
                        state = self.adopt_and_compute(state, *cell);
                    }
                }
            };
            reports.push(report);
        }
        reports
    }

    /// Answers a single cell for the async scheduler's workers:
    /// claim-or-wait-or-hit with the same single-flight, panic-revert
    /// and slim semantics as [`GridService::run_cells_traced`], but for
    /// exactly one cell and reporting *how* it was answered so the
    /// scheduler can account duplicates by class. Does **not** bump the
    /// request/cell counters — the scheduler does that at submit time,
    /// keeping sequential async streams stat-identical to the blocking
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the cell's simulation panics; the claim is reverted
    /// first (scheduler workers catch the unwind and fail the ticket).
    pub(crate) fn cell_report(&self, cell: Cell, traced: bool) -> (Arc<EpochReport>, CellClass) {
        let mut waited = false;
        let mut state = self.lock_state();
        loop {
            // Traced request on a lazy entry: decode and upgrade in
            // place (an undecodable block falls through to reclaim).
            if traced && matches!(state.cache.get(&cell), Some(Slot::DoneLazy { .. })) {
                if let Some(report) = self.upgrade_lazy(&mut state, cell) {
                    drop(state);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (report, CellClass::Hit);
                }
            }
            let served = match state.cache.get(&cell) {
                Some(Slot::Done(report)) => Some(report.clone()),
                Some(Slot::DoneSlim(report) | Slot::DoneLazy { report, .. }) if !traced => {
                    Some(report.clone())
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                // Missing (or slim/undecodable-lazy under a traced
                // request, or reverted by a panicked claimant while we
                // waited): claim it.
                Some(Slot::DoneSlim(_) | Slot::DoneLazy { .. }) | None => None,
            };
            if let Some(report) = served {
                drop(state);
                // A wait that resolved to a published report was
                // coalesced onto another thread's computation — the
                // same class the blocking claim phase assigns when it
                // observes InFlight under its single lock hold.
                return if waited {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    (report, CellClass::Coalesced)
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (report, CellClass::Hit)
                };
            }
            state.cache.insert(cell, Slot::InFlight);
            let (def, harness) = Self::pools(&mut state, &self.base, cell);
            drop(state);
            let claim = ClaimGuard {
                service: self,
                cells: vec![cell],
            };
            // May panic; the guard reverts the claim and wakes waiters
            // before the unwind reaches the scheduler's catch.
            let report = Arc::new(grid::cell_report(&harness, &def, &cell));
            self.computed.fetch_add(1, Ordering::Relaxed);
            {
                let mut state = self.lock_state();
                state.cache.insert(cell, Slot::Done(report.clone()));
            }
            drop(claim);
            self.ready.notify_all();
            return (report, CellClass::Computed);
        }
    }

    /// Claims and computes `cell` from the assemble loop, for the case
    /// where the original claimant panicked and reverted its claim.
    /// Takes and returns the state guard; the lock is dropped around
    /// the computation itself.
    fn adopt_and_compute<'a>(
        &'a self,
        mut state: MutexGuard<'a, State>,
        cell: Cell,
    ) -> MutexGuard<'a, State> {
        state.cache.insert(cell, Slot::InFlight);
        let (def, harness) = Self::pools(&mut state, &self.base, cell);
        drop(state);
        let claim = ClaimGuard {
            service: self,
            cells: vec![cell],
        };
        // May panic for a genuinely poisonous cell, in which case the
        // guard reverts this adoption too and the panic propagates to
        // this request's caller.
        let report = Arc::new(grid::cell_report(&harness, &def, &cell));
        self.computed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = self.lock_state();
            state.cache.insert(cell, Slot::Done(report));
        }
        drop(claim);
        self.ready.notify_all();
        self.lock_state()
    }

    /// Decodes a lazy entry's trace block and upgrades its slot to a
    /// full `Done` in place, returning the complete report. `None` if
    /// the slot is not lazy or the block fails to decode (the caller
    /// reclaims the cell and recomputes — unreachable for snapshots
    /// this code wrote, since the load already checksummed the image,
    /// but cheap to stay defensive about).
    fn upgrade_lazy(&self, state: &mut State, cell: Cell) -> Option<Arc<EpochReport>> {
        let (report, trace) = match state.cache.get(&cell) {
            Some(Slot::DoneLazy { report, trace }) => (report.clone(), trace.clone()),
            _ => return None,
        };
        let events = trace.decode().ok()?;
        let mut full = (*report).clone();
        full.iter_trace = voltascope_sim::Trace::new(events);
        let full = Arc::new(full);
        state.cache.insert(cell, Slot::Done(full.clone()));
        self.trace_decodes.fetch_add(1, Ordering::Relaxed);
        Some(full)
    }

    /// Fetches (building on first use) the shared workload definition
    /// and harness for `cell` from the state pools.
    fn pools(state: &mut State, base: &Harness, cell: Cell) -> (Arc<Definition>, Arc<Harness>) {
        let def = state
            .defs
            .entry(cell.workload)
            .or_insert_with(|| Arc::new(cell.workload.definition()))
            .clone();
        let harness = state
            .harnesses
            .entry((cell.platform, cell.fault))
            .or_insert_with(|| Arc::new(harness_for(base, cell.platform, cell.fault)))
            .clone();
        (def, harness)
    }

    /// Acquires the state lock, recovering from poisoning: the lock is
    /// never held across a cell computation, and the claim guards keep
    /// the cache invariants across unwinds, so a poisoned mutex only
    /// means "some thread panicked elsewhere", not "the state is
    /// inconsistent".
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the request counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            repeats: self.repeats.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
        }
    }

    /// Number of lazy-loaded trace blocks decoded so far — the cost a
    /// warm service has actually paid for traces. A warm service
    /// answering only table-level sweeps leaves this at zero.
    /// Deliberately *not* part of [`ServiceStats`]: the async/blocking
    /// stat-parity contract compares how requests were answered, not
    /// which snapshot machinery served them.
    pub fn trace_decodes(&self) -> u64 {
        self.trace_decodes.load(Ordering::Relaxed)
    }

    /// Number of distinct cells resident in the cache (completed or in
    /// flight).
    pub fn cached_cells(&self) -> usize {
        self.lock_state().cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use voltascope_comm::CommMethod;
    use voltascope_dnn::zoo::Workload;
    use voltascope_train::ScalingMode;

    fn lenet_cell(batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: voltascope_dnn::zoo::Workload::LeNet.into(),
            comm: CommMethod::P2p,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    /// A cell whose simulation panics: 9 GPUs on an 8-GPU topology.
    fn poisonous_cell() -> Cell {
        lenet_cell(16, 9)
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2)];
        let first = service.run_cells(&cells);
        let second = service.run_cells(&cells);
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(second.iter()) {
            // Same Arc, not merely equal values.
            assert!(Arc::ptr_eq(a, b));
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.repeats, 0);
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(service.cached_cells(), 2);
    }

    #[test]
    fn duplicate_cells_within_a_request_compute_once() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cell = lenet_cell(16, 1);
        let reports = service.run_cells(&[cell, cell, cell]);
        assert_eq!(reports.len(), 3);
        assert!(Arc::ptr_eq(&reports[0], &reports[1]));
        assert!(Arc::ptr_eq(&reports[1], &reports[2]));
        let stats = service.stats();
        assert_eq!(stats.computed, 1);
        // Intra-request duplicates of a freshly claimed cell are
        // repeats, not coalesced: the request gained nothing from the
        // cache, so the hit rate must stay zero.
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.repeats, 2);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn warm_duplicates_count_as_hits() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cell = lenet_cell(16, 1);
        service.run_cells(&[cell]);
        service.run_cells(&[cell, cell]);
        let stats = service.stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 2, "both warm duplicates are genuine hits");
        assert_eq!(stats.repeats, 0);
    }

    #[test]
    fn overlapping_sweeps_only_compute_the_missing_cells() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let small = GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::P2p])
            .batches([16])
            .gpu_counts([1, 2]);
        let bigger = small.clone().gpu_counts([1, 2, 4]);
        service.sweep(&small);
        let out = service.sweep(&bigger);
        assert_eq!(out.len(), 3);
        let stats = service.stats();
        assert_eq!(stats.computed, 3, "only the 4-GPU cell was new");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn empty_requests_are_answered_without_computation() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        assert!(service.run_cells(&[]).is_empty());
        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.cells, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn sweep_preserves_canonical_enumeration_order() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let spec = GridSpec::paper()
            .workloads([Workload::LeNet])
            .comms([CommMethod::P2p, CommMethod::Nccl])
            .batches([16])
            .gpu_counts([2]);
        let out = service.sweep(&spec);
        assert_eq!(out.cells(), spec.cells().as_slice());
    }

    #[test]
    fn panicking_compute_reverts_its_claim() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let result = catch_unwind(AssertUnwindSafe(|| {
            service.run_cells(&[poisonous_cell()]);
        }));
        assert!(result.is_err(), "9-GPU cell must panic");
        // The claim is gone, not wedged in flight.
        assert_eq!(service.cached_cells(), 0);

        // A retry panics again (no deadlock on a stale claim)...
        let retry = catch_unwind(AssertUnwindSafe(|| {
            service.run_cells(&[poisonous_cell()]);
        }));
        assert!(retry.is_err());
        assert_eq!(service.cached_cells(), 0);

        // ...and an unrelated healthy request completes normally: the
        // mutex was not poisoned into an `expect` cascade.
        let reports = service.run_cells(&[lenet_cell(16, 1)]);
        assert_eq!(reports.len(), 1);
        let stats = service.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.computed, 1, "only the healthy cell completed");
    }

    #[test]
    fn panic_midway_through_a_request_spares_completed_cells() {
        // The serial executor computes `mine` in claim order: the
        // healthy cell publishes before the poisonous one panics. Its
        // report must survive the unwind; the failed claim must not.
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let good = lenet_cell(16, 1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            service.run_cells(&[good, poisonous_cell()]);
        }));
        assert!(result.is_err());
        assert_eq!(service.cached_cells(), 1, "published cell survives");
        // The survivor is served as a plain hit.
        let reports = service.run_cells(&[good]);
        assert_eq!(reports.len(), 1);
        assert_eq!(service.stats().hits, 1);
    }

    #[test]
    fn concurrent_requests_for_a_panicking_cell_never_deadlock() {
        // Whatever the interleaving — the second request coalesces
        // onto the first's claim and adopts it after the revert, or
        // claims fresh after the revert — both observe the panic and
        // nothing is left in flight.
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service.run_cells(&[poisonous_cell()])
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().is_err(), "both requests must panic");
        }
        assert_eq!(service.cached_cells(), 0);
        // The service remains fully usable afterwards.
        let reports = service.run_cells(&[lenet_cell(16, 2)]);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_reports_and_serves_hits() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-unit-{}.snap",
            std::process::id()
        ));
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2), lenet_cell(32, 4)];

        let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cold_reports = cold.run_cells(&cells);
        assert_eq!(cold.save(&path).unwrap(), cells.len());

        let (warm, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(status, SnapshotStatus::Loaded { cells: 3 }));
        let warm_reports = warm.run_cells(&cells);
        for (c, w) in cold_reports.iter().zip(warm_reports.iter()) {
            assert_eq!(c.iterations, w.iterations);
            assert_eq!(c.epoch_time, w.epoch_time);
            assert_eq!(c.iter_time, w.iter_time);
            assert_eq!(c.api_iter, w.api_iter);
            // Table-only requests serve lazy entries without decoding:
            // the returned reports carry empty traces.
            assert!(w.iter_trace.events().is_empty());
        }
        let stats = warm.stats();
        assert_eq!(stats.computed, 0, "warm run must be pure hits");
        assert_eq!(stats.hits, cells.len() as u64);
        assert_eq!(stats.hit_rate(), 1.0);
        assert_eq!(warm.trace_decodes(), 0, "no trace consumer ran");

        // A traced request decodes the lazy blocks — no recompute —
        // and the decoded traces match the cold originals exactly.
        let traced_reports = warm.run_cells_traced(&cells, true);
        for (c, t) in cold_reports.iter().zip(traced_reports.iter()) {
            assert_eq!(c.iter_trace.events(), t.iter_trace.events());
        }
        assert_eq!(warm.stats().computed, 0, "lazy decode, not recompute");
        assert_eq!(warm.trace_decodes(), cells.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lazy_entries_upgrade_once_and_resave_without_decoding() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-lazy-{}.snap",
            std::process::id()
        ));
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2)];
        let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
        cold.run_cells(&cells);
        cold.save(&path).unwrap();
        let cold_bytes = std::fs::read(&path).unwrap();

        // Warm load + table-only traffic + re-save: byte-identical to
        // the cold snapshot with zero trace decodes (the encoded
        // blocks are copied verbatim).
        let resaved = std::env::temp_dir().join(format!(
            "voltascope-service-lazy-resave-{}.snap",
            std::process::id()
        ));
        let (warm, _) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        warm.run_cells(&cells);
        warm.save(&resaved).unwrap();
        assert_eq!(std::fs::read(&resaved).unwrap(), cold_bytes);
        assert_eq!(warm.trace_decodes(), 0);

        // Traced traffic upgrades each entry exactly once; the
        // re-save after decoding still reproduces the cold bytes
        // (fresh encode of the decoded events).
        let first = warm.run_cells_traced(&cells, true);
        let again = warm.run_cells_traced(&cells, true);
        assert_eq!(warm.trace_decodes(), cells.len() as u64, "decoded once");
        assert!(Arc::ptr_eq(&first[0], &again[0]), "upgrade persisted");
        warm.save(&resaved).unwrap();
        assert_eq!(std::fs::read(&resaved).unwrap(), cold_bytes);

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&resaved).unwrap();
    }

    #[test]
    fn missing_and_stale_snapshots_start_cold() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-stale-{}.snap",
            std::process::id()
        ));
        let (_, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(status, SnapshotStatus::Cold));

        // A snapshot written under a different calibration is rejected.
        let mut tweaked = Harness::paper();
        tweaked.seed += 1;
        let other = GridService::with_executor(tweaked, Executor::Serial);
        other.run_cells(&[lenet_cell(16, 1)]);
        other.save(&path).unwrap();
        let (service, status) =
            GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(
            status,
            SnapshotStatus::Rejected(PersistError::FingerprintMismatch { .. })
        ));
        assert_eq!(service.cached_cells(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slim_snapshot_serves_scalars_but_recomputes_for_traces() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-slim-{}.snap",
            std::process::id()
        ));
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2)];

        let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cold_reports = cold.run_cells(&cells);
        assert!(cold_reports
            .iter()
            .all(|r| !r.iter_trace.events().is_empty()));
        cold.save_with(&path, true).unwrap();

        // Ordinary requests: pure hits, exact scalars, empty traces.
        let (warm, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(status, SnapshotStatus::Loaded { cells: 2 }));
        let warm_reports = warm.run_cells(&cells);
        for (c, w) in cold_reports.iter().zip(warm_reports.iter()) {
            assert_eq!(c.iterations, w.iterations);
            assert_eq!(c.epoch_time, w.epoch_time);
            assert_eq!(c.iter_time, w.iter_time);
            assert_eq!(c.api_iter, w.api_iter);
            assert_eq!(
                c.compute_utilization.to_bits(),
                w.compute_utilization.to_bits()
            );
            assert!(w.iter_trace.events().is_empty());
        }
        assert_eq!(warm.stats().computed, 0);
        assert_eq!(warm.stats().hits, 2);

        // Traced requests: slim entries are recomputed, full traces
        // come back, and the cache entry is upgraded in place.
        let traced = warm.run_cells_traced(&cells, true);
        assert_eq!(warm.stats().computed, 2, "slim entries recomputed");
        for (c, t) in cold_reports.iter().zip(traced.iter()) {
            assert_eq!(c.iter_trace.events(), t.iter_trace.events());
        }
        let again = warm.run_cells_traced(&cells, true);
        assert_eq!(warm.stats().computed, 2, "upgrade persists: no recompute");
        assert!(Arc::ptr_eq(&traced[0], &again[0]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resaving_a_slim_loaded_cache_stays_slim() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-reslim-{}.snap",
            std::process::id()
        ));
        let cold = GridService::with_executor(Harness::paper(), Executor::Serial);
        cold.run_cells(&[lenet_cell(16, 1)]);
        cold.save_with(&path, true).unwrap();

        // A full (slim = false) re-save of slim-loaded entries must not
        // launder empty placeholder traces into trusted full entries.
        let (warm, _) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        warm.save_with(&path, false).unwrap();
        let (again, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(status, SnapshotStatus::Loaded { cells: 1 }));
        let traced = again.sweep_traced(
            &GridSpec::paper()
                .workloads([Workload::LeNet])
                .comms([CommMethod::P2p])
                .batches([16])
                .gpu_counts([1]),
        );
        assert_eq!(again.stats().computed, 1, "still treated as slim");
        let report = traced.get(&lenet_cell(16, 1)).unwrap();
        assert!(!report.iter_trace.events().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cell_report_classifies_hits_and_computes() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cell = lenet_cell(16, 1);
        let (first, class) = service.cell_report(cell, false);
        assert_eq!(class, CellClass::Computed);
        let (second, class) = service.cell_report(cell, false);
        assert_eq!(class, CellClass::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = service.stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 1);
        // cell_report leaves request/cell accounting to its caller.
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn cell_report_panics_revert_like_the_blocking_path() {
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        let result = catch_unwind(AssertUnwindSafe(|| {
            service.cell_report(poisonous_cell(), false);
        }));
        assert!(result.is_err());
        assert_eq!(service.cached_cells(), 0, "claim reverted");
        let (_, class) = service.cell_report(lenet_cell(16, 1), false);
        assert_eq!(class, CellClass::Computed);
    }

    #[test]
    fn save_skips_in_flight_claims() {
        // save() must only persist Done slots; a wedged or concurrent
        // in-flight claim is simply absent from the snapshot.
        let service = GridService::with_executor(Harness::paper(), Executor::Serial);
        service.run_cells(&[lenet_cell(16, 1)]);
        {
            let mut state = service.lock_state();
            state.cache.insert(lenet_cell(16, 2), Slot::InFlight);
        }
        let path = std::env::temp_dir().join(format!(
            "voltascope-service-partial-{}.snap",
            std::process::id()
        ));
        assert_eq!(service.save(&path).unwrap(), 1);
        let (warm, status) = GridService::with_snapshot(Harness::paper(), Executor::Serial, &path);
        assert!(matches!(status, SnapshotStatus::Loaded { cells: 1 }));
        assert_eq!(warm.cached_cells(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
