//! # Versioned on-disk snapshots of the report cache
//!
//! A snapshot file stores every completed `(Cell, EpochReport)` entry
//! of a [`GridService`](super::GridService) cache, so a later process
//! can warm-start instead of recomputing the grid. The format is
//! dependency-free (hand-rolled little-endian encoding, matching the
//! workspace's no-serde policy) and designed for **exact** round-trips:
//! every field — including `f64`s, which travel as IEEE-754 bit
//! patterns — decodes to the identical value, so tables rendered from
//! a loaded snapshot are byte-identical to a cold recompute.
//!
//! ## File layout (all integers little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"VSCPSNAP"` |
//! | 8  | 4 | format version ([`FORMAT_VERSION`]) |
//! | 12 | 8 | harness fingerprint ([`harness_fingerprint`]) |
//! | 20 | 8 | entry count |
//! | 28 | 8 | payload length in bytes |
//! | 36 | 8 | FNV-1a checksum of the payload |
//! | 44 | .. | payload: `entry count` encoded entries |
//!
//! Each entry is the cell key (enum tags as `u8`, batch/GPU count as
//! `u64`) followed by the [`EpochReport`] — stage timings, the
//! per-category API totals, and (unless the entry is *slim*, below) the
//! complete steady-state iteration trace as a *compact trace block*.
//! Entries are stored sorted by their encoded cell key, so the snapshot
//! bytes are a canonical function of the cache *contents*, independent
//! of insertion order: save → load → re-save is byte-identical.
//!
//! ## Compact trace blocks (format v5)
//!
//! The iteration traces dominate snapshot size; before v5 the full
//! fig3 grid persisted ~40 MB, almost all of it absolute nanosecond
//! timestamps and per-iteration kernel labels repeated across
//! thousands of events. A v5 trace block stores, behind a `u32`
//! byte-length prefix, a varint *raw length* followed by an
//! LZSS-compressed image (below) of this inner layout:
//!
//! | field | encoding |
//! |---|---|
//! | string table | varint count, then per string (sorted ascending): varint shared-prefix length + varint suffix length + UTF-8 suffix bytes |
//! | event count | varint |
//! | per event: task id | varint |
//! | per event: label / category | varint indices into the string table |
//! | per event: resource | varint `0` = none, else table index + 1 |
//! | per event: start | varint delta vs the previous event's start (wrapping) |
//! | per event: duration | varint `end - start` in nanoseconds |
//!
//! Varints are LEB128 (7 data bits per byte, little-endian, high bit =
//! continuation). The string table interns every distinct
//! label/category/resource string in ascending byte order and
//! front-codes it: each string stores only its suffix after the
//! longest shared prefix with its predecessor, which collapses the
//! `itN/<kernel>@GPUk` families that dominate real traces. Start
//! timestamps are wrapping deltas against the previous event (small
//! for the sorted-by-start traces the simulator produces — but *any*
//! order round-trips exactly).
//!
//! The inner image is then compressed with a dependency-free LZSS
//! coder: tokens in groups of eight behind a control byte (bit = 1 →
//! match, 0 → literal), literals as raw bytes, matches as
//! varint distance (1-based, within the already-decoded output) +
//! varint `length - 4`, overlapping copies allowed. The compressor is
//! a pure function of the inner bytes (greedy longest-match over
//! deterministic hash chains), and the inner decoder accepts only the
//! canonical structural form — minimal-length varints, a strictly
//! ascending maximally-shared-prefix table with no unused strings, no
//! trailing bytes — so decode → re-encode reproduces every
//! writer-produced block byte-identically.
//!
//! The length prefix is what makes **lazy decoding** possible:
//! [`load_entries_lazy`] parses cells and scalar report fields eagerly
//! but holds each trace block as a [`LazyTrace`] — an offset window
//! into the loaded snapshot image — decoding events only when a trace
//! consumer actually touches that cell. A warm service answering
//! table-only sweeps never decodes a single event, and re-saving an
//! untouched entry copies the encoded block verbatim
//! ([`TraceOut::Raw`]), preserving byte-identity without a decode.
//!
//! ## Slim entries (`VOLTASCOPE_CACHE_SLIM=1`)
//!
//! Each entry carries a one-byte trace flag: `1` means a compact trace
//! block follows, `0` means the trace was deliberately omitted at save
//! time. [`slim_from_env`] reads the `VOLTASCOPE_CACHE_SLIM` opt-out
//! the sweep binaries honour via
//! [`GridService::save_with`](super::GridService::save_with).
//!
//! A slim entry still round-trips every *scalar* field exactly — epoch
//! and iteration times, FP+BP/WU splits, API totals, sync share,
//! utilisation — so any table derived from those fields is
//! byte-identical whether it was served from a slim or a full
//! snapshot. What a slim entry **cannot** serve is a request that
//! walks the iteration trace (idle scans, timeline renders, the fault
//! sweep's idle deltas): the loading service marks slim entries
//! distinctly and trace-needing requests recompute them instead of
//! silently rendering from an empty trace (see the service docs).
//!
//! ## Staleness policy
//!
//! A snapshot is only as valid as the simulator that produced it, so
//! two independent checks gate loading:
//!
//! * **Format version** — [`FORMAT_VERSION`] must be bumped whenever
//!   the encoding changes *or* when simulation semantics shift without
//!   a calibration change (e.g. a model-zoo or scheduler fix). A
//!   mismatch yields [`PersistError::UnsupportedVersion`].
//! * **Harness fingerprint** — a hash over the complete base
//!   [`Harness`] configuration (topology, kernel/API/NCCL cost models,
//!   host-dispatch costs, memory model, measurement protocol). Any
//!   calibration change produces a different fingerprint and the stale
//!   snapshot is rejected ([`PersistError::FingerprintMismatch`])
//!   rather than silently reused.
//!
//! Rejection is always typed and recoverable — truncated, corrupted,
//! wrong-version and wrong-fingerprint files return a [`PersistError`],
//! never panic — so callers fall back to an empty cache and recompute.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_sim::{SimSpan, SimTime, TaskId, Trace, TraceEvent};
use voltascope_train::{EpochReport, ScalingMode};

use crate::grid::{Cell, FaultScenario, Platform};
use crate::workloads::{self, WorkloadSel};
use crate::Harness;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"VSCPSNAP";

/// Current snapshot format version. Bump on any encoding change *or*
/// any simulator-semantics change not captured by the harness
/// fingerprint (see the module docs' staleness policy).
///
/// Version history: 1 — initial format; 2 — per-entry trace-presence
/// flag (slim snapshots); 3 — data workloads (tag 5 + spec name; zoo
/// tags 0..=4 unchanged); 4 — per-report critical chain (count +
/// length-prefixed labels, after the utilization field); 5 — compact
/// trace blocks (length-prefixed, varint-encoded, front-coded interned
/// strings, delta timestamps, LZSS-compressed) enabling lazy per-entry
/// decode.
///
/// Strictly additive tag values (new fault scenarios, platforms or
/// workloads appended past the existing range) do **not** bump the
/// version: old files decode unchanged, and an old reader facing a new
/// tag fails loudly as `Corrupted`, which the load path treats as a
/// cold cache.
pub const FORMAT_VERSION: u32 = 5;

/// Environment variable that opts snapshot saves out of persisting the
/// steady-state iteration traces. Read by the sweep binaries, not by
/// the library: explicit callers pass the flag to
/// [`encode_entries`]/[`save_entries`] or
/// [`GridService::save_with`](super::GridService::save_with).
pub const SLIM_ENV: &str = "VOLTASCOPE_CACHE_SLIM";

/// Reads the [`SLIM_ENV`] opt-out: unset, empty, or a conventional
/// falsy token (`0`, `false`, `off`, `no` — case-insensitive) means
/// full snapshots; anything else enables slim mode.
pub fn slim_from_env() -> bool {
    match std::env::var(SLIM_ENV) {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v.eq_ignore_ascii_case("0")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("no"))
        }
    }
}

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 44;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`]: not a snapshot at all.
    BadMagic,
    /// The file is a snapshot, but of a format this build cannot read.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
    },
    /// The snapshot was produced under a different harness calibration.
    FingerprintMismatch {
        /// Fingerprint of the harness trying to load the snapshot.
        expected: u64,
        /// Fingerprint recorded in the file header.
        found: u64,
    },
    /// The file ends before the encoded data does.
    Truncated,
    /// The payload bytes do not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The payload is structurally invalid (bad enum tag, non-UTF-8
    /// string, duplicate cell, trailing bytes, ...).
    Corrupted(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a voltascope snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this build reads {FORMAT_VERSION})")
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match harness {expected:#018x} (stale calibration)"
            ),
            PersistError::Truncated => write!(f, "snapshot file is truncated"),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot payload checksum {found:#018x} does not match header {expected:#018x}"
            ),
            PersistError::Corrupted(what) => write!(f, "snapshot payload corrupted: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl PersistError {
    /// `true` when the error just means "no snapshot exists yet" — the
    /// ordinary cold-start case, as opposed to a rejected file.
    pub fn is_missing_file(&self) -> bool {
        matches!(self, PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

/// Fingerprint of a harness configuration, recorded in every snapshot
/// header. Hashes the `Debug` rendering of the full [`Harness`] — the
/// system model (topology, GPU spec, kernel/API/NCCL cost models,
/// host-dispatch and P2P-issue costs, overlap flag, straggler factors),
/// the memory model, and the measurement protocol (reps, jitter sigma,
/// seed). Deliberately conservative: any calibration change, even one
/// that could not affect cached reports, invalidates old snapshots —
/// recomputing a grid is cheap next to silently reusing stale numbers.
pub fn harness_fingerprint(harness: &Harness) -> u64 {
    fnv1a(format!("{harness:?}").as_bytes())
}

/// Encodes `entries` as a complete full-fat snapshot byte image for
/// `fingerprint` (every iteration trace persisted). Shorthand for
/// [`encode_entries`] with `slim = false` on every entry.
pub fn encode(fingerprint: u64, entries: &[(Cell, Arc<EpochReport>)]) -> Vec<u8> {
    let with_flags: Vec<(Cell, Arc<EpochReport>, bool)> = entries
        .iter()
        .map(|(c, r)| (*c, r.clone(), false))
        .collect();
    encode_entries(fingerprint, &with_flags)
}

/// Encodes `entries` with a per-entry slim flag: `true` omits that
/// entry's iteration trace from the payload (see the module docs'
/// slim-entries section).
pub fn encode_entries(fingerprint: u64, entries: &[(Cell, Arc<EpochReport>, bool)]) -> Vec<u8> {
    let with_traces: Vec<(Cell, Arc<EpochReport>, TraceOut)> = entries
        .iter()
        .map(|(c, r, slim)| {
            let out = if *slim {
                TraceOut::Slim
            } else {
                TraceOut::Events
            };
            (*c, r.clone(), out)
        })
        .collect();
    encode_with_traces(fingerprint, &with_traces)
}

/// How one entry's iteration trace reaches a snapshot being written.
#[derive(Debug, Clone)]
pub enum TraceOut {
    /// Omit the trace (a slim entry).
    Slim,
    /// Encode the report's in-memory events as a compact trace block.
    Events,
    /// Copy an already-encoded block verbatim from a loaded snapshot,
    /// never decoding it — the warm re-save path for entries no trace
    /// consumer touched. Byte-identical to re-encoding, because the
    /// decoder only accepts canonical blocks.
    Raw(LazyTrace),
}

/// Encodes `entries` with an explicit per-entry trace source — the
/// most general encode front end ([`encode`] and [`encode_entries`]
/// are shorthands onto it).
///
/// Entries are canonicalised (sorted by encoded cell key) before
/// writing, so any permutation of the same cache encodes to identical
/// bytes.
pub fn encode_with_traces(
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>, TraceOut)],
) -> Vec<u8> {
    let mut encoded: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(cell, report, trace)| {
            let mut key = Vec::with_capacity(21);
            put_cell(&mut key, cell);
            let mut body = Vec::new();
            put_report(&mut body, report, trace);
            (key, body)
        })
        .collect();
    encoded.sort_by(|a, b| a.0.cmp(&b.0));

    let mut payload = Vec::new();
    for (key, body) in &encoded {
        payload.extend_from_slice(key);
        payload.extend_from_slice(body);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot byte image, dropping the per-entry slim flags
/// (a slim entry decodes to a report with an empty iteration trace).
/// Use [`decode_entries`] when the flags matter.
pub fn decode(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>)>, PersistError> {
    Ok(decode_entries(bytes, expected_fingerprint)?
        .into_iter()
        .map(|(cell, report, _)| (cell, report))
        .collect())
}

/// Decodes a snapshot byte image, validating magic, version,
/// fingerprint, length and checksum before touching the payload.
/// The third tuple element is the entry's slim flag: `true` means the
/// iteration trace was omitted at save time (the decoded report
/// carries an empty trace).
///
/// This is the *eager* front end: every trace block is decoded into
/// events up front, so the whole payload is structurally validated.
/// The warm-start service uses [`load_entries_lazy`] instead.
pub fn decode_entries(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, bool)>, PersistError> {
    let image: Arc<[u8]> = bytes.to_vec().into();
    decode_entries_lazy(&image, expected_fingerprint)?
        .into_iter()
        .map(|(cell, report, trace)| match trace {
            EntryTrace::Slim => Ok((cell, report, true)),
            EntryTrace::Lazy(block) => {
                let events = block.decode()?;
                let mut full = (*report).clone();
                full.iter_trace = Trace::new(events);
                Ok((cell, Arc::new(full), false))
            }
        })
        .collect()
}

/// A still-encoded compact trace block: a window into a loaded
/// snapshot image that can be decoded on demand ([`LazyTrace::decode`])
/// or copied verbatim into a re-saved snapshot ([`TraceOut::Raw`]).
/// Cloning is cheap — the snapshot image is shared behind an `Arc`.
#[derive(Clone)]
pub struct LazyTrace {
    image: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl LazyTrace {
    /// The encoded block bytes (without the `u32` length prefix).
    pub fn raw(&self) -> &[u8] {
        &self.image[self.offset..self.offset + self.len]
    }

    /// Decodes the block into trace events. Deterministic: decoding
    /// twice yields equal events, and re-encoding them reproduces
    /// [`LazyTrace::raw`] exactly.
    pub fn decode(&self) -> Result<Vec<TraceEvent>, PersistError> {
        decode_trace_block(self.raw())
    }

    /// Size of the encoded block in bytes.
    pub fn encoded_len(&self) -> usize {
        self.len
    }
}

impl fmt::Debug for LazyTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The image is the whole snapshot; print the window, not MBs
        // of shared bytes.
        f.debug_struct("LazyTrace")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// How a lazily-loaded entry holds its iteration trace.
#[derive(Debug, Clone)]
pub enum EntryTrace {
    /// The trace was omitted when the snapshot was saved.
    Slim,
    /// The trace is present but still encoded, awaiting first use.
    Lazy(LazyTrace),
}

/// Validates the fixed header and returns the entry count; the caller
/// slices the payload at [`HEADER_LEN`].
fn validate_header(bytes: &[u8], expected_fingerprint: u64) -> Result<u64, PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let found_fp = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
    if found_fp != expected_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: found_fp,
        });
    }
    let count = u64::from_le_bytes(bytes[20..28].try_into().expect("8 header bytes"));
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().expect("8 header bytes"));
    let checksum = u64::from_le_bytes(bytes[36..44].try_into().expect("8 header bytes"));
    let payload = &bytes[HEADER_LEN..];
    match (payload.len() as u64).cmp(&payload_len) {
        std::cmp::Ordering::Less => return Err(PersistError::Truncated),
        std::cmp::Ordering::Greater => {
            return Err(PersistError::Corrupted("trailing bytes after payload"))
        }
        std::cmp::Ordering::Equal => {}
    }
    let found_sum = fnv1a(payload);
    if found_sum != checksum {
        return Err(PersistError::ChecksumMismatch {
            expected: checksum,
            found: found_sum,
        });
    }
    Ok(count)
}

/// Decodes a snapshot image lazily: cells and scalar report fields are
/// parsed eagerly (and the payload is checksum-validated as a whole),
/// but each trace block stays encoded as a [`LazyTrace`] window into
/// `image`. The returned reports carry *empty* `iter_trace`s — trace
/// consumers decode through the [`EntryTrace`] when (and only when)
/// they touch a cell.
pub fn decode_entries_lazy(
    image: &Arc<[u8]>,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, EntryTrace)>, PersistError> {
    let count = validate_header(image, expected_fingerprint)?;
    let payload = &image[HEADER_LEN..];
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let mut entries = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let cell = take_cell(&mut r)?;
        if !seen.insert(cell) {
            return Err(PersistError::Corrupted("duplicate cell entry"));
        }
        let report = take_report_scalars(&mut r)?;
        let trace = match r.u8()? {
            0 => EntryTrace::Slim,
            1 => {
                let len = r.u32()? as usize;
                r.take(len)?;
                EntryTrace::Lazy(LazyTrace {
                    image: image.clone(),
                    offset: HEADER_LEN + r.pos - len,
                    len,
                })
            }
            _ => return Err(PersistError::Corrupted("unknown trace tag")),
        };
        entries.push((cell, Arc::new(report), trace));
    }
    if r.pos != payload.len() {
        return Err(PersistError::Corrupted("payload longer than its entries"));
    }
    Ok(entries)
}

/// Reads and lazily decodes the snapshot at `path` (see
/// [`decode_entries_lazy`]).
pub fn load_entries_lazy(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, EntryTrace)>, PersistError> {
    let image: Arc<[u8]> = fs::read(path)?.into();
    decode_entries_lazy(&image, expected_fingerprint)
}

/// Writes a full-fat snapshot atomically (see [`save_entries`]).
pub fn save(
    path: &Path,
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>)],
) -> Result<(), PersistError> {
    write_atomic(path, &encode(fingerprint, entries))
}

/// Writes a snapshot with per-entry slim flags atomically: the image
/// is assembled in memory, written to a `.tmp` sibling, and renamed
/// into place, so a crash mid-save can never leave a half-written
/// snapshot behind (a torn write would be rejected by the checksum
/// anyway).
pub fn save_entries(
    path: &Path,
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>, bool)],
) -> Result<(), PersistError> {
    write_atomic(path, &encode_entries(fingerprint, entries))
}

/// Writes a snapshot with explicit per-entry trace sources atomically
/// (see [`encode_with_traces`] and [`save_entries`]).
pub fn save_with_traces(
    path: &Path,
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>, TraceOut)],
) -> Result<(), PersistError> {
    write_atomic(path, &encode_with_traces(fingerprint, entries))
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes the snapshot at `path`, dropping slim flags. A
/// missing file surfaces as `PersistError::Io` with
/// [`PersistError::is_missing_file`] true.
pub fn load(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>)>, PersistError> {
    let bytes = fs::read(path)?;
    decode(&bytes, expected_fingerprint)
}

/// Reads and decodes the snapshot at `path`, keeping per-entry slim
/// flags.
pub fn load_entries(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, bool)>, PersistError> {
    let bytes = fs::read(path)?;
    decode_entries(&bytes, expected_fingerprint)
}

/// FNV-1a over a byte slice — the workspace's standard dependency-free
/// hash (the vendored proptest uses the same constants for seeding).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- Field-level encoding ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_span(out: &mut Vec<u8>, s: SimSpan) {
    put_u64(out, s.as_nanos());
}

/// LEB128: 7 data bits per byte, little-endian, high bit set on every
/// byte but the last. Always emits the minimal-length (canonical)
/// encoding, which the reader enforces on the way back in.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Encodes `events` as a compact v5 trace block (see the module docs'
/// layout table): a front-coded sorted string table plus varint event
/// tuples, LZSS-compressed behind a varint raw length. Deterministic:
/// equal event lists encode to equal bytes, so [`TraceOut::Raw`]
/// copies and fresh encodes agree.
fn encode_trace_block(events: &[TraceEvent]) -> Vec<u8> {
    let mut strings: Vec<&str> = Vec::new();
    for e in events {
        strings.push(&e.label);
        strings.push(&e.category);
        if let Some(r) = &e.resource {
            strings.push(r);
        }
    }
    strings.sort_unstable();
    strings.dedup();
    let index: std::collections::HashMap<&str, u64> = strings
        .iter()
        .enumerate()
        .map(|(i, s)| (*s, i as u64))
        .collect();

    let mut inner = Vec::new();
    put_varint(&mut inner, strings.len() as u64);
    // Front coding: ascending order makes neighbours share the long
    // `itN/<kernel>@GPUk` prefixes real traces are full of, so each
    // string costs only its distinct suffix.
    let mut prev: &[u8] = b"";
    for s in &strings {
        let bytes = s.as_bytes();
        let shared = prev.iter().zip(bytes).take_while(|(a, b)| a == b).count();
        put_varint(&mut inner, shared as u64);
        put_varint(&mut inner, (bytes.len() - shared) as u64);
        inner.extend_from_slice(&bytes[shared..]);
        prev = bytes;
    }
    put_varint(&mut inner, events.len() as u64);
    let mut prev_start = 0u64;
    for e in events {
        put_varint(&mut inner, e.task.index() as u64);
        put_varint(&mut inner, index[e.label.as_str()]);
        put_varint(&mut inner, index[e.category.as_str()]);
        match &e.resource {
            None => put_varint(&mut inner, 0),
            Some(r) => put_varint(&mut inner, index[r.as_str()] + 1),
        }
        let start = e.start.as_nanos();
        // Wrapping delta: exact for any start order, tiny for the
        // sorted-by-start traces the simulator produces.
        put_varint(&mut inner, start.wrapping_sub(prev_start));
        prev_start = start;
        let dur = e
            .end
            .as_nanos()
            .checked_sub(start)
            .expect("trace event ends before it starts");
        put_varint(&mut inner, dur);
    }

    let mut out = Vec::new();
    put_varint(&mut out, inner.len() as u64);
    lzss_compress(&inner, &mut out);
    out
}

/// Minimum LZSS match length: shorter copies cost more than literals.
const LZSS_MIN_MATCH: usize = 4;
/// Farthest back the compressor looks for matches. The decompressor
/// accepts any in-bounds distance; this only bounds the search.
const LZSS_MAX_DIST: usize = 1 << 16;
/// How many hash-chain candidates the compressor tries per position —
/// a fixed cap keeps compression deterministic *and* linear-ish.
const LZSS_CHAIN_CAP: usize = 64;

/// Compresses `input` with the dependency-free LZSS coder described in
/// the module docs: control bytes over groups of eight tokens,
/// literal bytes, and varint `(distance, length - 4)` matches found by
/// greedy longest-match over hash chains. A pure function of `input`,
/// so re-encoding a decoded block reproduces the original bytes.
fn lzss_compress(input: &[u8], out: &mut Vec<u8>) {
    // Token staging: flush eight at a time behind their control byte.
    let mut control = 0u8;
    let mut ntok = 0usize;
    let mut staged = Vec::with_capacity(64);
    fn flush(out: &mut Vec<u8>, control: &mut u8, ntok: &mut usize, staged: &mut Vec<u8>) {
        if *ntok > 0 {
            out.push(*control);
            out.extend_from_slice(staged);
            *control = 0;
            *ntok = 0;
            staged.clear();
        }
    }

    let hash = |p: usize| -> usize {
        let w = u32::from_le_bytes(input[p..p + 4].try_into().expect("4 bytes"));
        (w.wrapping_mul(0x9E37_79B1) >> 16) as usize
    };
    const NIL: u32 = u32::MAX;
    let mut head = vec![NIL; 1 << 16];
    let mut chain = vec![NIL; input.len()];
    let insert = |head: &mut [u32], chain: &mut [u32], hash: &dyn Fn(usize) -> usize, p: usize| {
        if p + LZSS_MIN_MATCH <= input.len() {
            let h = hash(p);
            chain[p] = head[h];
            head[h] = p as u32;
        }
    };

    let mut pos = 0usize;
    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + LZSS_MIN_MATCH <= input.len() {
            let mut cand = head[hash(pos)];
            let mut tries = LZSS_CHAIN_CAP;
            while cand != NIL && tries > 0 {
                let c = cand as usize;
                if pos - c > LZSS_MAX_DIST {
                    break;
                }
                let limit = input.len() - pos;
                let mut len = 0usize;
                while len < limit && input[c + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - c;
                }
                cand = chain[c];
                tries -= 1;
            }
        }
        if best_len >= LZSS_MIN_MATCH {
            control |= 1 << ntok;
            put_varint(&mut staged, best_dist as u64);
            put_varint(&mut staged, (best_len - LZSS_MIN_MATCH) as u64);
            for p in pos..pos + best_len {
                insert(&mut head, &mut chain, &hash, p);
            }
            pos += best_len;
        } else {
            staged.push(input[pos]);
            insert(&mut head, &mut chain, &hash, pos);
            pos += 1;
        }
        ntok += 1;
        if ntok == 8 {
            flush(out, &mut control, &mut ntok, &mut staged);
        }
    }
    flush(out, &mut control, &mut ntok, &mut staged);
}

/// Decompresses an LZSS stream into exactly `expected_len` bytes,
/// rejecting malformed streams (zero or out-of-range distances,
/// output overruns, truncation, trailing bytes) as [`PersistError`]s.
fn lzss_decompress(r: &mut Reader<'_>, expected_len: usize) -> Result<Vec<u8>, PersistError> {
    // Cap the upfront allocation: `expected_len` is untrusted until
    // the stream actually produces it (growth past the cap is
    // geometric, so still linear overall).
    let mut out = Vec::with_capacity(expected_len.min(1 << 20));
    while out.len() < expected_len {
        let control = r.u8()?;
        let mut bit = 0;
        while bit < 8 && out.len() < expected_len {
            if control & (1 << bit) != 0 {
                let dist = r.varint()? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(PersistError::Corrupted("LZSS distance out of range"));
                }
                let len = (r.varint()? as usize)
                    .checked_add(LZSS_MIN_MATCH)
                    .ok_or(PersistError::Corrupted("LZSS length overflow"))?;
                if out.len() + len > expected_len {
                    return Err(PersistError::Corrupted("LZSS output overrun"));
                }
                // Byte-by-byte: overlapping copies (dist < len) repeat
                // the just-written bytes, as in every LZ family.
                let from = out.len() - dist;
                for i in 0..len {
                    let b = out[from + i];
                    out.push(b);
                }
            } else {
                out.push(r.u8()?);
            }
            bit += 1;
        }
    }
    Ok(out)
}

fn put_cell(out: &mut Vec<u8>, cell: &Cell) {
    // Zoo workloads keep the frozen tags 0..=4; a data workload writes
    // tag 5 followed by its spec name, so snapshots survive registry
    // reordering (the name, not the index, is authoritative on disk).
    match cell.workload {
        WorkloadSel::Zoo(w) => put_u8(
            out,
            match w {
                Workload::LeNet => 0,
                Workload::AlexNet => 1,
                Workload::GoogLeNet => 2,
                Workload::InceptionV3 => 3,
                Workload::ResNet => 4,
            },
        ),
        WorkloadSel::Data(d) => {
            put_u8(out, 5);
            put_str(out, d.name());
        }
    }
    put_u8(
        out,
        match cell.comm {
            CommMethod::P2p => 0,
            CommMethod::Nccl => 1,
        },
    );
    put_u64(out, cell.batch as u64);
    put_u64(out, cell.gpus as u64);
    put_u8(
        out,
        match cell.scaling {
            ScalingMode::Strong => 0,
            ScalingMode::Weak => 1,
        },
    );
    put_u8(
        out,
        match cell.platform {
            Platform::Dgx1 => 0,
            Platform::SingleLane => 1,
            Platform::PcieOnly => 2,
            Platform::NvSwitch => 3,
            Platform::ForwardingGpus => 4,
        },
    );
    put_u8(
        out,
        match cell.fault {
            FaultScenario::Healthy => 0,
            FaultScenario::DeadNvLink => 1,
            FaultScenario::StragglerGpu => 2,
            FaultScenario::TwoStragglers => 3,
            FaultScenario::MidEpochDeadNvLink => 4,
            FaultScenario::MidEpochStraggler => 5,
        },
    );
}

fn put_report(out: &mut Vec<u8>, report: &EpochReport, trace: &TraceOut) {
    put_u64(out, report.iterations);
    put_span(out, report.iter_time);
    put_span(out, report.epoch_time);
    put_span(out, report.fp_bp_iter);
    put_span(out, report.wu_iter);
    put_u32(out, report.api_iter.len() as u32);
    for (category, span) in &report.api_iter {
        put_str(out, category);
        put_span(out, *span);
    }
    put_span(out, report.sync_wall_iter);
    put_u64(out, report.compute_utilization.to_bits());
    put_u32(out, report.critical_chain.len() as u32);
    for label in &report.critical_chain {
        put_str(out, label);
    }
    let block = match trace {
        TraceOut::Slim => {
            put_u8(out, 0);
            return;
        }
        TraceOut::Events => encode_trace_block(report.iter_trace.events()),
        TraceOut::Raw(lazy) => lazy.raw().to_vec(),
    };
    put_u8(out, 1);
    put_u32(out, block.len() as u32);
    out.extend_from_slice(&block);
}

// ---- Field-level decoding ----

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn span(&mut self) -> Result<SimSpan, PersistError> {
        Ok(SimSpan::from_nanos(self.u64()?))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupted("non-UTF-8 string"))
    }

    /// Reads a LEB128 varint, rejecting non-minimal encodings and
    /// values past `u64::MAX` — only the canonical form the writer
    /// produces is accepted, which keeps re-encoding byte-identical.
    fn varint(&mut self) -> Result<u64, PersistError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let b = self.u8()?;
            let payload = (b & 0x7f) as u64;
            if i == 9 && payload > 1 {
                return Err(PersistError::Corrupted("varint overflows u64"));
            }
            v |= payload << (7 * i);
            if b & 0x80 == 0 {
                if i > 0 && b == 0 {
                    return Err(PersistError::Corrupted("non-canonical varint"));
                }
                return Ok(v);
            }
        }
        Err(PersistError::Corrupted("varint longer than 10 bytes"))
    }
}

/// Hard cap on a single decompressed trace block — far above any real
/// trace, low enough that a corrupt raw-length varint cannot drive an
/// absurd allocation before the stream is validated.
const MAX_RAW_BLOCK: usize = 1 << 30;

/// Decodes a compact v5 trace block (the bytes after the `u32` length
/// prefix): LZSS-decompress, then parse the inner layout. The inner
/// decoder accepts only the canonical form [`encode_trace_block`]
/// emits — minimal varints, a strictly ascending front-coded string
/// table with maximal shared prefixes and no unused strings, no
/// trailing bytes — so decode → re-encode reproduces every
/// writer-produced block byte-identically.
fn decode_trace_block(block: &[u8]) -> Result<Vec<TraceEvent>, PersistError> {
    let mut outer = Reader {
        bytes: block,
        pos: 0,
    };
    let raw_len = outer.varint()? as usize;
    if raw_len > MAX_RAW_BLOCK {
        return Err(PersistError::Corrupted("trace block too large"));
    }
    let inner = lzss_decompress(&mut outer, raw_len)?;
    if outer.pos != block.len() {
        return Err(PersistError::Corrupted("trailing bytes in trace block"));
    }
    let mut r = Reader {
        bytes: &inner,
        pos: 0,
    };
    let table_len = r.varint()? as usize;
    let mut table: Vec<String> = Vec::with_capacity(table_len.min(1 << 16));
    for i in 0..table_len {
        let shared = r.varint()? as usize;
        let suffix_len = r.varint()? as usize;
        let suffix = r.take(suffix_len)?;
        let prev = table.last().map(String::as_bytes).unwrap_or(b"");
        if shared > prev.len() || (i == 0 && shared != 0) {
            return Err(PersistError::Corrupted("front-coded prefix out of range"));
        }
        // Canonical front coding: the stated prefix must be *maximal*
        // and the table strictly ascending — so after a shared prefix
        // the suffix must continue with a strictly greater byte, and
        // only a proper prefix extension may have `shared == prev.len()`.
        if i > 0 {
            match suffix.first() {
                None => return Err(PersistError::Corrupted("string table out of order")),
                Some(&b) => {
                    if shared < prev.len() && b <= prev[shared] {
                        return Err(PersistError::Corrupted("string table out of order"));
                    }
                }
            }
        }
        let mut s = Vec::with_capacity(shared + suffix_len);
        s.extend_from_slice(&prev[..shared]);
        s.extend_from_slice(suffix);
        let s = String::from_utf8(s).map_err(|_| PersistError::Corrupted("non-UTF-8 string"))?;
        table.push(s);
    }
    let count = r.varint()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 16));
    let mut used = vec![false; table.len()];
    let lookup = |idx: usize, used: &mut [bool]| -> Result<String, PersistError> {
        match table.get(idx) {
            None => Err(PersistError::Corrupted("string index out of range")),
            Some(s) => {
                used[idx] = true;
                Ok(s.clone())
            }
        }
    };
    let mut prev_start = 0u64;
    for _ in 0..count {
        let task = TaskId::from_index(r.varint()? as usize);
        let label = lookup(r.varint()? as usize, &mut used)?;
        let category = lookup(r.varint()? as usize, &mut used)?;
        let resource = match r.varint()? {
            0 => None,
            i => Some(lookup((i - 1) as usize, &mut used)?),
        };
        let start = prev_start.wrapping_add(r.varint()?);
        prev_start = start;
        let end = start
            .checked_add(r.varint()?)
            .ok_or(PersistError::Corrupted("trace event overflows the clock"))?;
        events.push(TraceEvent {
            task,
            label,
            category,
            resource,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        });
    }
    if used.iter().any(|u| !u) {
        return Err(PersistError::Corrupted("unused interned string"));
    }
    if r.pos != inner.len() {
        return Err(PersistError::Corrupted("trailing bytes in trace block"));
    }
    Ok(events)
}

fn take_cell(r: &mut Reader<'_>) -> Result<Cell, PersistError> {
    let workload = match r.u8()? {
        0 => WorkloadSel::Zoo(Workload::LeNet),
        1 => WorkloadSel::Zoo(Workload::AlexNet),
        2 => WorkloadSel::Zoo(Workload::GoogLeNet),
        3 => WorkloadSel::Zoo(Workload::InceptionV3),
        4 => WorkloadSel::Zoo(Workload::ResNet),
        5 => {
            // Resolved through the registry by name: a snapshot naming
            // a workload this process does not know is corrupt *for
            // this process* and falls back to recompute.
            let name = r.string()?;
            match workloads::find_data(&name) {
                Some(d) => WorkloadSel::Data(d),
                None => return Err(PersistError::Corrupted("unregistered data workload")),
            }
        }
        _ => return Err(PersistError::Corrupted("unknown workload tag")),
    };
    let comm = match r.u8()? {
        0 => CommMethod::P2p,
        1 => CommMethod::Nccl,
        _ => return Err(PersistError::Corrupted("unknown comm tag")),
    };
    let batch = r.u64()? as usize;
    let gpus = r.u64()? as usize;
    let scaling = match r.u8()? {
        0 => ScalingMode::Strong,
        1 => ScalingMode::Weak,
        _ => return Err(PersistError::Corrupted("unknown scaling tag")),
    };
    let platform = match r.u8()? {
        0 => Platform::Dgx1,
        1 => Platform::SingleLane,
        2 => Platform::PcieOnly,
        3 => Platform::NvSwitch,
        4 => Platform::ForwardingGpus,
        _ => return Err(PersistError::Corrupted("unknown platform tag")),
    };
    let fault = match r.u8()? {
        0 => FaultScenario::Healthy,
        1 => FaultScenario::DeadNvLink,
        2 => FaultScenario::StragglerGpu,
        3 => FaultScenario::TwoStragglers,
        4 => FaultScenario::MidEpochDeadNvLink,
        5 => FaultScenario::MidEpochStraggler,
        _ => return Err(PersistError::Corrupted("unknown fault tag")),
    };
    Ok(Cell {
        workload,
        comm,
        batch,
        gpus,
        scaling,
        platform,
        fault,
    })
}

/// Reads every scalar report field, stopping *before* the trace flag;
/// the returned report carries an empty `iter_trace` (the caller
/// attaches the trace eagerly or lazily).
fn take_report_scalars(r: &mut Reader<'_>) -> Result<EpochReport, PersistError> {
    let iterations = r.u64()?;
    let iter_time = r.span()?;
    let epoch_time = r.span()?;
    let fp_bp_iter = r.span()?;
    let wu_iter = r.span()?;
    let api_len = r.u32()?;
    let mut api_iter = BTreeMap::new();
    for _ in 0..api_len {
        let category = r.string()?;
        let span = r.span()?;
        if api_iter.insert(category, span).is_some() {
            return Err(PersistError::Corrupted("duplicate api category"));
        }
    }
    let sync_wall_iter = r.span()?;
    let compute_utilization = f64::from_bits(r.u64()?);
    let chain_len = r.u32()?;
    let mut critical_chain = Vec::with_capacity(chain_len.min(1 << 16) as usize);
    for _ in 0..chain_len {
        critical_chain.push(r.string()?);
    }
    Ok(EpochReport {
        iterations,
        iter_time,
        epoch_time,
        fp_bp_iter,
        wu_iter,
        api_iter,
        sync_wall_iter,
        compute_utilization,
        iter_trace: Trace::new(Vec::new()),
        critical_chain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: Workload::LeNet.into(),
            comm: CommMethod::P2p,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    fn report(seed: u64) -> Arc<EpochReport> {
        let mut api_iter = BTreeMap::new();
        api_iter.insert("api.launch".to_string(), SimSpan::from_nanos(seed + 1));
        api_iter.insert("api.sync".to_string(), SimSpan::from_nanos(2 * seed + 7));
        Arc::new(EpochReport {
            iterations: seed + 3,
            iter_time: SimSpan::from_nanos(10 * seed + 5),
            epoch_time: SimSpan::from_nanos(100 * seed + 50),
            fp_bp_iter: SimSpan::from_nanos(6 * seed),
            wu_iter: SimSpan::from_nanos(4 * seed + 5),
            api_iter,
            sync_wall_iter: SimSpan::from_nanos(seed / 2),
            compute_utilization: 0.1 + (seed % 7) as f64 * 0.1,
            iter_trace: Trace::new(vec![TraceEvent {
                task: TaskId::from_index(seed as usize % 11),
                label: format!("it1/k{seed}"),
                category: "fp".to_string(),
                resource: (seed.is_multiple_of(2)).then(|| format!("GPU{}.compute", seed % 8)),
                start: SimTime::from_nanos(seed),
                end: SimTime::from_nanos(seed + 40),
            }]),
            critical_chain: vec![format!("k{seed}"), format!("sync.wu@gpu{}", seed % 8)],
        })
    }

    fn entries() -> Vec<(Cell, Arc<EpochReport>)> {
        vec![
            (cell(16, 1), report(1)),
            (cell(16, 2), report(2)),
            (cell(32, 4), report(3)),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let fp = 0xdead_beef;
        let bytes = encode(fp, &entries());
        let decoded = decode(&bytes, fp).unwrap();
        assert_eq!(decoded.len(), 3);
        for ((c0, r0), (c1, r1)) in entries().iter().zip(decoded.iter()) {
            assert_eq!(c0, c1);
            assert_eq!(r0.iterations, r1.iterations);
            assert_eq!(r0.iter_time, r1.iter_time);
            assert_eq!(r0.epoch_time, r1.epoch_time);
            assert_eq!(r0.api_iter, r1.api_iter);
            assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
        }
    }

    #[test]
    fn encoding_is_canonical_in_entry_order() {
        let fp = 7;
        let mut shuffled = entries();
        shuffled.reverse();
        assert_eq!(encode(fp, &entries()), encode(fp, &shuffled));
    }

    #[test]
    fn resave_is_byte_identical() {
        let fp = 99;
        let bytes = encode(fp, &entries());
        let decoded = decode(&bytes, fp).unwrap();
        assert_eq!(bytes, encode(fp, &decoded));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode(5, &[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        assert!(decode(&bytes, 5).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = encode(1, &entries());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 1).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut bytes = encode(1, &entries());
        bytes[8] = bytes[8].wrapping_add(1);
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn wrong_fingerprint_is_a_typed_error() {
        let bytes = encode(1, &entries());
        assert!(matches!(
            decode(&bytes, 2),
            Err(PersistError::FingerprintMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = encode(1, &entries());
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xa5;
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let dup = vec![(cell(16, 1), report(1)), (cell(16, 1), report(2))];
        let bytes = encode(1, &dup);
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::Corrupted("duplicate cell entry"))
        ));
    }

    #[test]
    fn missing_file_is_distinguishable_from_rejection() {
        let err = load(Path::new("/nonexistent/voltascope.snap"), 1).unwrap_err();
        assert!(err.is_missing_file());
        assert!(!PersistError::BadMagic.is_missing_file());
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-persist-unit-{}.snap",
            std::process::id()
        ));
        save(&path, 42, &entries()).unwrap();
        let loaded = load(&path, 42).unwrap();
        assert_eq!(loaded.len(), 3);
        // Stale fingerprint: rejected, file untouched.
        assert!(matches!(
            load(&path, 43),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    fn flagged(slims: &[bool]) -> Vec<(Cell, Arc<EpochReport>, bool)> {
        entries()
            .into_iter()
            .zip(slims.iter().copied())
            .map(|((c, r), s)| (c, r, s))
            .collect()
    }

    #[test]
    fn slim_entries_roundtrip_scalars_and_drop_traces() {
        let fp = 0x515a;
        let bytes = encode_entries(fp, &flagged(&[true, false, true]));
        let decoded = decode_entries(&bytes, fp).unwrap();
        assert_eq!(decoded.len(), 3);
        for ((c0, r0), (c1, r1, slim)) in entries().iter().zip(decoded.iter()) {
            assert_eq!(c0, c1);
            assert_eq!(r0.iterations, r1.iterations);
            assert_eq!(r0.iter_time, r1.iter_time);
            assert_eq!(r0.epoch_time, r1.epoch_time);
            assert_eq!(r0.fp_bp_iter, r1.fp_bp_iter);
            assert_eq!(r0.wu_iter, r1.wu_iter);
            assert_eq!(r0.api_iter, r1.api_iter);
            assert_eq!(r0.sync_wall_iter, r1.sync_wall_iter);
            assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            if *slim {
                assert!(r1.iter_trace.events().is_empty());
            } else {
                assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
            }
        }
        assert_eq!(
            decoded.iter().map(|(_, _, s)| *s).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn slim_snapshot_is_smaller_than_full() {
        let fp = 3;
        let full = encode_entries(fp, &flagged(&[false, false, false]));
        let slim = encode_entries(fp, &flagged(&[true, true, true]));
        assert!(slim.len() < full.len());
    }

    #[test]
    fn slim_resave_is_byte_identical() {
        let fp = 17;
        let bytes = encode_entries(fp, &flagged(&[true, false, true]));
        let decoded = decode_entries(&bytes, fp).unwrap();
        assert_eq!(bytes, encode_entries(fp, &decoded));
    }

    #[test]
    fn unknown_trace_tag_is_corruption_not_panic() {
        // Flip the trace-presence flag of the first (and only) entry to
        // an undefined value, refreshing the checksum so corruption is
        // caught by the structural check, not the hash.
        let one = vec![(cell(16, 1), report(4), true)];
        let mut bytes = encode_entries(1, &one);
        let flag_pos = bytes.len() - 1; // slim flag is the final payload byte
        assert_eq!(bytes[flag_pos], 0);
        bytes[flag_pos] = 9;
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[36..44].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_entries(&bytes, 1),
            Err(PersistError::Corrupted("unknown trace tag"))
        ));
    }

    #[test]
    fn every_slim_truncation_is_rejected_without_panicking() {
        let bytes = encode_entries(1, &flagged(&[true, false, true]));
        for cut in 0..bytes.len() {
            assert!(
                decode_entries(&bytes[..cut], 1).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn slim_env_parsing() {
        // Sequential mutation of one env var; no other test in this
        // binary reads SLIM_ENV (the library never consults the
        // environment — only the bench front end does).
        for (val, want) in [
            (Some("1"), true),
            (Some("true"), true),
            (Some(" 1 "), true),
            (Some("yes"), true),
            (Some("on"), true),
            (Some("0"), false),
            (Some(""), false),
            (Some("  "), false),
            (None, false),
            // Conventional falsy tokens disable slim mode; the old
            // parser treated anything non-empty and non-"0"/"false"
            // as enabled, so VOLTASCOPE_CACHE_SLIM=off turned it ON.
            (Some("false"), false),
            (Some("False"), false),
            (Some("FALSE"), false),
            (Some("off"), false),
            (Some("Off"), false),
            (Some("OFF"), false),
            (Some("no"), false),
            (Some("No"), false),
            (Some("NO"), false),
            (Some(" off "), false),
        ] {
            match val {
                Some(v) => std::env::set_var(SLIM_ENV, v),
                None => std::env::remove_var(SLIM_ENV),
            }
            assert_eq!(slim_from_env(), want, "value {val:?}");
        }
        std::env::remove_var(SLIM_ENV);
    }

    #[test]
    fn fingerprint_tracks_calibration_changes() {
        let base = Harness::paper();
        let mut tweaked = Harness::paper();
        tweaked.sys.host_dispatch = SimSpan::from_micros(131);
        assert_eq!(
            harness_fingerprint(&base),
            harness_fingerprint(&Harness::paper())
        );
        assert_ne!(harness_fingerprint(&base), harness_fingerprint(&tweaked));
    }

    #[test]
    fn lzss_roundtrips_adversarial_patterns() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![7],
            vec![0; 100_000], // one long self-overlapping match
            (0..=255u8).cycle().take(70_000).collect(), // periodic
            (0..70_000u32)
                .map(|i| (i.wrapping_mul(0x9E37_79B1) >> 13) as u8)
                .collect(), // incompressible-ish
        ];
        for input in cases {
            let mut stream = Vec::new();
            lzss_compress(&input, &mut stream);
            let mut r = Reader {
                bytes: &stream,
                pos: 0,
            };
            let back = lzss_decompress(&mut r, input.len()).unwrap();
            assert_eq!(back, input);
            assert_eq!(r.pos, stream.len(), "whole stream must be consumed");
            // Determinism: a second compression of the same bytes is
            // identical (the re-save byte-identity contract rests on
            // this).
            let mut again = Vec::new();
            lzss_compress(&input, &mut again);
            assert_eq!(stream, again);
        }
    }

    #[test]
    fn malformed_lzss_streams_are_typed_errors() {
        // A match whose distance reaches before the start of the
        // output: raw_len 1, control byte marking token 0 a match,
        // distance 1 into an empty output.
        let block = [0x01, 0x01, 0x01, 0x00];
        assert!(matches!(
            decode_trace_block(&block),
            Err(PersistError::Corrupted(_))
        ));
        // Truncated stream: raw_len 5 but only one literal present.
        let block = [0x05, 0x00, b'a'];
        assert!(matches!(
            decode_trace_block(&block),
            Err(PersistError::Truncated)
        ));
        // Output overrun: four literals then a length-4 match would
        // produce 8 bytes against a stated raw length of 5.
        let block = [0x05, 0x10, b'a', b'b', b'c', b'd', 0x01, 0x00];
        assert!(matches!(
            decode_trace_block(&block),
            Err(PersistError::Corrupted(_))
        ));
    }

    #[test]
    fn non_canonical_string_tables_are_rejected() {
        // Build inner images by hand, wrap them in the real outer
        // framing, and check the strict table rules fire.
        let wrap = |inner: &[u8]| {
            let mut block = Vec::new();
            put_varint(&mut block, inner.len() as u64);
            lzss_compress(inner, &mut block);
            block
        };
        // Descending order: "b" then "a".
        let inner = [0x02, 0x00, 0x01, b'b', 0x00, 0x01, b'a'];
        assert!(matches!(
            decode_trace_block(&wrap(&inner)),
            Err(PersistError::Corrupted("string table out of order"))
        ));
        // Non-maximal shared prefix: "ab" then "ac" encoded with
        // shared = 0 instead of 1 ("a" < "ab" would re-encode
        // differently, so the canonical form requires shared = 1).
        let inner = [0x02, 0x00, 0x02, b'a', b'b', 0x00, 0x02, b'a', b'c'];
        assert!(matches!(
            decode_trace_block(&wrap(&inner)),
            Err(PersistError::Corrupted("string table out of order"))
        ));
        // Duplicate string: "a" twice (shared = 1, empty suffix).
        let inner = [0x02, 0x00, 0x01, b'a', 0x01, 0x00];
        assert!(matches!(
            decode_trace_block(&wrap(&inner)),
            Err(PersistError::Corrupted("string table out of order"))
        ));
        // Shared prefix longer than the previous string.
        let inner = [0x02, 0x00, 0x01, b'a', 0x02, 0x01, b'b'];
        assert!(matches!(
            decode_trace_block(&wrap(&inner)),
            Err(PersistError::Corrupted("front-coded prefix out of range"))
        ));
    }
}
