//! # Versioned on-disk snapshots of the report cache
//!
//! A snapshot file stores every completed `(Cell, EpochReport)` entry
//! of a [`GridService`](super::GridService) cache, so a later process
//! can warm-start instead of recomputing the grid. The format is
//! dependency-free (hand-rolled little-endian encoding, matching the
//! workspace's no-serde policy) and designed for **exact** round-trips:
//! every field — including `f64`s, which travel as IEEE-754 bit
//! patterns — decodes to the identical value, so tables rendered from
//! a loaded snapshot are byte-identical to a cold recompute.
//!
//! ## File layout (all integers little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"VSCPSNAP"` |
//! | 8  | 4 | format version ([`FORMAT_VERSION`]) |
//! | 12 | 8 | harness fingerprint ([`harness_fingerprint`]) |
//! | 20 | 8 | entry count |
//! | 28 | 8 | payload length in bytes |
//! | 36 | 8 | FNV-1a checksum of the payload |
//! | 44 | .. | payload: `entry count` encoded entries |
//!
//! Each entry is the cell key (enum tags as `u8`, batch/GPU count as
//! `u64`) followed by the [`EpochReport`] — stage timings, the
//! per-category API totals, and (unless the entry is *slim*, below) the
//! complete steady-state iteration trace. Entries are stored sorted by
//! their encoded cell key, so the snapshot bytes are a canonical
//! function of the cache *contents*, independent of insertion order:
//! save → load → re-save is byte-identical.
//!
//! ## Slim entries (`VOLTASCOPE_CACHE_SLIM=1`)
//!
//! The steady-state iteration traces dominate snapshot size (the full
//! artefact set persists ~100 MB, almost all of it trace events). Each
//! entry therefore carries a one-byte trace flag: `1` means the full
//! event list follows, `0` means the trace was deliberately omitted at
//! save time. [`slim_from_env`] reads the `VOLTASCOPE_CACHE_SLIM`
//! opt-out the sweep binaries honour via
//! [`GridService::save_with`](super::GridService::save_with).
//!
//! A slim entry still round-trips every *scalar* field exactly — epoch
//! and iteration times, FP+BP/WU splits, API totals, sync share,
//! utilisation — so any table derived from those fields is
//! byte-identical whether it was served from a slim or a full
//! snapshot. What a slim entry **cannot** serve is a request that
//! walks the iteration trace (idle scans, timeline renders, the fault
//! sweep's idle deltas): the loading service marks slim entries
//! distinctly and trace-needing requests recompute them instead of
//! silently rendering from an empty trace (see the service docs).
//!
//! ## Staleness policy
//!
//! A snapshot is only as valid as the simulator that produced it, so
//! two independent checks gate loading:
//!
//! * **Format version** — [`FORMAT_VERSION`] must be bumped whenever
//!   the encoding changes *or* when simulation semantics shift without
//!   a calibration change (e.g. a model-zoo or scheduler fix). A
//!   mismatch yields [`PersistError::UnsupportedVersion`].
//! * **Harness fingerprint** — a hash over the complete base
//!   [`Harness`] configuration (topology, kernel/API/NCCL cost models,
//!   host-dispatch costs, memory model, measurement protocol). Any
//!   calibration change produces a different fingerprint and the stale
//!   snapshot is rejected ([`PersistError::FingerprintMismatch`])
//!   rather than silently reused.
//!
//! Rejection is always typed and recoverable — truncated, corrupted,
//! wrong-version and wrong-fingerprint files return a [`PersistError`],
//! never panic — so callers fall back to an empty cache and recompute.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use voltascope_comm::CommMethod;
use voltascope_dnn::zoo::Workload;
use voltascope_sim::{SimSpan, SimTime, TaskId, Trace, TraceEvent};
use voltascope_train::{EpochReport, ScalingMode};

use crate::grid::{Cell, FaultScenario, Platform};
use crate::workloads::{self, WorkloadSel};
use crate::Harness;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"VSCPSNAP";

/// Current snapshot format version. Bump on any encoding change *or*
/// any simulator-semantics change not captured by the harness
/// fingerprint (see the module docs' staleness policy).
///
/// Version history: 1 — initial format; 2 — per-entry trace-presence
/// flag (slim snapshots); 3 — data workloads (tag 5 + spec name; zoo
/// tags 0..=4 unchanged); 4 — per-report critical chain (count +
/// length-prefixed labels, after the utilization field).
pub const FORMAT_VERSION: u32 = 4;

/// Environment variable that opts snapshot saves out of persisting the
/// steady-state iteration traces (`1`/anything non-zero enables slim
/// mode). Read by the sweep binaries, not by the library: explicit
/// callers pass the flag to [`encode_entries`]/[`save_entries`] or
/// [`GridService::save_with`](super::GridService::save_with).
pub const SLIM_ENV: &str = "VOLTASCOPE_CACHE_SLIM";

/// Reads the [`SLIM_ENV`] opt-out: unset, empty, or `0` means full
/// snapshots; anything else enables slim mode.
pub fn slim_from_env() -> bool {
    match std::env::var(SLIM_ENV) {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
    }
}

/// Size of the fixed header preceding the payload.
const HEADER_LEN: usize = 44;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`]: not a snapshot at all.
    BadMagic,
    /// The file is a snapshot, but of a format this build cannot read.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
    },
    /// The snapshot was produced under a different harness calibration.
    FingerprintMismatch {
        /// Fingerprint of the harness trying to load the snapshot.
        expected: u64,
        /// Fingerprint recorded in the file header.
        found: u64,
    },
    /// The file ends before the encoded data does.
    Truncated,
    /// The payload bytes do not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The payload is structurally invalid (bad enum tag, non-UTF-8
    /// string, duplicate cell, trailing bytes, ...).
    Corrupted(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a voltascope snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this build reads {FORMAT_VERSION})")
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match harness {expected:#018x} (stale calibration)"
            ),
            PersistError::Truncated => write!(f, "snapshot file is truncated"),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot payload checksum {found:#018x} does not match header {expected:#018x}"
            ),
            PersistError::Corrupted(what) => write!(f, "snapshot payload corrupted: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl PersistError {
    /// `true` when the error just means "no snapshot exists yet" — the
    /// ordinary cold-start case, as opposed to a rejected file.
    pub fn is_missing_file(&self) -> bool {
        matches!(self, PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

/// Fingerprint of a harness configuration, recorded in every snapshot
/// header. Hashes the `Debug` rendering of the full [`Harness`] — the
/// system model (topology, GPU spec, kernel/API/NCCL cost models,
/// host-dispatch and P2P-issue costs, overlap flag, straggler factors),
/// the memory model, and the measurement protocol (reps, jitter sigma,
/// seed). Deliberately conservative: any calibration change, even one
/// that could not affect cached reports, invalidates old snapshots —
/// recomputing a grid is cheap next to silently reusing stale numbers.
pub fn harness_fingerprint(harness: &Harness) -> u64 {
    fnv1a(format!("{harness:?}").as_bytes())
}

/// Encodes `entries` as a complete full-fat snapshot byte image for
/// `fingerprint` (every iteration trace persisted). Shorthand for
/// [`encode_entries`] with `slim = false` on every entry.
pub fn encode(fingerprint: u64, entries: &[(Cell, Arc<EpochReport>)]) -> Vec<u8> {
    let with_flags: Vec<(Cell, Arc<EpochReport>, bool)> = entries
        .iter()
        .map(|(c, r)| (*c, r.clone(), false))
        .collect();
    encode_entries(fingerprint, &with_flags)
}

/// Encodes `entries` with a per-entry slim flag: `true` omits that
/// entry's iteration trace from the payload (see the module docs'
/// slim-entries section).
///
/// Entries are canonicalised (sorted by encoded cell key) before
/// writing, so any permutation of the same cache encodes to identical
/// bytes.
pub fn encode_entries(fingerprint: u64, entries: &[(Cell, Arc<EpochReport>, bool)]) -> Vec<u8> {
    let mut encoded: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(cell, report, slim)| {
            let mut key = Vec::with_capacity(21);
            put_cell(&mut key, cell);
            let mut body = Vec::new();
            put_report(&mut body, report, *slim);
            (key, body)
        })
        .collect();
    encoded.sort_by(|a, b| a.0.cmp(&b.0));

    let mut payload = Vec::new();
    for (key, body) in &encoded {
        payload.extend_from_slice(key);
        payload.extend_from_slice(body);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot byte image, dropping the per-entry slim flags
/// (a slim entry decodes to a report with an empty iteration trace).
/// Use [`decode_entries`] when the flags matter.
pub fn decode(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>)>, PersistError> {
    Ok(decode_entries(bytes, expected_fingerprint)?
        .into_iter()
        .map(|(cell, report, _)| (cell, report))
        .collect())
}

/// Decodes a snapshot byte image, validating magic, version,
/// fingerprint, length and checksum before touching the payload.
/// The third tuple element is the entry's slim flag: `true` means the
/// iteration trace was omitted at save time (the decoded report
/// carries an empty trace).
pub fn decode_entries(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, bool)>, PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let found_fp = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
    if found_fp != expected_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: found_fp,
        });
    }
    let count = u64::from_le_bytes(bytes[20..28].try_into().expect("8 header bytes"));
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().expect("8 header bytes"));
    let checksum = u64::from_le_bytes(bytes[36..44].try_into().expect("8 header bytes"));
    let payload = &bytes[HEADER_LEN..];
    match (payload.len() as u64).cmp(&payload_len) {
        std::cmp::Ordering::Less => return Err(PersistError::Truncated),
        std::cmp::Ordering::Greater => {
            return Err(PersistError::Corrupted("trailing bytes after payload"))
        }
        std::cmp::Ordering::Equal => {}
    }
    let found_sum = fnv1a(payload);
    if found_sum != checksum {
        return Err(PersistError::ChecksumMismatch {
            expected: checksum,
            found: found_sum,
        });
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let mut entries = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let cell = take_cell(&mut r)?;
        if !seen.insert(cell) {
            return Err(PersistError::Corrupted("duplicate cell entry"));
        }
        let (report, slim) = take_report(&mut r)?;
        entries.push((cell, Arc::new(report), slim));
    }
    if r.pos != payload.len() {
        return Err(PersistError::Corrupted("payload longer than its entries"));
    }
    Ok(entries)
}

/// Writes a full-fat snapshot atomically (see [`save_entries`]).
pub fn save(
    path: &Path,
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>)],
) -> Result<(), PersistError> {
    write_atomic(path, &encode(fingerprint, entries))
}

/// Writes a snapshot with per-entry slim flags atomically: the image
/// is assembled in memory, written to a `.tmp` sibling, and renamed
/// into place, so a crash mid-save can never leave a half-written
/// snapshot behind (a torn write would be rejected by the checksum
/// anyway).
pub fn save_entries(
    path: &Path,
    fingerprint: u64,
    entries: &[(Cell, Arc<EpochReport>, bool)],
) -> Result<(), PersistError> {
    write_atomic(path, &encode_entries(fingerprint, entries))
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes the snapshot at `path`, dropping slim flags. A
/// missing file surfaces as `PersistError::Io` with
/// [`PersistError::is_missing_file`] true.
pub fn load(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>)>, PersistError> {
    let bytes = fs::read(path)?;
    decode(&bytes, expected_fingerprint)
}

/// Reads and decodes the snapshot at `path`, keeping per-entry slim
/// flags.
pub fn load_entries(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<Vec<(Cell, Arc<EpochReport>, bool)>, PersistError> {
    let bytes = fs::read(path)?;
    decode_entries(&bytes, expected_fingerprint)
}

/// FNV-1a over a byte slice — the workspace's standard dependency-free
/// hash (the vendored proptest uses the same constants for seeding).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- Field-level encoding ----

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_span(out: &mut Vec<u8>, s: SimSpan) {
    put_u64(out, s.as_nanos());
}

fn put_cell(out: &mut Vec<u8>, cell: &Cell) {
    // Zoo workloads keep the frozen tags 0..=4; a data workload writes
    // tag 5 followed by its spec name, so snapshots survive registry
    // reordering (the name, not the index, is authoritative on disk).
    match cell.workload {
        WorkloadSel::Zoo(w) => put_u8(
            out,
            match w {
                Workload::LeNet => 0,
                Workload::AlexNet => 1,
                Workload::GoogLeNet => 2,
                Workload::InceptionV3 => 3,
                Workload::ResNet => 4,
            },
        ),
        WorkloadSel::Data(d) => {
            put_u8(out, 5);
            put_str(out, d.name());
        }
    }
    put_u8(
        out,
        match cell.comm {
            CommMethod::P2p => 0,
            CommMethod::Nccl => 1,
        },
    );
    put_u64(out, cell.batch as u64);
    put_u64(out, cell.gpus as u64);
    put_u8(
        out,
        match cell.scaling {
            ScalingMode::Strong => 0,
            ScalingMode::Weak => 1,
        },
    );
    put_u8(
        out,
        match cell.platform {
            Platform::Dgx1 => 0,
            Platform::SingleLane => 1,
            Platform::PcieOnly => 2,
            Platform::NvSwitch => 3,
            Platform::ForwardingGpus => 4,
        },
    );
    put_u8(
        out,
        match cell.fault {
            FaultScenario::Healthy => 0,
            FaultScenario::DeadNvLink => 1,
            FaultScenario::StragglerGpu => 2,
            FaultScenario::TwoStragglers => 3,
        },
    );
}

fn put_report(out: &mut Vec<u8>, report: &EpochReport, slim: bool) {
    put_u64(out, report.iterations);
    put_span(out, report.iter_time);
    put_span(out, report.epoch_time);
    put_span(out, report.fp_bp_iter);
    put_span(out, report.wu_iter);
    put_u32(out, report.api_iter.len() as u32);
    for (category, span) in &report.api_iter {
        put_str(out, category);
        put_span(out, *span);
    }
    put_span(out, report.sync_wall_iter);
    put_u64(out, report.compute_utilization.to_bits());
    put_u32(out, report.critical_chain.len() as u32);
    for label in &report.critical_chain {
        put_str(out, label);
    }
    if slim {
        put_u8(out, 0);
        return;
    }
    put_u8(out, 1);
    let events = report.iter_trace.events();
    put_u32(out, events.len() as u32);
    for e in events {
        put_u32(out, e.task.index() as u32);
        put_str(out, &e.label);
        put_str(out, &e.category);
        match &e.resource {
            None => put_u8(out, 0),
            Some(r) => {
                put_u8(out, 1);
                put_str(out, r);
            }
        }
        put_u64(out, e.start.as_nanos());
        put_u64(out, e.end.as_nanos());
    }
}

// ---- Field-level decoding ----

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn span(&mut self) -> Result<SimSpan, PersistError> {
        Ok(SimSpan::from_nanos(self.u64()?))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupted("non-UTF-8 string"))
    }
}

fn take_cell(r: &mut Reader<'_>) -> Result<Cell, PersistError> {
    let workload = match r.u8()? {
        0 => WorkloadSel::Zoo(Workload::LeNet),
        1 => WorkloadSel::Zoo(Workload::AlexNet),
        2 => WorkloadSel::Zoo(Workload::GoogLeNet),
        3 => WorkloadSel::Zoo(Workload::InceptionV3),
        4 => WorkloadSel::Zoo(Workload::ResNet),
        5 => {
            // Resolved through the registry by name: a snapshot naming
            // a workload this process does not know is corrupt *for
            // this process* and falls back to recompute.
            let name = r.string()?;
            match workloads::find_data(&name) {
                Some(d) => WorkloadSel::Data(d),
                None => return Err(PersistError::Corrupted("unregistered data workload")),
            }
        }
        _ => return Err(PersistError::Corrupted("unknown workload tag")),
    };
    let comm = match r.u8()? {
        0 => CommMethod::P2p,
        1 => CommMethod::Nccl,
        _ => return Err(PersistError::Corrupted("unknown comm tag")),
    };
    let batch = r.u64()? as usize;
    let gpus = r.u64()? as usize;
    let scaling = match r.u8()? {
        0 => ScalingMode::Strong,
        1 => ScalingMode::Weak,
        _ => return Err(PersistError::Corrupted("unknown scaling tag")),
    };
    let platform = match r.u8()? {
        0 => Platform::Dgx1,
        1 => Platform::SingleLane,
        2 => Platform::PcieOnly,
        3 => Platform::NvSwitch,
        4 => Platform::ForwardingGpus,
        _ => return Err(PersistError::Corrupted("unknown platform tag")),
    };
    let fault = match r.u8()? {
        0 => FaultScenario::Healthy,
        1 => FaultScenario::DeadNvLink,
        2 => FaultScenario::StragglerGpu,
        3 => FaultScenario::TwoStragglers,
        _ => return Err(PersistError::Corrupted("unknown fault tag")),
    };
    Ok(Cell {
        workload,
        comm,
        batch,
        gpus,
        scaling,
        platform,
        fault,
    })
}

fn take_report(r: &mut Reader<'_>) -> Result<(EpochReport, bool), PersistError> {
    let iterations = r.u64()?;
    let iter_time = r.span()?;
    let epoch_time = r.span()?;
    let fp_bp_iter = r.span()?;
    let wu_iter = r.span()?;
    let api_len = r.u32()?;
    let mut api_iter = BTreeMap::new();
    for _ in 0..api_len {
        let category = r.string()?;
        let span = r.span()?;
        if api_iter.insert(category, span).is_some() {
            return Err(PersistError::Corrupted("duplicate api category"));
        }
    }
    let sync_wall_iter = r.span()?;
    let compute_utilization = f64::from_bits(r.u64()?);
    let chain_len = r.u32()?;
    let mut critical_chain = Vec::with_capacity(chain_len.min(1 << 16) as usize);
    for _ in 0..chain_len {
        critical_chain.push(r.string()?);
    }
    let (events, slim) = match r.u8()? {
        0 => (Vec::new(), true),
        1 => {
            let event_len = r.u32()?;
            let mut events = Vec::with_capacity(event_len.min(1 << 16) as usize);
            for _ in 0..event_len {
                let task = TaskId::from_index(r.u32()? as usize);
                let label = r.string()?;
                let category = r.string()?;
                let resource = match r.u8()? {
                    0 => None,
                    1 => Some(r.string()?),
                    _ => return Err(PersistError::Corrupted("unknown resource tag")),
                };
                let start = SimTime::from_nanos(r.u64()?);
                let end = SimTime::from_nanos(r.u64()?);
                if end < start {
                    return Err(PersistError::Corrupted("trace event ends before it starts"));
                }
                events.push(TraceEvent {
                    task,
                    label,
                    category,
                    resource,
                    start,
                    end,
                });
            }
            (events, false)
        }
        _ => return Err(PersistError::Corrupted("unknown trace tag")),
    };
    Ok((
        EpochReport {
            iterations,
            iter_time,
            epoch_time,
            fp_bp_iter,
            wu_iter,
            api_iter,
            sync_wall_iter,
            compute_utilization,
            iter_trace: Trace::new(events),
            critical_chain,
        },
        slim,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: Workload::LeNet.into(),
            comm: CommMethod::P2p,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    fn report(seed: u64) -> Arc<EpochReport> {
        let mut api_iter = BTreeMap::new();
        api_iter.insert("api.launch".to_string(), SimSpan::from_nanos(seed + 1));
        api_iter.insert("api.sync".to_string(), SimSpan::from_nanos(2 * seed + 7));
        Arc::new(EpochReport {
            iterations: seed + 3,
            iter_time: SimSpan::from_nanos(10 * seed + 5),
            epoch_time: SimSpan::from_nanos(100 * seed + 50),
            fp_bp_iter: SimSpan::from_nanos(6 * seed),
            wu_iter: SimSpan::from_nanos(4 * seed + 5),
            api_iter,
            sync_wall_iter: SimSpan::from_nanos(seed / 2),
            compute_utilization: 0.1 + (seed % 7) as f64 * 0.1,
            iter_trace: Trace::new(vec![TraceEvent {
                task: TaskId::from_index(seed as usize % 11),
                label: format!("it1/k{seed}"),
                category: "fp".to_string(),
                resource: (seed.is_multiple_of(2)).then(|| format!("GPU{}.compute", seed % 8)),
                start: SimTime::from_nanos(seed),
                end: SimTime::from_nanos(seed + 40),
            }]),
            critical_chain: vec![format!("k{seed}"), format!("sync.wu@gpu{}", seed % 8)],
        })
    }

    fn entries() -> Vec<(Cell, Arc<EpochReport>)> {
        vec![
            (cell(16, 1), report(1)),
            (cell(16, 2), report(2)),
            (cell(32, 4), report(3)),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let fp = 0xdead_beef;
        let bytes = encode(fp, &entries());
        let decoded = decode(&bytes, fp).unwrap();
        assert_eq!(decoded.len(), 3);
        for ((c0, r0), (c1, r1)) in entries().iter().zip(decoded.iter()) {
            assert_eq!(c0, c1);
            assert_eq!(r0.iterations, r1.iterations);
            assert_eq!(r0.iter_time, r1.iter_time);
            assert_eq!(r0.epoch_time, r1.epoch_time);
            assert_eq!(r0.api_iter, r1.api_iter);
            assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
        }
    }

    #[test]
    fn encoding_is_canonical_in_entry_order() {
        let fp = 7;
        let mut shuffled = entries();
        shuffled.reverse();
        assert_eq!(encode(fp, &entries()), encode(fp, &shuffled));
    }

    #[test]
    fn resave_is_byte_identical() {
        let fp = 99;
        let bytes = encode(fp, &entries());
        let decoded = decode(&bytes, fp).unwrap();
        assert_eq!(bytes, encode(fp, &decoded));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode(5, &[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        assert!(decode(&bytes, 5).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = encode(1, &entries());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 1).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut bytes = encode(1, &entries());
        bytes[8] = bytes[8].wrapping_add(1);
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn wrong_fingerprint_is_a_typed_error() {
        let bytes = encode(1, &entries());
        assert!(matches!(
            decode(&bytes, 2),
            Err(PersistError::FingerprintMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let mut bytes = encode(1, &entries());
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xa5;
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let dup = vec![(cell(16, 1), report(1)), (cell(16, 1), report(2))];
        let bytes = encode(1, &dup);
        assert!(matches!(
            decode(&bytes, 1),
            Err(PersistError::Corrupted("duplicate cell entry"))
        ));
    }

    #[test]
    fn missing_file_is_distinguishable_from_rejection() {
        let err = load(Path::new("/nonexistent/voltascope.snap"), 1).unwrap_err();
        assert!(err.is_missing_file());
        assert!(!PersistError::BadMagic.is_missing_file());
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let path = std::env::temp_dir().join(format!(
            "voltascope-persist-unit-{}.snap",
            std::process::id()
        ));
        save(&path, 42, &entries()).unwrap();
        let loaded = load(&path, 42).unwrap();
        assert_eq!(loaded.len(), 3);
        // Stale fingerprint: rejected, file untouched.
        assert!(matches!(
            load(&path, 43),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    fn flagged(slims: &[bool]) -> Vec<(Cell, Arc<EpochReport>, bool)> {
        entries()
            .into_iter()
            .zip(slims.iter().copied())
            .map(|((c, r), s)| (c, r, s))
            .collect()
    }

    #[test]
    fn slim_entries_roundtrip_scalars_and_drop_traces() {
        let fp = 0x515a;
        let bytes = encode_entries(fp, &flagged(&[true, false, true]));
        let decoded = decode_entries(&bytes, fp).unwrap();
        assert_eq!(decoded.len(), 3);
        for ((c0, r0), (c1, r1, slim)) in entries().iter().zip(decoded.iter()) {
            assert_eq!(c0, c1);
            assert_eq!(r0.iterations, r1.iterations);
            assert_eq!(r0.iter_time, r1.iter_time);
            assert_eq!(r0.epoch_time, r1.epoch_time);
            assert_eq!(r0.fp_bp_iter, r1.fp_bp_iter);
            assert_eq!(r0.wu_iter, r1.wu_iter);
            assert_eq!(r0.api_iter, r1.api_iter);
            assert_eq!(r0.sync_wall_iter, r1.sync_wall_iter);
            assert_eq!(
                r0.compute_utilization.to_bits(),
                r1.compute_utilization.to_bits()
            );
            if *slim {
                assert!(r1.iter_trace.events().is_empty());
            } else {
                assert_eq!(r0.iter_trace.events(), r1.iter_trace.events());
            }
        }
        assert_eq!(
            decoded.iter().map(|(_, _, s)| *s).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn slim_snapshot_is_smaller_than_full() {
        let fp = 3;
        let full = encode_entries(fp, &flagged(&[false, false, false]));
        let slim = encode_entries(fp, &flagged(&[true, true, true]));
        assert!(slim.len() < full.len());
    }

    #[test]
    fn slim_resave_is_byte_identical() {
        let fp = 17;
        let bytes = encode_entries(fp, &flagged(&[true, false, true]));
        let decoded = decode_entries(&bytes, fp).unwrap();
        assert_eq!(bytes, encode_entries(fp, &decoded));
    }

    #[test]
    fn unknown_trace_tag_is_corruption_not_panic() {
        // Flip the trace-presence flag of the first (and only) entry to
        // an undefined value, refreshing the checksum so corruption is
        // caught by the structural check, not the hash.
        let one = vec![(cell(16, 1), report(4), true)];
        let mut bytes = encode_entries(1, &one);
        let flag_pos = bytes.len() - 1; // slim flag is the final payload byte
        assert_eq!(bytes[flag_pos], 0);
        bytes[flag_pos] = 9;
        let sum = fnv1a(&bytes[HEADER_LEN..]);
        bytes[36..44].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_entries(&bytes, 1),
            Err(PersistError::Corrupted("unknown trace tag"))
        ));
    }

    #[test]
    fn every_slim_truncation_is_rejected_without_panicking() {
        let bytes = encode_entries(1, &flagged(&[true, false, true]));
        for cut in 0..bytes.len() {
            assert!(
                decode_entries(&bytes[..cut], 1).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn slim_env_parsing() {
        // Sequential mutation of one env var; no other test in this
        // binary reads SLIM_ENV (the library never consults the
        // environment — only the bench front end does).
        for (val, want) in [
            (Some("1"), true),
            (Some("true"), true),
            (Some(" 1 "), true),
            (Some("0"), false),
            (Some(""), false),
            (Some("  "), false),
            (None, false),
        ] {
            match val {
                Some(v) => std::env::set_var(SLIM_ENV, v),
                None => std::env::remove_var(SLIM_ENV),
            }
            assert_eq!(slim_from_env(), want, "value {val:?}");
        }
        std::env::remove_var(SLIM_ENV);
    }

    #[test]
    fn fingerprint_tracks_calibration_changes() {
        let base = Harness::paper();
        let mut tweaked = Harness::paper();
        tweaked.sys.host_dispatch = SimSpan::from_micros(131);
        assert_eq!(
            harness_fingerprint(&base),
            harness_fingerprint(&Harness::paper())
        );
        assert_ne!(harness_fingerprint(&base), harness_fingerprint(&tweaked));
    }
}
