//! # Async prioritised scheduler over the sweep service
//!
//! [`Scheduler`] is a non-blocking request front end for
//! [`GridService`]: callers [`submit`](Scheduler::submit) a cell list
//! and immediately receive a [`Ticket`] they can [`poll`](Ticket::poll),
//! [`wait`](Ticket::wait) on, or [`cancel`](Ticket::cancel), while a
//! pool of worker threads drains the cells through the service's
//! single-flight cache. Reports delivered by a ticket are the same
//! `Arc`s the blocking [`GridService::run_cells`] path returns —
//! byte-identical, because both paths share one cache and one
//! simulator.
//!
//! ## Queueing discipline
//!
//! The work queue holds one item per *unique* cell of each ticket and
//! is organised as three strict-priority bands
//! ([`Priority::High`] / [`Priority::Normal`] / [`Priority::Low`]): a
//! worker always takes from the highest non-empty band, so a flood of
//! low-priority sweep cells never delays an interactive request
//! (each such overtake is counted in
//! [`SchedStats::preemptions`]). *Within* a band, clients (the
//! [`SubmitOpts::client`] id) are served by deficit round-robin: each
//! client in turn may dequeue up to [`SchedConfig::quantum`] items
//! before the next client is served, so two clients flooding the same
//! band split the workers fairly instead of first-come-first-served
//! letting one starve the other.
//!
//! ## Critical-path-aware dispatch
//!
//! Within one client's queue, items are kept longest-expected-first by
//! a static cost rank ([`cost_rank`]: workload weight × batch × GPU
//! count), so the heaviest cell of a sweep — the makespan floor, e.g.
//! Inception-v3 at batch 64 on 8 GPUs — starts computing immediately
//! instead of landing behind dozens of LeNet cells. Set
//! [`ORDER_ENV`] (`VOLTASCOPE_SCHED_ORDER=fifo`) or
//! [`SchedConfig::cost_order`] to restore pure admission order.
//! Results are unaffected either way — reports are keyed by cell and
//! the cache is single-flight — only the completion *schedule* moves.
//!
//! Workers drain the banded queue through per-worker *slices*: a
//! worker with nothing claimed refills its slice with up to one
//! quantum of items from the highest band, and an idle worker whose
//! slice and the banded queue are both empty *steals* from the back of
//! the fullest sibling slice (counted in [`SchedStats::steals`]) —
//! so one worker's long-running cell cannot strand queued work it
//! claimed. A higher-band arrival still preempts: workers check the
//! banded queue's head against their slice head on every dispatch.
//!
//! ## Backpressure, cancellation, deadlines
//!
//! The queue is bounded by [`SchedConfig::max_depth`] *cells*; a submit
//! that would overflow it is rejected with a typed
//! [`SubmitError::QueueFull`] and no side effects, so callers can shed
//! or retry. Cancellation and deadlines are lazy and race-free:
//! [`Ticket::cancel`] resolves the ticket immediately and its
//! still-queued items are discarded when a worker dequeues them (a
//! cell already being computed is finished and cached — the work is
//! useful for future requests — but the ticket stays cancelled). A
//! per-ticket [`SubmitOpts::deadline`] is checked when each of its
//! items is dequeued: once expired, the ticket resolves to
//! [`TicketError::DeadlineExceeded`].
//!
//! ## Failure semantics
//!
//! A cell whose simulation panics (e.g. an invalid GPU count) fails
//! only the tickets that asked for it: the worker catches the unwind,
//! the service's claim guard has already reverted the claim (waiters
//! adopt-and-recompute, exactly as on the blocking path), and the
//! ticket resolves to [`TicketError::CellPanicked`] while the worker
//! thread survives to serve the next item.
//!
//! ## Accounting
//!
//! [`SchedStats`] extends [`ServiceStats`] with queue-depth, wait-time
//! and preemption counters. Ticket outcomes partition as
//! `submitted == completed + cancelled + rejected` at quiescence, with
//! `cancelled` the umbrella for every non-success resolution (explicit
//! cancels, deadline expiries — also counted in `expired` — panics —
//! also counted in `failed` — and shutdown drops). A sequential
//! submit-and-wait stream produces *identical* [`ServiceStats`] to the
//! same stream through [`GridService::run_cells`], which is what keeps
//! the async `service_demo` golden byte-identical.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use voltascope::grid::{Executor, GridSpec};
//! use voltascope::service::sched::{Priority, SchedConfig, Scheduler, SubmitOpts};
//! use voltascope::service::GridService;
//! use voltascope::Harness;
//! use voltascope_dnn::zoo::Workload;
//!
//! let service = Arc::new(GridService::with_executor(Harness::paper(), Executor::Serial));
//! let sched = Scheduler::new(Arc::clone(&service), SchedConfig::default().workers(2));
//! let cells = GridSpec::paper()
//!     .workloads([Workload::LeNet])
//!     .batches([16])
//!     .cells();
//! let ticket = sched
//!     .submit(&cells, SubmitOpts::default().priority(Priority::High))
//!     .unwrap();
//! let reports = ticket.wait().unwrap();
//! assert_eq!(reports.len(), cells.len());
//! ```

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use voltascope_train::EpochReport;

use super::{CellClass, GridService, ServiceStats};
use crate::grid::{Cell, Executor, GridOut, GridSpec};

/// Request priority band. Bands are *strict*: a worker never takes a
/// `Normal` item while a `High` item is queued, nor a `Low` item while
/// anything higher is queued. Fairness across clients applies within
/// a band (deficit round-robin), not across bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Interactive requests; always served first.
    High,
    /// The default band.
    #[default]
    Normal,
    /// Bulk sweeps; served only when the queue holds nothing else.
    Low,
}

impl Priority {
    /// All bands, highest first (the service order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn band(self) -> usize {
        self as usize
    }
}

/// Environment variable selecting the within-band dispatch order.
/// `fifo` (case-insensitive) preserves pure admission order; unset or
/// any other value keeps the default longest-expected-first cost
/// order (see [`cost_rank`]).
pub const ORDER_ENV: &str = "VOLTASCOPE_SCHED_ORDER";

/// Reads [`ORDER_ENV`]: `true` (cost order) unless the variable is
/// set to `fifo`.
pub fn cost_order_from_env() -> bool {
    cost_order_token(std::env::var(ORDER_ENV).ok().as_deref())
}

fn cost_order_token(value: Option<&str>) -> bool {
    match value {
        Some(v) => !v.trim().eq_ignore_ascii_case("fifo"),
        None => true,
    }
}

/// Static cost rank of a cell: a relative-workload weight (calibrated
/// against the simulated epoch times of the zoo CNNs — LeNet lightest,
/// VGG-16 heaviest) scaled by batch size and GPU count. Used by the
/// scheduler to serve a client's queued cells longest-expected-first,
/// so the sweep's makespan-floor cell (Inception-v3, batch 64, 8
/// GPUs on the fig3 grid) starts before the dozens of cheap cells
/// admitted ahead of it. Monotone per workload in batch and GPU
/// count; unknown data workloads rank mid-pack.
pub fn cost_rank(cell: &Cell) -> u64 {
    let weight: u64 = match cell.workload.name() {
        "LeNet" => 1,
        "AlexNet" => 6,
        "GoogLeNet" => 18,
        "ResNet" => 24,
        "GPT2-Small" => 28,
        "Inception-v3" => 32,
        "VGG-16" => 40,
        _ => 16,
    };
    weight
        .saturating_mul(cell.batch as u64)
        .saturating_mul(cell.gpus as u64)
}

/// Scheduler sizing knobs. The defaults match the blocking path's
/// executor selection (`VOLTASCOPE_THREADS`) so the two front ends are
/// interchangeable under the same environment.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Worker threads draining the queue. At least 1.
    pub workers: usize,
    /// Queue bound, in cells. A submit whose unique cells would push
    /// the depth past this limit is rejected with
    /// [`SubmitError::QueueFull`].
    pub max_depth: usize,
    /// Deficit-round-robin quantum: how many items one client may
    /// dequeue from a band before the next client is served. Also the
    /// refill size of a worker's slice.
    pub quantum: usize,
    /// When true (the default unless [`ORDER_ENV`] says `fifo`), each
    /// client's queue within a band is kept longest-expected-first by
    /// [`cost_rank`]; when false, admission order is preserved.
    /// Results are identical either way — only the schedule moves.
    pub cost_order: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: Executor::from_env().threads(),
            max_depth: 4096,
            quantum: 8,
            cost_order: cost_order_from_env(),
        }
    }
}

impl SchedConfig {
    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue bound, in cells.
    pub fn max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the deficit-round-robin quantum.
    pub fn quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Enables or disables longest-expected-first ordering within a
    /// client's band queue.
    pub fn cost_order(mut self, cost_order: bool) -> Self {
        self.cost_order = cost_order;
        self
    }
}

/// Per-submit options: priority band, client identity (the fairness
/// unit), optional deadline, and whether the caller will consume
/// iteration traces.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOpts {
    /// Priority band for every cell of this ticket.
    pub priority: Priority,
    /// Client id deficit-round-robin fairness is keyed by. Defaults
    /// to 0; callers that want per-user fairness pass distinct ids.
    pub client: u64,
    /// Optional deadline, relative to submit time. Checked lazily when
    /// each queued item is dequeued; an expired ticket resolves to
    /// [`TicketError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// When true, reports are guaranteed to carry their iteration
    /// traces (slim snapshot entries are recomputed — see
    /// [`GridService::run_cells_traced`]).
    pub traced: bool,
}

impl SubmitOpts {
    /// Sets the priority band.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the client id.
    pub fn client(mut self, client: u64) -> Self {
        self.client = client;
        self
    }

    /// Sets a deadline relative to submit time.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requires full iteration traces on the returned reports.
    pub fn traced(mut self, traced: bool) -> Self {
        self.traced = traced;
        self
    }
}

/// Why a submit was refused. Rejected submits have no side effects
/// beyond the `submitted`/`rejected` counters — nothing is enqueued
/// and no ticket exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting this ticket's unique cells would exceed the
    /// configured queue bound. Shed load or retry later.
    QueueFull {
        /// Queue depth (cells) at rejection time.
        depth: usize,
        /// The configured bound ([`SchedConfig::max_depth`]).
        max_depth: usize,
    },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { depth, max_depth } => {
                write!(f, "work queue full ({depth} cells, bound {max_depth})")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a ticket failed. Every accepted ticket resolves exactly once,
/// to either its reports or one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketError {
    /// A cell's simulation panicked (e.g. a GPU count beyond the
    /// topology). The service cache is unharmed — the claim was
    /// reverted — and the scheduler keeps running.
    CellPanicked {
        /// The offending cell.
        cell: Cell,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The ticket was cancelled via [`Ticket::cancel`].
    Cancelled,
    /// The ticket's deadline passed before its cells were served.
    DeadlineExceeded,
    /// The scheduler shut down with this ticket still queued.
    Shutdown,
}

impl fmt::Display for TicketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TicketError::CellPanicked { cell, message } => {
                write!(f, "cell {cell:?} panicked: {message}")
            }
            TicketError::Cancelled => write!(f, "ticket cancelled"),
            TicketError::DeadlineExceeded => write!(f, "ticket deadline exceeded"),
            TicketError::Shutdown => write!(f, "scheduler shut down before the ticket completed"),
        }
    }
}

impl std::error::Error for TicketError {}

/// Snapshot of a ticket's progress, from [`Ticket::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketStatus {
    /// Still in progress: this many unique cells are not yet served.
    Pending {
        /// Unique cells still queued or computing.
        remaining: usize,
    },
    /// Resolved successfully; [`Ticket::wait`] returns immediately.
    Done,
    /// Resolved to an error.
    Failed(TicketError),
}

/// A ticket's lifecycle: accumulating per-cell reports, then resolved
/// exactly once (to the assembled reports or an error).
#[derive(Debug)]
enum TicketPhase {
    Pending {
        remaining: usize,
        reports: HashMap<Cell, Arc<EpochReport>>,
    },
    Resolved(Result<Vec<Arc<EpochReport>>, TicketError>),
}

/// Shared core of a ticket: the submit metadata plus the resolution
/// state waiters park on.
#[derive(Debug)]
struct TicketInner {
    id: u64,
    client: u64,
    priority: Priority,
    traced: bool,
    deadline: Option<Instant>,
    /// The submitted cells, original order and duplicates preserved —
    /// the resolved report vector matches this, index for index.
    cells: Vec<Cell>,
    state: Mutex<TicketPhase>,
    done: Condvar,
    /// Lock-free "already resolved" flag, so workers can discard dead
    /// queue items without taking the ticket lock.
    terminal: AtomicBool,
}

impl TicketInner {
    fn lock(&self) -> MutexGuard<'_, TicketPhase> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the ticket if it has not resolved yet, running
    /// `on_first` exactly once, *inside* the state lock, when this
    /// call is the resolving one. Outcome counters are bumped in that
    /// callback so that any waiter observing the resolution (waiters
    /// take the same lock) also observes the accounting — stats can
    /// never lag behind a completed `wait`. Returns whether this call
    /// resolved the ticket.
    fn resolve(
        &self,
        result: Result<Vec<Arc<EpochReport>>, TicketError>,
        on_first: impl FnOnce(),
    ) -> bool {
        let mut state = self.lock();
        if matches!(*state, TicketPhase::Resolved(_)) {
            return false;
        }
        *state = TicketPhase::Resolved(result);
        self.terminal.store(true, Ordering::Release);
        on_first();
        drop(state);
        self.done.notify_all();
        true
    }

    /// Records one unique cell's report. When this was the last
    /// outstanding cell, the ticket resolves successfully and
    /// `on_done` runs inside the state lock (see [`Self::resolve`] for
    /// why).
    fn complete_cell(&self, cell: Cell, report: Arc<EpochReport>, on_done: impl FnOnce()) {
        let mut state = self.lock();
        let TicketPhase::Pending { remaining, reports } = &mut *state else {
            // Cancelled/expired/failed while this cell computed; the
            // report still went into the service cache.
            return;
        };
        reports.insert(cell, report);
        *remaining -= 1;
        if *remaining > 0 {
            return;
        }
        let assembled = self
            .cells
            .iter()
            .map(|c| reports[c].clone())
            .collect::<Vec<_>>();
        *state = TicketPhase::Resolved(Ok(assembled));
        self.terminal.store(true, Ordering::Release);
        on_done();
        drop(state);
        self.done.notify_all();
    }
}

/// Handle to an accepted request. Cheap to clone-free move around;
/// dropping it does *not* cancel the work (the cells still compute and
/// warm the cache).
#[derive(Debug)]
pub struct Ticket {
    inner: Arc<TicketInner>,
    shared: Arc<Shared>,
}

impl Ticket {
    /// Scheduler-unique ticket id (1-based, in submit order).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The client id this ticket was submitted under.
    pub fn client(&self) -> u64 {
        self.inner.client
    }

    /// The ticket's priority band.
    pub fn priority(&self) -> Priority {
        self.inner.priority
    }

    /// The submitted cells, original order and duplicates preserved.
    pub fn cells(&self) -> &[Cell] {
        &self.inner.cells
    }

    /// Non-blocking progress snapshot.
    pub fn poll(&self) -> TicketStatus {
        match &*self.inner.lock() {
            TicketPhase::Pending { remaining, .. } => TicketStatus::Pending {
                remaining: *remaining,
            },
            TicketPhase::Resolved(Ok(_)) => TicketStatus::Done,
            TicketPhase::Resolved(Err(e)) => TicketStatus::Failed(e.clone()),
        }
    }

    /// Blocks until the ticket resolves, returning one report per
    /// submitted cell (in submit order) or the failure.
    pub fn wait(&self) -> Result<Vec<Arc<EpochReport>>, TicketError> {
        let mut state = self.inner.lock();
        loop {
            if let TicketPhase::Resolved(result) = &*state {
                return result.clone();
            }
            state = self
                .inner
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Ticket::wait`], but gives up after `timeout`, returning
    /// `None` with the ticket still in progress.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<Vec<Arc<EpochReport>>, TicketError>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let TicketPhase::Resolved(result) = &*state {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .done
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Cancels the ticket: it resolves to [`TicketError::Cancelled`]
    /// and its still-queued cells are discarded when dequeued. Returns
    /// `true` when this call cancelled it, `false` when the ticket had
    /// already resolved (completed, failed, or previously cancelled).
    /// A cell of this ticket already being computed is finished and
    /// cached regardless — cancellation never corrupts the cache.
    pub fn cancel(&self) -> bool {
        self.inner.resolve(Err(TicketError::Cancelled), || {
            self.shared.cancelled.fetch_add(1, Ordering::Relaxed);
        })
    }
}

/// One unit of queued work: a unique cell of one ticket. `dups` is how
/// many *extra* occurrences of the cell the ticket submitted, so the
/// executing worker can account duplicates by the served class.
#[derive(Debug)]
struct Item {
    ticket: Arc<TicketInner>,
    cell: Cell,
    dups: u64,
    /// Global admission sequence number, for preemption accounting.
    seq: u64,
    /// Static dispatch rank ([`cost_rank`]), fixed at admission.
    rank: u64,
    enqueued: Instant,
}

/// One priority band: per-client FIFO queues served by deficit
/// round-robin. Invariant: `active` lists exactly the clients with a
/// non-empty queue, in service order; `deficit` holds the head
/// client's remaining quantum (entries for other clients are absent —
/// a client re-arrives with a fresh quantum).
#[derive(Debug, Default)]
struct Band {
    queues: HashMap<u64, VecDeque<Item>>,
    active: VecDeque<u64>,
    deficit: HashMap<u64, usize>,
}

impl Band {
    /// Admits an item. With `cost_order`, the client's queue is kept
    /// sorted by descending [`cost_rank`] (admission order breaks
    /// ties, so equal-rank items stay FIFO); otherwise the item is
    /// appended.
    fn push(&mut self, item: Item, cost_order: bool) {
        let client = item.ticket.client;
        let queue = self.queues.entry(client).or_default();
        if queue.is_empty() {
            self.active.push_back(client);
        }
        if cost_order {
            // Binary search for the first strictly-lower rank; equal
            // ranks insert after, preserving admission order.
            let (mut lo, mut hi) = (0, queue.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if queue[mid].rank >= item.rank {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            queue.insert(lo, item);
        } else {
            queue.push_back(item);
        }
    }

    /// Dequeues the next item under deficit round-robin: the head
    /// client of `active` is served up to `quantum` items, then
    /// rotates to the back.
    fn pop(&mut self, quantum: usize) -> Option<Item> {
        let client = *self.active.front()?;
        let deficit = self.deficit.entry(client).or_insert(quantum);
        let queue = self
            .queues
            .get_mut(&client)
            .expect("active client has a queue");
        let item = queue.pop_front().expect("active client queue non-empty");
        *deficit -= 1;
        let exhausted = *deficit == 0;
        if queue.is_empty() {
            self.queues.remove(&client);
            self.deficit.remove(&client);
            self.active.pop_front();
        } else if exhausted {
            self.deficit.remove(&client);
            self.active.rotate_left(1);
        }
        Some(item)
    }

    fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Earliest admission sequence number queued in this band, for the
    /// preemption counter. Scans whole queues because cost ordering
    /// can move the earliest-admitted item off the front.
    fn head_seq(&self) -> Option<u64> {
        self.queues
            .values()
            .flat_map(|q| q.iter().map(|i| i.seq))
            .min()
    }

    fn drain(&mut self) -> Vec<Item> {
        self.active.clear();
        self.deficit.clear();
        self.queues
            .drain()
            .flat_map(|(_, queue)| queue.into_iter())
            .collect()
    }
}

/// The bounded, banded work queue plus the per-worker slices claimed
/// out of it. All access is under one mutex; the scheduling policy
/// itself ([`WorkQueue::pop_next`], the slice refill/steal paths) is
/// pure state manipulation, unit-testable without threads.
#[derive(Debug)]
struct WorkQueue {
    bands: [Band; 3],
    /// Total queued items across all bands (items claimed into worker
    /// slices are no longer counted).
    depth: usize,
    shutdown: bool,
    /// Admission counter feeding [`Item::seq`].
    seq: u64,
    /// Within-band dispatch order (see [`SchedConfig::cost_order`]).
    cost_order: bool,
    /// Per-worker claimed runs of items: a worker refills its slice
    /// with up to one quantum from the banded queue and drains it
    /// front-to-back; idle siblings steal from the back.
    slices: Vec<VecDeque<Item>>,
}

impl WorkQueue {
    fn new(cfg: &SchedConfig) -> Self {
        WorkQueue {
            bands: std::array::from_fn(|_| Band::default()),
            depth: 0,
            shutdown: false,
            seq: 0,
            cost_order: cfg.cost_order,
            slices: (0..cfg.workers.max(1)).map(|_| VecDeque::new()).collect(),
        }
    }

    fn push(&mut self, item: Item) {
        let band = item.ticket.priority.band();
        self.bands[band].push(item, self.cost_order);
        self.depth += 1;
    }

    /// The highest non-empty band index, if any.
    fn highest_band(&self) -> Option<usize> {
        (0..self.bands.len()).find(|&b| !self.bands[b].is_empty())
    }

    /// The priority band of `worker`'s slice head, if the slice is
    /// non-empty.
    fn slice_band(&self, worker: usize) -> Option<usize> {
        self.slices[worker]
            .front()
            .map(|i| i.ticket.priority.band())
    }

    /// Pops by strict priority, deficit round-robin within the band.
    /// The flag is `true` when the popped item overtook an
    /// earlier-admitted item waiting in a lower band — a preemption in
    /// the observable-ordering sense.
    fn pop_next(&mut self, quantum: usize) -> Option<(Item, bool)> {
        for band in 0..self.bands.len() {
            if self.bands[band].is_empty() {
                continue;
            }
            let lower_head = self.bands[band + 1..]
                .iter()
                .filter_map(Band::head_seq)
                .min();
            let item = self.bands[band]
                .pop(quantum)
                .expect("band checked non-empty");
            self.depth -= 1;
            let preempted = lower_head.is_some_and(|s| s < item.seq);
            return Some((item, preempted));
        }
        None
    }

    /// Refills `worker`'s empty slice with up to `quantum` items from
    /// the highest non-empty band (never mixing bands, so the slice
    /// head's band is the slice's band). Returns how many items were
    /// claimed; dequeue/preemption accounting lands on `shared`.
    fn refill(&mut self, worker: usize, quantum: usize, shared: &Shared) -> usize {
        let Some(band) = self.highest_band() else {
            return 0;
        };
        let mut claimed = 0;
        while claimed < quantum && self.highest_band() == Some(band) {
            let (item, preempted) = self
                .pop_next(quantum)
                .expect("highest band checked non-empty");
            shared.dequeued.fetch_add(1, Ordering::Relaxed);
            if preempted {
                shared.preemptions.fetch_add(1, Ordering::Relaxed);
            }
            self.slices[worker].push_back(item);
            claimed += 1;
        }
        claimed
    }

    /// Steals one item from the back of the fullest sibling slice, for
    /// a worker whose own slice and the banded queue are both empty.
    fn steal_into(&mut self, thief: usize) -> Option<Item> {
        let victim = (0..self.slices.len())
            .filter(|&w| w != thief && !self.slices[w].is_empty())
            .max_by_key(|&w| self.slices[w].len())?;
        self.slices[victim].pop_back()
    }

    /// Drains everything — banded queue and worker slices — for
    /// shutdown. The second value is how many items came out of the
    /// *bands* (sliced items were already counted dequeued at refill).
    fn drain(&mut self) -> (Vec<Item>, usize) {
        let mut items: Vec<Item> = self.bands.iter_mut().flat_map(Band::drain).collect();
        let from_bands = items.len();
        for slice in &mut self.slices {
            items.extend(slice.drain(..));
        }
        self.depth = 0;
        (items, from_bands)
    }
}

/// State shared between the scheduler handle and its workers.
#[derive(Debug)]
struct Shared {
    service: Arc<GridService>,
    cfg: SchedConfig,
    queue: Mutex<WorkQueue>,
    work: Condvar,
    ticket_ids: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    preemptions: AtomicU64,
    steals: AtomicU64,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    peak_depth: AtomicU64,
    wait_nanos: AtomicU64,
}

impl Shared {
    fn new(service: Arc<GridService>, cfg: SchedConfig) -> Self {
        Shared {
            service,
            cfg,
            queue: Mutex::new(WorkQueue::new(&cfg)),
            work: Condvar::new(),
            ticket_ids: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            peak_depth: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, WorkQueue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counters describing a [`Scheduler`]'s traffic so far, extending the
/// underlying service's [`ServiceStats`]. Snapshot via
/// [`Scheduler::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// The underlying cache/compute counters (shared with any blocking
    /// callers of the same service).
    pub service: ServiceStats,
    /// Tickets submitted (accepted or rejected).
    pub submitted: u64,
    /// Tickets resolved successfully.
    pub completed: u64,
    /// Tickets resolved unsuccessfully — explicit cancels, deadline
    /// expiries, cell panics, shutdown drops. `failed` and `expired`
    /// break out two of those causes.
    pub cancelled: u64,
    /// Submits refused ([`SubmitError`]); no ticket existed.
    pub rejected: u64,
    /// Subset of `cancelled`: tickets failed by a panicking cell.
    pub failed: u64,
    /// Subset of `cancelled`: tickets that hit their deadline.
    pub expired: u64,
    /// Dequeues that overtook an earlier-admitted item in a lower
    /// priority band.
    pub preemptions: u64,
    /// Items an idle worker stole from the back of a sibling's claimed
    /// slice.
    pub steals: u64,
    /// Cells admitted to the queue.
    pub enqueued_cells: u64,
    /// Cells taken off the queue (executed, discarded as cancelled,
    /// expired, or drained at shutdown).
    pub dequeued_cells: u64,
    /// Current banded queue depth, in cells. Items already claimed
    /// into a worker's slice (at most workers × quantum) are not
    /// counted.
    pub queue_depth: u64,
    /// High-water queue depth, in cells.
    pub peak_queue_depth: u64,
    /// Total queue wait of executed cells, in nanoseconds.
    pub wait_nanos: u64,
}

impl SchedStats {
    /// The ticket conservation law — every submitted ticket is
    /// accounted exactly once. Holds at quiescence (no submits or
    /// resolutions in flight).
    pub fn is_balanced(&self) -> bool {
        self.submitted == self.completed + self.cancelled + self.rejected
    }

    /// Mean queue wait of executed cells; zero when nothing executed.
    pub fn mean_wait(&self) -> Duration {
        self.wait_nanos
            .checked_div(self.dequeued_cells)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

/// The async prioritised front end. See the [module docs](self).
///
/// Dropping the scheduler shuts it down: queued tickets resolve to
/// [`TicketError::Shutdown`] and the workers are joined.
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns a scheduler with `cfg.workers` threads over `service`.
    /// The service may simultaneously serve blocking callers — both
    /// paths share the cache and the single-flight discipline.
    pub fn new(service: Arc<GridService>, cfg: SchedConfig) -> Self {
        let shared = Arc::new(Shared::new(service, cfg));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("voltascope-sched-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { shared, workers }
    }

    /// The underlying service.
    pub fn service(&self) -> &Arc<GridService> {
        &self.shared.service
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> SchedConfig {
        self.shared.cfg
    }

    /// Submits `cells` as one ticket and returns immediately. The
    /// queue holds one item per *unique* cell (duplicates are served
    /// from the ticket's own results, exactly like the blocking
    /// path's claim phase); an empty submit resolves immediately.
    pub fn submit(&self, cells: &[Cell], opts: SubmitOpts) -> Result<Ticket, SubmitError> {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);

        // Dedup preserving first-occurrence order.
        let mut unique: Vec<Cell> = Vec::new();
        let mut counts: HashMap<Cell, u64> = HashMap::new();
        for &cell in cells {
            let count = counts.entry(cell).or_insert(0);
            *count += 1;
            if *count == 1 {
                unique.push(cell);
            }
        }

        let inner = Arc::new(TicketInner {
            id: self.shared.ticket_ids.fetch_add(1, Ordering::Relaxed) + 1,
            client: opts.client,
            priority: opts.priority,
            traced: opts.traced,
            deadline: opts.deadline.map(|d| Instant::now() + d),
            cells: cells.to_vec(),
            state: Mutex::new(TicketPhase::Pending {
                remaining: unique.len(),
                reports: HashMap::with_capacity(unique.len()),
            }),
            done: Condvar::new(),
            terminal: AtomicBool::new(false),
        });

        let n_unique = unique.len();
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::ShuttingDown);
            }
            if queue.depth + n_unique > self.shared.cfg.max_depth {
                let depth = queue.depth;
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    depth,
                    max_depth: self.shared.cfg.max_depth,
                });
            }
            // Accepted: this is a service request, accounted exactly
            // like the blocking path's entry into `run_cells`.
            self.shared.service.requests.fetch_add(1, Ordering::Relaxed);
            self.shared
                .service
                .cells
                .fetch_add(cells.len() as u64, Ordering::Relaxed);
            if n_unique == 0 {
                drop(queue);
                inner.resolve(Ok(Vec::new()), || {
                    self.shared.completed.fetch_add(1, Ordering::Relaxed);
                });
                return Ok(Ticket {
                    inner,
                    shared: Arc::clone(&self.shared),
                });
            }
            let now = Instant::now();
            for cell in unique {
                queue.seq += 1;
                let seq = queue.seq;
                queue.push(Item {
                    ticket: Arc::clone(&inner),
                    cell,
                    dups: counts[&cell] - 1,
                    seq,
                    rank: cost_rank(&cell),
                    enqueued: now,
                });
            }
            self.shared
                .enqueued
                .fetch_add(n_unique as u64, Ordering::Relaxed);
            self.shared
                .peak_depth
                .fetch_max(queue.depth as u64, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        Ok(Ticket {
            inner,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Runs a full declarative sweep through the async path with
    /// default options, blocking for the result — a drop-in for
    /// [`GridService::sweep`] that exercises the ticket machinery.
    ///
    /// # Panics
    ///
    /// Panics when the ticket fails (mirroring the blocking sweep,
    /// which panics on a poisonous cell) or is rejected.
    pub fn sweep(&self, spec: &GridSpec) -> GridOut<Arc<EpochReport>> {
        self.sweep_opts(spec, SubmitOpts::default())
    }

    /// [`Scheduler::sweep`] with explicit submit options.
    ///
    /// # Panics
    ///
    /// Panics when the ticket fails or is rejected.
    pub fn sweep_opts(&self, spec: &GridSpec, opts: SubmitOpts) -> GridOut<Arc<EpochReport>> {
        let cells = spec.cells();
        let ticket = self
            .submit(&cells, opts)
            .unwrap_or_else(|e| panic!("async sweep rejected: {e}"));
        let reports = ticket
            .wait()
            .unwrap_or_else(|e| panic!("async sweep failed: {e}"));
        GridOut::from_parts(cells, reports)
    }

    /// Current queue depth, in cells.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_queue().depth
    }

    /// Snapshot of the scheduler counters (plus the underlying
    /// service's).
    pub fn stats(&self) -> SchedStats {
        let queue_depth = self.shared.lock_queue().depth as u64;
        SchedStats {
            service: self.shared.service.stats(),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            preemptions: self.shared.preemptions.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            enqueued_cells: self.shared.enqueued.load(Ordering::Relaxed),
            dequeued_cells: self.shared.dequeued.load(Ordering::Relaxed),
            queue_depth,
            peak_queue_depth: self.shared.peak_depth.load(Ordering::Relaxed),
            wait_nanos: self.shared.wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// Shuts the scheduler down explicitly (also done on drop): stops
    /// admission, resolves every queued ticket to
    /// [`TicketError::Shutdown`], and joins the workers. An item
    /// already being computed is finished first.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let (drained, from_bands) = {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                (Vec::new(), 0)
            } else {
                queue.shutdown = true;
                queue.drain()
            }
        };
        self.shared.work.notify_all();
        self.shared
            .dequeued
            .fetch_add(from_bands as u64, Ordering::Relaxed);
        for item in drained {
            item.ticket.resolve(Err(TicketError::Shutdown), || {
                self.shared.cancelled.fetch_add(1, Ordering::Relaxed);
            });
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl GridService {
    /// Consumes the service into an async [`Scheduler`] front end.
    /// Shorthand for `Scheduler::new(Arc::new(self), cfg)`; use
    /// [`Scheduler::new`] directly to keep blocking access to the
    /// shared service alongside the scheduler.
    pub fn into_scheduler(self, cfg: SchedConfig) -> Scheduler {
        Scheduler::new(Arc::new(self), cfg)
    }
}

/// Worker body: dequeue, execute, repeat until shutdown drains the
/// queue.
fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(item) = next_item(shared, worker) {
        execute(shared, item);
    }
}

/// What [`pop_runnable`] found for a worker.
enum PopOutcome {
    /// A live item, ready to execute.
    Item(Item),
    /// An item whose ticket's deadline has passed; the caller must
    /// resolve the ticket outside the queue lock.
    Expired(Item),
    /// Nothing runnable anywhere: bands, own slice, and sibling
    /// slices are all empty.
    Idle,
}

/// One dispatch decision for `worker`, under the queue lock. In order:
/// take from the banded queue when its head band strictly outranks the
/// worker's slice head (refilling the slice when it is empty), else
/// drain the own slice, else steal from the fullest sibling slice.
/// Dead (terminal-ticket) items are discarded along the way.
fn pop_runnable(shared: &Shared, queue: &mut WorkQueue, worker: usize) -> PopOutcome {
    loop {
        let slice_band = queue.slice_band(worker);
        let take_global = match (queue.highest_band(), slice_band) {
            (Some(global), Some(own)) => global < own,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let item = if take_global {
            if slice_band.is_none() {
                let claimed = queue.refill(worker, shared.cfg.quantum, shared);
                if claimed > 1 {
                    // The slice now holds stealable surplus; wake any
                    // parked sibling to come take it.
                    shared.work.notify_all();
                }
                queue.slices[worker].pop_front()
            } else {
                // Execution-time preemption: a higher band arrived
                // after this slice was claimed — serve it first.
                let (item, preempted) = queue
                    .pop_next(shared.cfg.quantum)
                    .expect("highest band checked non-empty");
                shared.dequeued.fetch_add(1, Ordering::Relaxed);
                if preempted {
                    shared.preemptions.fetch_add(1, Ordering::Relaxed);
                }
                Some(item)
            }
        } else if slice_band.is_some() {
            queue.slices[worker].pop_front()
        } else {
            let stolen = queue.steal_into(worker);
            if stolen.is_some() {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            stolen
        };
        let Some(item) = item else {
            return PopOutcome::Idle;
        };
        if item.ticket.terminal.load(Ordering::Acquire) {
            // Cancelled, expired, or failed while queued: discard
            // without executing.
            continue;
        }
        if let Some(deadline) = item.ticket.deadline {
            if Instant::now() >= deadline {
                return PopOutcome::Expired(item);
            }
        }
        return PopOutcome::Item(item);
    }
}

/// Blocks for the next live item. Discards items of already-resolved
/// tickets and expires deadline-passed tickets along the way; returns
/// `None` only at shutdown with nothing left runnable.
fn next_item(shared: &Shared, worker: usize) -> Option<Item> {
    let mut queue = shared.lock_queue();
    loop {
        match pop_runnable(shared, &mut queue, worker) {
            PopOutcome::Item(item) => {
                shared
                    .wait_nanos
                    .fetch_add(item.enqueued.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return Some(item);
            }
            PopOutcome::Expired(item) => {
                // Resolve outside the queue lock; other workers keep
                // draining meanwhile.
                drop(queue);
                item.ticket.resolve(Err(TicketError::DeadlineExceeded), || {
                    shared.cancelled.fetch_add(1, Ordering::Relaxed);
                    shared.expired.fetch_add(1, Ordering::Relaxed);
                });
                queue = shared.lock_queue();
            }
            PopOutcome::Idle => {
                if queue.shutdown {
                    return None;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// Executes one item through the service's single-flight cache,
/// catching panics so a poisonous cell fails its ticket, not the
/// worker.
fn execute(shared: &Shared, item: Item) {
    let service = &shared.service;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        service.cell_report(item.cell, item.ticket.traced)
    }));
    match outcome {
        Ok((report, class)) => {
            if item.dups > 0 {
                // Duplicates of this cell within the ticket inherit
                // the first occurrence's class, mirroring the blocking
                // claim phase: duplicates of a freshly computed cell
                // are intra-request repeats, duplicates of a hit or a
                // coalesced wait are more of the same.
                let counter = match class {
                    CellClass::Hit => &service.hits,
                    CellClass::Coalesced => &service.coalesced,
                    CellClass::Computed => &service.repeats,
                };
                counter.fetch_add(item.dups, Ordering::Relaxed);
            }
            item.ticket.complete_cell(item.cell, report, || {
                shared.completed.fetch_add(1, Ordering::Relaxed);
            });
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            let failure = TicketError::CellPanicked {
                cell: item.cell,
                message,
            };
            item.ticket.resolve(Err(failure), || {
                shared.cancelled.fetch_add(1, Ordering::Relaxed);
                shared.failed.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{FaultScenario, Platform};
    use crate::Harness;
    use voltascope_comm::CommMethod;
    use voltascope_dnn::zoo::Workload;
    use voltascope_train::ScalingMode;

    fn lenet_cell(batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: Workload::LeNet.into(),
            comm: CommMethod::P2p,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    fn bare_ticket(client: u64, priority: Priority) -> Arc<TicketInner> {
        Arc::new(TicketInner {
            id: 0,
            client,
            priority,
            traced: false,
            deadline: None,
            cells: Vec::new(),
            state: Mutex::new(TicketPhase::Pending {
                remaining: 0,
                reports: HashMap::new(),
            }),
            done: Condvar::new(),
            terminal: AtomicBool::new(false),
        })
    }

    fn item_for(ticket: &Arc<TicketInner>, seq: u64, cell: Cell) -> Item {
        Item {
            ticket: Arc::clone(ticket),
            cell,
            dups: 0,
            seq,
            rank: cost_rank(&cell),
            enqueued: Instant::now(),
        }
    }

    fn item(ticket: &Arc<TicketInner>, seq: u64) -> Item {
        item_for(ticket, seq, lenet_cell(seq as usize + 1, 1))
    }

    fn queue_with(cost_order: bool) -> WorkQueue {
        WorkQueue::new(&SchedConfig::default().workers(2).cost_order(cost_order))
    }

    #[test]
    fn drr_alternates_between_clients_in_quantum_bursts() {
        let mut queue = queue_with(false);
        let a = bare_ticket(1, Priority::Normal);
        let b = bare_ticket(2, Priority::Normal);
        // Interleave admission; DRR must still serve quantum-sized
        // bursts per client, not admission order.
        for seq in 0..8 {
            let ticket = if seq % 2 == 0 { &a } else { &b };
            queue.push(item(ticket, seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next(2))
            .map(|(item, _)| item.ticket.client)
            .collect();
        assert_eq!(order, vec![1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn drr_drops_deficit_when_a_client_empties() {
        let mut queue = queue_with(false);
        let a = bare_ticket(1, Priority::Normal);
        let b = bare_ticket(2, Priority::Normal);
        queue.push(item(&a, 0)); // one item only
        queue.push(item(&b, 1));
        queue.push(item(&b, 2));
        queue.push(item(&b, 3));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next(4))
            .map(|(item, _)| item.ticket.client)
            .collect();
        // Client 1 empties mid-quantum; client 2 takes over cleanly.
        assert_eq!(order, vec![1, 2, 2, 2]);
        assert_eq!(queue.depth, 0);
    }

    #[test]
    fn strict_priority_overtakes_and_flags_preemption() {
        let mut queue = queue_with(true);
        let low = bare_ticket(1, Priority::Low);
        let high = bare_ticket(2, Priority::High);
        let normal = bare_ticket(3, Priority::Normal);
        queue.push(item(&low, 1)); // admitted first
        queue.push(item(&normal, 2));
        queue.push(item(&high, 3)); // admitted last, served first
        let (first, preempted) = queue.pop_next(8).unwrap();
        assert_eq!(first.ticket.client, 2);
        assert!(preempted, "high overtook earlier low/normal items");
        let (second, preempted) = queue.pop_next(8).unwrap();
        assert_eq!(second.ticket.client, 3);
        assert!(preempted, "normal still overtook the earlier low item");
        let (third, preempted) = queue.pop_next(8).unwrap();
        assert_eq!(third.ticket.client, 1);
        assert!(!preempted, "nothing left to overtake");
        assert!(queue.pop_next(8).is_none());
    }

    fn cell_of(workload: Workload, batch: usize, gpus: usize) -> Cell {
        Cell {
            workload: workload.into(),
            comm: CommMethod::Nccl,
            batch,
            gpus,
            scaling: ScalingMode::Strong,
            platform: Platform::Dgx1,
            fault: FaultScenario::Healthy,
        }
    }

    #[test]
    fn cost_rank_scales_with_workload_batch_and_gpus() {
        let base = cost_rank(&cell_of(Workload::LeNet, 16, 1));
        assert_eq!(base, 16);
        // Heavier workload, bigger batch, more GPUs all rank higher.
        assert!(cost_rank(&cell_of(Workload::ResNet, 16, 1)) > base);
        assert!(cost_rank(&cell_of(Workload::LeNet, 64, 1)) > base);
        assert!(cost_rank(&cell_of(Workload::LeNet, 16, 8)) > base);
        // The fig3 makespan floor outranks every other zoo cell.
        let floor = cost_rank(&cell_of(Workload::InceptionV3, 64, 8));
        for w in Workload::ALL {
            for batch in [16, 32, 64] {
                for gpus in 1..=8 {
                    let cell = cell_of(w, batch, gpus);
                    if cell != cell_of(Workload::InceptionV3, 64, 8) {
                        assert!(cost_rank(&cell) < floor, "{w:?} b{batch} g{gpus}");
                    }
                }
            }
        }
    }

    #[test]
    fn sched_order_env_tokens() {
        assert!(cost_order_token(None), "unset means cost order");
        assert!(!cost_order_token(Some("fifo")));
        assert!(!cost_order_token(Some("FIFO")));
        assert!(!cost_order_token(Some(" fifo ")));
        assert!(cost_order_token(Some("cost")));
        assert!(cost_order_token(Some("")));
    }

    #[test]
    fn cost_order_serves_heaviest_first_within_a_client() {
        let mut queue = queue_with(true);
        let t = bare_ticket(1, Priority::Normal);
        // Admit cheap → heaviest → middling; service order is by rank.
        queue.push(item_for(&t, 1, cell_of(Workload::LeNet, 16, 1)));
        queue.push(item_for(&t, 2, cell_of(Workload::InceptionV3, 64, 8)));
        queue.push(item_for(&t, 3, cell_of(Workload::ResNet, 32, 2)));
        let order: Vec<Workload> = std::iter::from_fn(|| queue.pop_next(8))
            .map(|(i, _)| i.cell.workload.zoo().unwrap())
            .collect();
        assert_eq!(
            order,
            vec![Workload::InceptionV3, Workload::ResNet, Workload::LeNet]
        );
    }

    #[test]
    fn fifo_mode_preserves_admission_and_equal_ranks_stay_fifo() {
        // fifo mode: admission order wins even against a heavy cell.
        let mut queue = queue_with(false);
        let t = bare_ticket(1, Priority::Normal);
        queue.push(item_for(&t, 1, cell_of(Workload::LeNet, 16, 1)));
        queue.push(item_for(&t, 2, cell_of(Workload::InceptionV3, 64, 8)));
        let (first, _) = queue.pop_next(8).unwrap();
        assert_eq!(first.seq, 1);

        // cost mode: equal ranks tie-break by admission order.
        let mut queue = queue_with(true);
        queue.push(item_for(&t, 10, cell_of(Workload::AlexNet, 32, 4)));
        queue.push(item_for(&t, 11, cell_of(Workload::AlexNet, 32, 4)));
        let (first, _) = queue.pop_next(8).unwrap();
        let (second, _) = queue.pop_next(8).unwrap();
        assert_eq!((first.seq, second.seq), (10, 11));
    }

    #[test]
    fn submit_wait_matches_the_blocking_path() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let blocking = GridService::with_executor(Harness::paper(), Executor::Serial);
        let cells = [lenet_cell(16, 1), lenet_cell(16, 2), lenet_cell(16, 1)];
        let sched = Scheduler::new(Arc::clone(&service), SchedConfig::default().workers(1));
        let ticket = sched.submit(&cells, SubmitOpts::default()).unwrap();
        let async_reports = ticket.wait().unwrap();
        let blocking_reports = blocking.run_cells(&cells);
        assert_eq!(async_reports.len(), 3);
        for (a, b) in async_reports.iter().zip(blocking_reports.iter()) {
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.epoch_time, b.epoch_time);
            assert_eq!(a.iter_trace.events(), b.iter_trace.events());
        }
        // Duplicate handling: same Arc for both occurrences.
        assert!(Arc::ptr_eq(&async_reports[0], &async_reports[2]));
        // Stat parity with the blocking request, including the repeat.
        assert_eq!(service.stats(), blocking.stats());
        let stats = sched.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.is_balanced());
        assert_eq!(stats.enqueued_cells, 2);
        assert_eq!(stats.dequeued_cells, 2);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn empty_submit_resolves_immediately() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = Scheduler::new(service, SchedConfig::default().workers(1));
        let ticket = sched.submit(&[], SubmitOpts::default()).unwrap();
        assert_eq!(ticket.poll(), TicketStatus::Done);
        assert!(ticket.wait().unwrap().is_empty());
        let stats = sched.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.service.requests, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn zero_capacity_queue_rejects_with_queue_full() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = Scheduler::new(service, SchedConfig::default().workers(1).max_depth(0));
        let err = sched
            .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                depth: 0,
                max_depth: 0
            }
        );
        let stats = sched.stats();
        assert_eq!(stats.rejected, 1);
        assert!(stats.is_balanced());
        // A rejected submit is not a service request.
        assert_eq!(stats.service.requests, 0);
    }

    /// A scheduler with no worker threads: submitted items stay
    /// queued, making queue-state transitions fully deterministic.
    fn workerless(service: Arc<GridService>) -> Scheduler {
        workerless_with(service, SchedConfig::default())
    }

    fn workerless_with(service: Arc<GridService>, cfg: SchedConfig) -> Scheduler {
        Scheduler {
            shared: Arc::new(Shared::new(service, cfg)),
            workers: Vec::new(),
        }
    }

    #[test]
    fn shutdown_resolves_queued_tickets_without_executing() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = workerless(Arc::clone(&service));
        let ticket = sched
            .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
            .unwrap();
        assert_eq!(ticket.poll(), TicketStatus::Pending { remaining: 1 });
        assert_eq!(sched.queue_depth(), 1);
        sched.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), TicketError::Shutdown);
        assert_eq!(ticket.poll(), TicketStatus::Failed(TicketError::Shutdown));
        assert_eq!(service.stats().computed, 0, "drained, never executed");
    }

    #[test]
    fn cancel_is_exactly_once_and_queued_work_is_discarded() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = workerless(Arc::clone(&service));
        let ticket = sched
            .submit(
                &[lenet_cell(16, 1), lenet_cell(16, 2)],
                SubmitOpts::default(),
            )
            .unwrap();
        assert!(ticket.cancel());
        assert!(!ticket.cancel(), "second cancel is a no-op");
        assert_eq!(ticket.wait().unwrap_err(), TicketError::Cancelled);
        // A worker dequeuing the dead items discards them unexecuted.
        let shared = Arc::clone(&sched.shared);
        let first = next_item_nonblocking(&shared, 0);
        assert!(first.is_none(), "terminal ticket items are discarded");
        let stats = sched.stats();
        assert_eq!(stats.cancelled, 1);
        assert!(stats.is_balanced());
        assert_eq!(stats.dequeued_cells, 2, "both items consumed as dead");
        assert_eq!(service.stats().computed, 0);
    }

    /// Drains the queue like `worker` would — same dispatch policy,
    /// including slice refill and stealing — but returns `None`
    /// instead of parking when nothing is runnable.
    fn next_item_nonblocking(shared: &Shared, worker: usize) -> Option<Item> {
        let mut queue = shared.lock_queue();
        loop {
            match pop_runnable(shared, &mut queue, worker) {
                PopOutcome::Item(item) => return Some(item),
                PopOutcome::Expired(item) => {
                    drop(queue);
                    item.ticket.resolve(Err(TicketError::DeadlineExceeded), || {
                        shared.cancelled.fetch_add(1, Ordering::Relaxed);
                        shared.expired.fetch_add(1, Ordering::Relaxed);
                    });
                    queue = shared.lock_queue();
                }
                PopOutcome::Idle => return None,
            }
        }
    }

    #[test]
    fn idle_worker_steals_from_a_sibling_slice() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = workerless_with(
            Arc::clone(&service),
            SchedConfig::default()
                .workers(2)
                .quantum(8)
                .cost_order(true),
        );
        let cells: Vec<Cell> = (1..=4).map(|b| lenet_cell(16 * b, 1)).collect();
        sched.submit(&cells, SubmitOpts::default()).unwrap();
        let shared = Arc::clone(&sched.shared);
        // Worker 0's first dispatch claims the whole submit into its
        // slice; cost order puts the heaviest cell first.
        let first = next_item_nonblocking(&shared, 0).expect("worker 0 dispatches");
        assert_eq!(first.cell.batch, 64);
        // Worker 1 finds the bands empty and steals the cheapest item
        // from the back of worker 0's slice.
        let stolen = next_item_nonblocking(&shared, 1).expect("worker 1 steals");
        assert_eq!(stolen.cell.batch, 16);
        let stats = sched.stats();
        assert_eq!(stats.steals, 1);
        assert_eq!(stats.queue_depth, 0, "everything claimed out of the bands");
        assert_eq!(stats.dequeued_cells, 4, "refill counted all four");
        // Worker 0 keeps draining its own slice in rank order.
        let next = next_item_nonblocking(&shared, 0).expect("worker 0 continues");
        assert_eq!(next.cell.batch, 48);
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let service = Arc::new(GridService::with_executor(
            Harness::paper(),
            Executor::Serial,
        ));
        let sched = workerless(service);
        let ticket = sched
            .submit(&[lenet_cell(16, 1)], SubmitOpts::default())
            .unwrap();
        assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());
        ticket.cancel();
        let resolved = ticket.wait_timeout(Duration::from_millis(5));
        assert_eq!(resolved.unwrap().unwrap_err(), TicketError::Cancelled);
    }

    #[test]
    fn priorities_order_and_default() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::ALL[0].band(), 0);
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
    }
}
