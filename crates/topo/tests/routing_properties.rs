//! Property-based tests of routing over randomly generated topologies.

use proptest::prelude::*;
use voltascope_topo::{Device, LinkKind, Topology};

/// Builds a random but always-connected topology: one CPU as PCIe root
/// for every GPU, plus random NVLink edges.
fn arb_topology() -> impl Strategy<Value = (u8, Vec<(u8, u8, u8)>)> {
    (2u8..8).prop_flat_map(|gpus| {
        (
            Just(gpus),
            proptest::collection::vec((0u8..gpus, 0u8..gpus, 1u8..3), 0..16),
        )
    })
}

fn build(gpus: u8, edges: &[(u8, u8, u8)]) -> Topology {
    let mut t = Topology::new("fuzz");
    t.add_device(Device::cpu(0));
    for g in 0..gpus {
        t.add_device(Device::gpu(g));
        t.connect(Device::gpu(g), Device::cpu(0), LinkKind::Pcie);
    }
    for &(a, b, lanes) in edges {
        if a != b {
            t.connect(
                Device::gpu(a),
                Device::gpu(b),
                LinkKind::NvLink {
                    lanes: lanes as u32,
                },
            );
        }
    }
    t
}

proptest! {
    /// Routes always exist (the PCIe tree guarantees connectivity),
    /// start and end at the right devices, and cross only CPU relays.
    #[test]
    fn routes_are_valid((gpus, edges) in arb_topology()) {
        let t = build(gpus, &edges);
        for a in 0..gpus {
            for b in 0..gpus {
                let (src, dst) = (Device::gpu(a), Device::gpu(b));
                let route = t.route(src, dst);
                prop_assert_eq!(route.src, src);
                prop_assert_eq!(route.dst, dst);
                if a == b {
                    prop_assert_eq!(route.hop_count(), 0);
                    continue;
                }
                // Intermediate devices must be CPUs (GPUs don't forward).
                for hop in &route.hops()[..route.hop_count().saturating_sub(1)] {
                    prop_assert!(
                        hop.to.is_cpu() || hop.to == dst,
                        "GPU relay in hardware route: {}",
                        route
                    );
                }
                // A direct NVLink always wins over the host bounce.
                if t.p2p_capable(src, dst) {
                    prop_assert!(route.is_direct_nvlink());
                }
            }
        }
    }

    /// Relay candidates really do neighbour both endpoints over NVLink.
    #[test]
    fn relay_candidates_are_common_neighbors((gpus, edges) in arb_topology()) {
        let t = build(gpus, &edges);
        for a in 0..gpus {
            for b in 0..gpus {
                if a == b {
                    continue;
                }
                for relay in t.relay_candidates(Device::gpu(a), Device::gpu(b)) {
                    prop_assert!(t.p2p_capable(Device::gpu(a), relay));
                    prop_assert!(t.p2p_capable(relay, Device::gpu(b)));
                    prop_assert!(relay != Device::gpu(a) && relay != Device::gpu(b));
                }
            }
        }
    }

    /// Transfer time over any route is monotone in payload size and at
    /// least the bottleneck-bandwidth bound.
    #[test]
    fn transfer_time_monotone_and_bounded((gpus, edges) in arb_topology()) {
        let t = build(gpus, &edges);
        let route = t.route(Device::gpu(0), Device::gpu(gpus - 1));
        if route.hop_count() == 0 {
            return Ok(());
        }
        let small = route.transfer_time(1 << 10);
        let large = route.transfer_time(1 << 24);
        prop_assert!(large > small);
        let bound = route
            .bottleneck_bandwidth()
            .unwrap()
            .transfer_time(1 << 24);
        prop_assert!(large >= bound);
    }

    /// Rings built over random fabrics visit each GPU exactly once.
    #[test]
    fn rings_are_permutations((gpus, edges) in arb_topology()) {
        let t = build(gpus, &edges);
        let ring = voltascope_comm::Ring::build(&t, gpus as usize);
        let mut seen: Vec<Device> = ring.devices().to_vec();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), gpus as usize);
    }
}
