//! Devices: the vertices of a topology graph.

use std::fmt;

/// What kind of hardware a [`Device`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// A GPU. NVLink endpoints; cannot forward traffic for third parties
    /// under the DGX-1 hardware routing rules.
    Gpu,
    /// A CPU socket. PCIe root; forwards traffic between its PCIe
    /// devices and, over QPI, to the other socket.
    Cpu,
}

/// A device in a topology: kind plus an index within that kind
/// (`gpu(3)`, `cpu(1)`).
///
/// # Example
///
/// ```
/// use voltascope_topo::Device;
///
/// let d = Device::gpu(3);
/// assert!(d.is_gpu());
/// assert_eq!(d.to_string(), "GPU3");
/// assert_eq!(Device::cpu(1).to_string(), "CPU1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Device {
    kind: DeviceKind,
    index: u8,
}

impl Device {
    /// GPU number `index`.
    pub const fn gpu(index: u8) -> Self {
        Device {
            kind: DeviceKind::Gpu,
            index,
        }
    }

    /// CPU socket number `index`.
    pub const fn cpu(index: u8) -> Self {
        Device {
            kind: DeviceKind::Cpu,
            index,
        }
    }

    /// The device's kind.
    pub fn kind(self) -> DeviceKind {
        self.kind
    }

    /// The device's index within its kind.
    pub fn index(self) -> u8 {
        self.index
    }

    /// `true` for GPUs.
    pub fn is_gpu(self) -> bool {
        self.kind == DeviceKind::Gpu
    }

    /// `true` for CPUs.
    pub fn is_cpu(self) -> bool {
        self.kind == DeviceKind::Cpu
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DeviceKind::Gpu => write!(f, "GPU{}", self.index),
            DeviceKind::Cpu => write!(f, "CPU{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let g = Device::gpu(7);
        assert_eq!(g.kind(), DeviceKind::Gpu);
        assert_eq!(g.index(), 7);
        assert!(g.is_gpu());
        assert!(!g.is_cpu());
        assert!(Device::cpu(0).is_cpu());
    }

    #[test]
    fn ordering_groups_by_kind_then_index() {
        let mut v = vec![Device::cpu(0), Device::gpu(1), Device::gpu(0)];
        v.sort();
        assert_eq!(v, vec![Device::gpu(0), Device::gpu(1), Device::cpu(0)]);
    }
}
