//! Bandwidth as a strong type.

use std::fmt;
use std::ops::{Add, Mul};

use voltascope_sim::SimSpan;

/// Unidirectional link bandwidth.
///
/// Stored internally as bytes per second. The main operation is
/// [`Bandwidth::transfer_time`], which converts a payload size into a
/// [`SimSpan`] for the simulator.
///
/// # Example
///
/// ```
/// use voltascope_topo::Bandwidth;
///
/// let nvlink = Bandwidth::gigabytes_per_sec_of(25.0);
/// // 25 MB over a 25 GB/s lane takes 1 ms.
/// assert_eq!(nvlink.transfer_time(25_000_000).as_micros(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth of `bps` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not strictly positive and finite — a
    /// zero-bandwidth link would produce infinite transfer times and is
    /// always a configuration bug.
    pub fn bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be positive and finite, got {bps}"
        );
        Bandwidth(bps)
    }

    /// Creates a bandwidth of `gbps` gigabytes (1e9 bytes) per second.
    pub fn gigabytes_per_sec_of(gbps: f64) -> Self {
        Bandwidth::bytes_per_sec(gbps * 1e9)
    }

    /// This bandwidth in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// This bandwidth in gigabytes per second.
    pub fn gigabytes_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Serialisation time for a payload of `bytes`, excluding latency.
    pub fn transfer_time(self, bytes: u64) -> SimSpan {
        SimSpan::from_secs_f64(bytes as f64 / self.0)
    }

    /// The smaller of two bandwidths (the bottleneck along a path).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    /// Aggregates parallel lanes (e.g. a double NVLink connection).
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<u32> for Bandwidth {
    type Output = Bandwidth;
    /// `n` parallel lanes of this bandwidth.
    fn mul(self, lanes: u32) -> Bandwidth {
        assert!(lanes > 0, "a link needs at least one lane");
        Bandwidth(self.0 * lanes as f64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.gigabytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = Bandwidth::gigabytes_per_sec_of(1.0);
        assert_eq!(bw.transfer_time(1_000_000_000).as_millis(), 1_000);
        assert_eq!(bw.transfer_time(0), SimSpan::ZERO);
    }

    #[test]
    fn lanes_aggregate() {
        let lane = Bandwidth::gigabytes_per_sec_of(25.0);
        assert_eq!((lane * 2).gigabytes_per_sec(), 50.0);
        assert_eq!((lane + lane).gigabytes_per_sec(), 50.0);
    }

    #[test]
    fn min_picks_bottleneck() {
        let a = Bandwidth::gigabytes_per_sec_of(16.0);
        let b = Bandwidth::gigabytes_per_sec_of(25.0);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn display_uses_gigabytes() {
        assert_eq!(
            Bandwidth::gigabytes_per_sec_of(25.0).to_string(),
            "25.0 GB/s"
        );
    }
}
