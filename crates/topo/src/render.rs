//! Human-readable renderings of a topology: a connectivity matrix in
//! the style of `nvidia-smi topo -m`, and Graphviz DOT export
//! (regenerates the paper's Fig. 2).

use std::fmt::Write as _;

use crate::device::Device;
use crate::link::LinkKind;
use crate::topology::Topology;

impl Topology {
    /// Renders a GPU-to-GPU connectivity matrix like `nvidia-smi topo
    /// -m`: `NV1`/`NV2` for single/double NVLink, `SYS` for routes that
    /// traverse the host, `X` on the diagonal.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_topo::dgx1_v100;
    ///
    /// let matrix = dgx1_v100().connectivity_matrix();
    /// assert!(matrix.contains("NV2"));
    /// assert!(matrix.contains("SYS"));
    /// ```
    pub fn connectivity_matrix(&self) -> String {
        let gpus = self.gpus();
        let mut out = String::new();
        write!(out, "{:6}", "").unwrap();
        for g in &gpus {
            write!(out, "{:>6}", g.to_string()).unwrap();
        }
        out.push('\n');
        for &a in &gpus {
            write!(out, "{:6}", a.to_string()).unwrap();
            for &b in &gpus {
                let cell = if a == b {
                    "X".to_string()
                } else {
                    match self.direct_link(a, b).map(|l| l.kind) {
                        Some(LinkKind::NvLink { lanes }) => format!("NV{lanes}"),
                        Some(LinkKind::Pcie) => "PIX".to_string(),
                        Some(LinkKind::Qpi) => "SYS".to_string(),
                        None => "SYS".to_string(),
                    }
                };
                write!(out, "{cell:>6}").unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// Exports the topology as a Graphviz DOT graph. NVLink edges are
    /// drawn bold (double connections with `penwidth=2`), PCIe dashed,
    /// and QPI dotted — mirroring the legend of the paper's Fig. 2.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        writeln!(out, "graph \"{}\" {{", self.name()).unwrap();
        writeln!(out, "  layout=neato; overlap=false;").unwrap();
        for d in self.devices() {
            let shape = if d.is_gpu() { "box" } else { "ellipse" };
            writeln!(out, "  \"{d}\" [shape={shape}];").unwrap();
        }
        for link in self.links() {
            let style = match link.kind {
                LinkKind::NvLink { lanes } => format!("penwidth={lanes}"),
                LinkKind::Pcie => "style=dashed".to_string(),
                LinkKind::Qpi => "style=dotted".to_string(),
            };
            writeln!(
                out,
                "  \"{}\" -- \"{}\" [{} label=\"{}\"];",
                link.a, link.b, style, link.kind
            )
            .unwrap();
        }
        writeln!(out, "}}").unwrap();
        out
    }

    /// One line per link: `GPU0--GPU1 (NVLink x2, 50.0 GB/s)`.
    pub fn describe_links(&self) -> String {
        let mut out = String::new();
        for link in self.links() {
            writeln!(out, "{link}").unwrap();
        }
        out
    }
}

/// Formats a device pair key like `GPU0-GPU3` (used in report rows).
pub fn pair_label(a: Device, b: Device) -> String {
    format!("{a}-{b}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::dgx1_v100;

    #[test]
    fn matrix_has_one_row_per_gpu_plus_header() {
        let m = dgx1_v100().connectivity_matrix();
        assert_eq!(m.lines().count(), 9);
        // Diagonal is X.
        let row0: Vec<&str> = m.lines().nth(1).unwrap().split_whitespace().collect();
        assert_eq!(row0[0], "GPU0");
        assert_eq!(row0[1], "X");
    }

    #[test]
    fn matrix_encodes_lane_counts() {
        let m = dgx1_v100().connectivity_matrix();
        let row0 = m.lines().nth(1).unwrap();
        // GPU0 row: X, NV2 (g1), NV2 (g2), NV1 (g3), SYS, SYS, NV1 (g6), SYS.
        let cells: Vec<&str> = row0.split_whitespace().skip(1).collect();
        assert_eq!(
            cells,
            vec!["X", "NV2", "NV2", "NV1", "SYS", "SYS", "NV1", "SYS"]
        );
    }

    #[test]
    fn dot_lists_all_devices_and_links() {
        let t = dgx1_v100();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph \"DGX-1V\""));
        for d in t.devices() {
            assert!(dot.contains(&format!("\"{d}\"")), "missing {d}");
        }
        assert_eq!(
            dot.matches(" -- ").count(),
            t.links().len(),
            "one edge per link"
        );
    }

    #[test]
    fn describe_links_is_line_per_link() {
        let t = dgx1_v100();
        assert_eq!(t.describe_links().lines().count(), t.links().len());
    }

    #[test]
    fn pair_label_formats() {
        assert_eq!(pair_label(Device::gpu(0), Device::gpu(3)), "GPU0-GPU3");
    }
}
