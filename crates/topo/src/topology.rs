//! The topology graph and its routing queries.

use std::collections::BTreeMap;

use voltascope_sim::SimSpan;

use crate::bandwidth::Bandwidth;
use crate::device::Device;
use crate::link::{Link, LinkId, LinkKind};
use crate::route::{Hop, Route};

/// A multi-GPU system's device and interconnect graph.
///
/// Build one with [`Topology::new`], [`Topology::add_device`] and
/// [`Topology::connect`], or use a preset like
/// [`dgx1_v100`](crate::dgx1_v100).
///
/// # Example
///
/// ```
/// use voltascope_topo::{Device, LinkKind, Topology};
///
/// let mut topo = Topology::new("toy");
/// topo.add_device(Device::gpu(0));
/// topo.add_device(Device::gpu(1));
/// topo.connect(Device::gpu(0), Device::gpu(1), LinkKind::NvLink { lanes: 1 });
/// assert!(topo.p2p_capable(Device::gpu(0), Device::gpu(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    devices: Vec<Device>,
    links: Vec<Link>,
    /// Adjacency: device -> [(neighbor, link)]; deterministic order.
    adjacency: BTreeMap<Device, Vec<(Device, LinkId)>>,
    /// Whether GPUs may forward traffic for third parties (false on real
    /// DGX-1 hardware, paper §V-A footnote 4; true only in the
    /// "full-route NVLink" ablation).
    gpus_forward: bool,
}

impl Topology {
    /// Creates an empty topology named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            devices: Vec::new(),
            links: Vec::new(),
            adjacency: BTreeMap::new(),
            gpus_forward: false,
        }
    }

    /// The topology's name (used in report headers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allows GPUs to forward traffic (the idealised-routing ablation).
    pub fn set_gpus_forward(&mut self, allowed: bool) {
        self.gpus_forward = allowed;
    }

    /// Whether GPUs may forward traffic for third parties.
    pub fn gpus_forward(&self) -> bool {
        self.gpus_forward
    }

    /// Registers a device.
    ///
    /// # Panics
    ///
    /// Panics if the device was already added.
    pub fn add_device(&mut self, device: Device) {
        assert!(!self.devices.contains(&device), "{device} added twice");
        self.devices.push(device);
        self.adjacency.entry(device).or_default();
    }

    /// Connects two registered devices with a link of `kind`, using the
    /// technology's default bandwidth and latency.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown or `a == b`.
    pub fn connect(&mut self, a: Device, b: Device, kind: LinkKind) -> LinkId {
        self.connect_custom(Link {
            a,
            b,
            kind,
            bandwidth: kind.default_bandwidth(),
            latency: kind.default_latency(),
        })
    }

    /// Connects two devices with a fully-specified link (custom
    /// bandwidth/latency).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unknown or the link is a self-loop.
    pub fn connect_custom(&mut self, link: Link) -> LinkId {
        assert!(link.a != link.b, "self-loop on {}", link.a);
        assert!(self.devices.contains(&link.a), "unknown device {}", link.a);
        assert!(self.devices.contains(&link.b), "unknown device {}", link.b);
        let id = LinkId(self.links.len() as u32);
        self.adjacency.get_mut(&link.a).unwrap().push((link.b, id));
        self.adjacency.get_mut(&link.b).unwrap().push((link.a, id));
        self.links.push(link);
        id
    }

    /// All devices, in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All GPUs, ordered by index.
    pub fn gpus(&self) -> Vec<Device> {
        let mut gpus: Vec<Device> = self
            .devices
            .iter()
            .copied()
            .filter(|d| d.is_gpu())
            .collect();
        gpus.sort();
        gpus
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.devices.iter().filter(|d| d.is_gpu()).count()
    }

    /// All links, in insertion order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Neighbours of `device` with the connecting link ids.
    pub fn neighbors(&self, device: Device) -> &[(Device, LinkId)] {
        self.adjacency
            .get(&device)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The direct link between `a` and `b` with the highest bandwidth,
    /// if any.
    pub fn direct_link(&self, a: Device, b: Device) -> Option<&Link> {
        self.neighbors(a)
            .iter()
            .filter(|(n, _)| *n == b)
            .map(|(_, id)| self.link(*id))
            .max_by(|x, y| {
                x.bandwidth
                    .as_bytes_per_sec()
                    .partial_cmp(&y.bandwidth.as_bytes_per_sec())
                    .expect("bandwidths are finite")
            })
    }

    /// `true` when `a` and `b` are both GPUs joined by a direct NVLink —
    /// the condition for CUDA P2P transfers and P2P direct access.
    pub fn p2p_capable(&self, a: Device, b: Device) -> bool {
        a.is_gpu() && b.is_gpu() && self.direct_link(a, b).is_some_and(|l| l.kind.is_nvlink())
    }

    /// GPUs with a direct NVLink to *both* `a` and `b`: the candidates
    /// for MXNet's software multi-stage transfer (paper §V-A). Sorted by
    /// descending min-bandwidth of the two legs, then ascending index.
    pub fn relay_candidates(&self, a: Device, b: Device) -> Vec<Device> {
        let mut candidates: Vec<(Device, Bandwidth)> = self
            .gpus()
            .into_iter()
            .filter(|&g| g != a && g != b)
            .filter_map(|g| {
                let la = self.direct_link(a, g).filter(|l| l.kind.is_nvlink())?;
                let lb = self.direct_link(g, b).filter(|l| l.kind.is_nvlink())?;
                Some((g, la.bandwidth.min(lb.bandwidth)))
            })
            .collect();
        candidates.sort_by(|(ga, bwa), (gb, bwb)| {
            bwb.as_bytes_per_sec()
                .partial_cmp(&bwa.as_bytes_per_sec())
                .expect("bandwidths are finite")
                .then(ga.cmp(gb))
        });
        candidates.into_iter().map(|(g, _)| g).collect()
    }

    /// The hardware route from `src` to `dst` under the platform's
    /// forwarding rules: shortest path (by per-hop cost of latency plus
    /// the serialisation time of a nominal 1 MiB message) where only
    /// CPUs — and GPUs, if [`Topology::set_gpus_forward`] was enabled —
    /// may appear as intermediate nodes.
    ///
    /// # Panics
    ///
    /// Panics if either device is unknown or no route exists.
    pub fn route(&self, src: Device, dst: Device) -> Route {
        assert!(self.devices.contains(&src), "unknown device {src}");
        assert!(self.devices.contains(&dst), "unknown device {dst}");
        if src == dst {
            return Route::new(src, dst, vec![]);
        }

        const NOMINAL_BYTES: u64 = 1 << 20;
        // Dijkstra over devices; intermediate nodes restricted by role.
        let mut dist: BTreeMap<Device, SimSpan> = BTreeMap::new();
        let mut prev: BTreeMap<Device, (Device, LinkId)> = BTreeMap::new();
        let mut visited: BTreeMap<Device, bool> = BTreeMap::new();
        dist.insert(src, SimSpan::ZERO);

        // Deterministic: BTreeMap iteration breaks cost ties by device order.
        while let Some((&u, &du)) = dist
            .iter()
            .filter(|(d, _)| !visited.get(*d).copied().unwrap_or(false))
            .min_by_key(|(d, &c)| (c, **d))
        {
            visited.insert(u, true);
            if u == dst {
                break;
            }
            // Only the source, the destination, and forwarding-capable
            // devices may relay.
            let may_forward = u == src || u.is_cpu() || (u.is_gpu() && self.gpus_forward);
            if !may_forward {
                continue;
            }
            for &(v, lid) in self.neighbors(u) {
                let link = self.link(lid);
                let cost = du + link.latency + link.bandwidth.transfer_time(NOMINAL_BYTES);
                if dist.get(&v).is_none_or(|&c| cost < c) {
                    dist.insert(v, cost);
                    prev.insert(v, (u, lid));
                }
            }
        }

        assert!(
            prev.contains_key(&dst),
            "no route from {src} to {dst} in topology '{}'",
            self.name
        );
        let mut hops = Vec::new();
        let mut at = dst;
        while at != src {
            let (from, lid) = prev[&at];
            let link = self.link(lid);
            hops.push(Hop {
                from,
                to: at,
                link: lid,
                kind: link.kind,
                bandwidth: link.bandwidth,
                latency: link.latency,
            });
            at = from;
        }
        hops.reverse();
        Route::new(src, dst, hops)
    }

    /// The CPU socket whose PCIe tree hosts `gpu` (the first CPU found
    /// via a direct PCIe link).
    ///
    /// # Panics
    ///
    /// Panics if `gpu` has no PCIe uplink to any CPU.
    pub fn home_cpu(&self, gpu: Device) -> Device {
        self.neighbors(gpu)
            .iter()
            .filter(|(n, _)| n.is_cpu())
            .map(|&(n, _)| n)
            .next()
            .unwrap_or_else(|| panic!("{gpu} has no CPU uplink"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line: g0 -NVLink- g1 -NVLink- g2, each GPU on cpu0's PCIe.
    fn line() -> Topology {
        let mut t = Topology::new("line");
        t.add_device(Device::cpu(0));
        for i in 0..3 {
            t.add_device(Device::gpu(i));
            t.connect(Device::gpu(i), Device::cpu(0), LinkKind::Pcie);
        }
        t.connect(
            Device::gpu(0),
            Device::gpu(1),
            LinkKind::NvLink { lanes: 1 },
        );
        t.connect(
            Device::gpu(1),
            Device::gpu(2),
            LinkKind::NvLink { lanes: 1 },
        );
        t
    }

    #[test]
    fn direct_link_and_p2p() {
        let t = line();
        assert!(t.p2p_capable(Device::gpu(0), Device::gpu(1)));
        assert!(!t.p2p_capable(Device::gpu(0), Device::gpu(2)));
        assert!(!t.p2p_capable(Device::gpu(0), Device::cpu(0)));
        assert!(t.direct_link(Device::gpu(0), Device::gpu(2)).is_none());
    }

    #[test]
    fn route_prefers_direct_nvlink() {
        let t = line();
        let r = t.route(Device::gpu(0), Device::gpu(1));
        assert_eq!(r.hop_count(), 1);
        assert!(r.is_direct_nvlink());
    }

    #[test]
    fn gpus_do_not_forward_by_default() {
        let t = line();
        // g0 -> g2 cannot relay through g1; must bounce via cpu0.
        let r = t.route(Device::gpu(0), Device::gpu(2));
        assert!(r.through_host());
        assert_eq!(r.hop_count(), 2);
    }

    #[test]
    fn forwarding_ablation_unlocks_gpu_relay() {
        let mut t = line();
        t.set_gpus_forward(true);
        let r = t.route(Device::gpu(0), Device::gpu(2));
        assert!(!r.through_host());
        assert_eq!(r.hop_count(), 2); // g0 -> g1 -> g2 over NVLink
        assert!(r.hops().iter().all(|h| h.kind.is_nvlink()));
    }

    #[test]
    fn relay_candidates_require_links_to_both_ends() {
        let t = line();
        assert_eq!(
            t.relay_candidates(Device::gpu(0), Device::gpu(2)),
            vec![Device::gpu(1)]
        );
        assert!(t
            .relay_candidates(Device::gpu(0), Device::gpu(1))
            .is_empty());
    }

    #[test]
    fn self_route_is_empty() {
        let t = line();
        assert_eq!(t.route(Device::gpu(1), Device::gpu(1)).hop_count(), 0);
    }

    #[test]
    fn home_cpu_found_via_pcie() {
        let t = line();
        assert_eq!(t.home_cpu(Device::gpu(2)), Device::cpu(0));
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_device_panics() {
        let mut t = line();
        t.add_device(Device::gpu(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = line();
        t.connect(Device::gpu(0), Device::gpu(0), LinkKind::Pcie);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_route_panics() {
        let mut t = Topology::new("disc");
        t.add_device(Device::gpu(0));
        t.add_device(Device::gpu(1));
        let _ = t.route(Device::gpu(0), Device::gpu(1));
    }

    #[test]
    fn direct_link_picks_widest_when_parallel() {
        let mut t = Topology::new("par");
        t.add_device(Device::gpu(0));
        t.add_device(Device::gpu(1));
        t.connect(
            Device::gpu(0),
            Device::gpu(1),
            LinkKind::NvLink { lanes: 1 },
        );
        t.connect(
            Device::gpu(0),
            Device::gpu(1),
            LinkKind::NvLink { lanes: 2 },
        );
        let l = t.direct_link(Device::gpu(0), Device::gpu(1)).unwrap();
        assert_eq!(l.kind, LinkKind::NvLink { lanes: 2 });
    }

    #[test]
    fn gpu_listing_is_sorted() {
        let mut t = Topology::new("rev");
        t.add_device(Device::gpu(2));
        t.add_device(Device::gpu(0));
        t.add_device(Device::cpu(0));
        t.add_device(Device::gpu(1));
        assert_eq!(
            t.gpus(),
            vec![Device::gpu(0), Device::gpu(1), Device::gpu(2)]
        );
        assert_eq!(t.gpu_count(), 3);
    }
}
