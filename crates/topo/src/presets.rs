//! Ready-made topologies: the paper's DGX-1 and ablation variants.

use crate::device::Device;
use crate::link::LinkKind;
use crate::topology::Topology;

/// Intra-quad and cross-quad NVLink wiring of the Volta DGX-1 as drawn
/// in the paper's Fig. 2, satisfying every connectivity statement made
/// in the text:
///
/// * GPU0 links directly to GPU1, GPU2, GPU3 and GPU6 (§V-A);
/// * GPU0–GPU1 and GPU0–GPU2 have double connections, GPU0–GPU3 a
///   single one (§V-A: "BW ... between GPU0 and GPU1, and GPU0 and
///   GPU2, is twice the BW rate between GPU0 and GPU3");
/// * GPU2–GPU3 has a single connection, GPU3–GPU4 none (§IV-A);
/// * GPU1 links directly to GPU7 (§V-A).
///
/// Each entry is `(a, b, lanes)`.
const DGX1_NVLINKS: &[(u8, u8, u32)] = &[
    // Quad A: GPUs 0-3.
    (0, 1, 2),
    (0, 2, 2),
    (0, 3, 1),
    (1, 2, 1),
    (1, 3, 2),
    (2, 3, 1),
    // Quad B: GPUs 4-7, mirroring quad A.
    (4, 5, 2),
    (4, 6, 2),
    (4, 7, 1),
    (5, 6, 1),
    (5, 7, 2),
    (6, 7, 1),
    // Cross-quad single links (hybrid cube-mesh).
    (0, 6, 1),
    (1, 7, 1),
    (2, 4, 1),
    (3, 5, 1),
];

/// Builds the Volta-based DGX-1 of the paper's Fig. 2: 8 Tesla V100
/// GPUs on an NVLink hybrid cube-mesh, two Xeon sockets joined by QPI,
/// GPUs 0–3 on CPU0's PCIe tree and GPUs 4–7 on CPU1's.
///
/// # Example
///
/// ```
/// use voltascope_topo::{dgx1_v100, Device};
///
/// let topo = dgx1_v100();
/// assert_eq!(topo.gpu_count(), 8);
/// // Any GPU pair is at most one intermediate node apart (paper §IV-A)
/// // when relaying in software through a common NVLink neighbour.
/// for a in 0..8u8 {
///     for b in 0..8u8 {
///         if a != b && !topo.p2p_capable(Device::gpu(a), Device::gpu(b)) {
///             assert!(!topo.relay_candidates(Device::gpu(a), Device::gpu(b)).is_empty());
///         }
///     }
/// }
/// ```
pub fn dgx1_v100() -> Topology {
    let mut topo = Topology::new("DGX-1V");
    topo.add_device(Device::cpu(0));
    topo.add_device(Device::cpu(1));
    for g in 0..8 {
        topo.add_device(Device::gpu(g));
    }
    // PCIe trees: CPUs each own four GPUs (paper Fig. 2).
    for g in 0..4 {
        topo.connect(Device::gpu(g), Device::cpu(0), LinkKind::Pcie);
    }
    for g in 4..8 {
        topo.connect(Device::gpu(g), Device::cpu(1), LinkKind::Pcie);
    }
    topo.connect(Device::cpu(0), Device::cpu(1), LinkKind::Qpi);
    for &(a, b, lanes) in DGX1_NVLINKS {
        topo.connect(Device::gpu(a), Device::gpu(b), LinkKind::NvLink { lanes });
    }
    topo
}

/// The Pascal-generation DGX-1 (DGX-1P): identical hybrid cube-mesh
/// wiring, but NVLink 1.0 bricks at 20 GB/s per direction instead of
/// Volta's 25 GB/s — the platform of the Gawande et al. comparison the
/// paper cites (§III).
pub fn dgx1_p100() -> Topology {
    let volta = dgx1_v100();
    let mut pascal = Topology::new("DGX-1P");
    for &d in volta.devices() {
        pascal.add_device(d);
    }
    for link in volta.links() {
        match link.kind {
            LinkKind::NvLink { lanes } => {
                pascal.connect_custom(crate::Link {
                    a: link.a,
                    b: link.b,
                    kind: link.kind,
                    bandwidth: crate::Bandwidth::gigabytes_per_sec_of(20.0) * lanes,
                    latency: link.latency,
                });
            }
            _ => {
                pascal.connect(link.a, link.b, link.kind);
            }
        }
    }
    pascal
}

/// The DGX-1 wiring with every NVLink connection reduced to a single
/// lane: the ablation that isolates the effect of the asymmetric
/// double-vs-single link bandwidth the paper blames for GPU idling
/// during weight broadcast (§V-A).
pub fn single_lane_dgx1() -> Topology {
    let mut topo = dgx1_v100();
    // Rebuild with all lanes forced to 1.
    let mut flat = Topology::new("DGX-1V-single-lane");
    for &d in topo.devices() {
        flat.add_device(d);
    }
    for link in topo.links() {
        let kind = match link.kind {
            LinkKind::NvLink { .. } => LinkKind::NvLink { lanes: 1 },
            other => other,
        };
        flat.connect(link.a, link.b, kind);
    }
    topo = flat;
    topo
}

/// A PCIe-only box with `gpu_count` GPUs split across two sockets and
/// no NVLink at all — the baseline platform of the Tallent et al.
/// comparison the paper cites in §III.
///
/// # Panics
///
/// Panics if `gpu_count` is zero.
pub fn pcie_only(gpu_count: u8) -> Topology {
    assert!(gpu_count > 0, "need at least one GPU");
    let mut topo = Topology::new(format!("PCIe-only-{gpu_count}"));
    topo.add_device(Device::cpu(0));
    topo.add_device(Device::cpu(1));
    topo.connect(Device::cpu(0), Device::cpu(1), LinkKind::Qpi);
    let half = gpu_count.div_ceil(2);
    for g in 0..gpu_count {
        topo.add_device(Device::gpu(g));
        let cpu = if g < half {
            Device::cpu(0)
        } else {
            Device::cpu(1)
        };
        topo.connect(Device::gpu(g), cpu, LinkKind::Pcie);
    }
    topo
}

/// An idealised all-to-all NVLink switch (DGX-2-style NVSwitch): every
/// GPU pair gets a dedicated single-lane NVLink. Used to quantify how
/// much of the 8-GPU P2P penalty comes from missing direct connectivity
/// rather than from the algorithm.
///
/// # Panics
///
/// Panics if `gpu_count` is zero.
pub fn full_nvlink_switch(gpu_count: u8) -> Topology {
    assert!(gpu_count > 0, "need at least one GPU");
    let mut topo = Topology::new(format!("NVSwitch-{gpu_count}"));
    topo.add_device(Device::cpu(0));
    for g in 0..gpu_count {
        topo.add_device(Device::gpu(g));
        topo.connect(Device::gpu(g), Device::cpu(0), LinkKind::Pcie);
    }
    for a in 0..gpu_count {
        for b in (a + 1)..gpu_count {
            topo.connect(
                Device::gpu(a),
                Device::gpu(b),
                LinkKind::NvLink { lanes: 1 },
            );
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkKind;

    #[test]
    fn dgx1_matches_every_paper_claim() {
        let t = dgx1_v100();
        let g = Device::gpu;
        // §V-A: GPU0's direct NVLink neighbours are exactly 1, 2, 3, 6.
        for n in [1, 2, 3, 6] {
            assert!(t.p2p_capable(g(0), g(n)), "GPU0-GPU{n} should be P2P");
        }
        for n in [4, 5, 7] {
            assert!(!t.p2p_capable(g(0), g(n)), "GPU0-GPU{n} should not be P2P");
        }
        // §V-A: BW(0-1) = BW(0-2) = 2 x BW(0-3).
        let bw = |a: u8, b: u8| t.direct_link(g(a), g(b)).unwrap().bandwidth;
        assert_eq!(bw(0, 1).gigabytes_per_sec(), 50.0);
        assert_eq!(bw(0, 2).gigabytes_per_sec(), 50.0);
        assert_eq!(bw(0, 3).gigabytes_per_sec(), 25.0);
        // §IV-A: GPU2-GPU3 single, GPU3-GPU4 absent.
        assert_eq!(bw(2, 3).gigabytes_per_sec(), 25.0);
        assert!(t.direct_link(g(3), g(4)).is_none());
        // §V-A: GPU1 has a direct NVLink connection with GPU7.
        assert!(t.p2p_capable(g(1), g(7)));
    }

    #[test]
    fn dgx1_nvlink_budget_respected() {
        // A V100 has 6 NVLink bricks; no GPU may exceed that.
        let t = dgx1_v100();
        for gpu in t.gpus() {
            let lanes: u32 = t
                .links()
                .iter()
                .filter(|l| l.connects(gpu))
                .map(|l| match l.kind {
                    LinkKind::NvLink { lanes } => lanes,
                    _ => 0,
                })
                .sum();
            assert!(lanes <= 6, "{gpu} uses {lanes} NVLink bricks");
        }
    }

    #[test]
    fn dgx1_two_hop_software_relay_guarantee() {
        // Paper §IV-A: "A maximum of one intermediate node (two hops) is
        // required to connect any pair of GPUs."
        let t = dgx1_v100();
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                let (a, b) = (Device::gpu(a), Device::gpu(b));
                assert!(
                    t.p2p_capable(a, b) || !t.relay_candidates(a, b).is_empty(),
                    "{a}->{b} needs more than one relay"
                );
            }
        }
    }

    #[test]
    fn dgx1_non_neighbor_hardware_route_bounces_via_host() {
        let t = dgx1_v100();
        let r = t.route(Device::gpu(0), Device::gpu(4));
        assert!(r.through_host());
        // g0 -> cpu0 -> cpu1 -> g4.
        assert_eq!(r.hop_count(), 3);
    }

    #[test]
    fn dgx1_home_cpus_split_four_four() {
        let t = dgx1_v100();
        for g in 0..4 {
            assert_eq!(t.home_cpu(Device::gpu(g)), Device::cpu(0));
        }
        for g in 4..8 {
            assert_eq!(t.home_cpu(Device::gpu(g)), Device::cpu(1));
        }
    }

    #[test]
    fn pascal_variant_keeps_wiring_but_slows_links() {
        let p = dgx1_p100();
        let v = dgx1_v100();
        assert_eq!(p.links().len(), v.links().len());
        let bw = p
            .direct_link(Device::gpu(0), Device::gpu(1))
            .unwrap()
            .bandwidth;
        assert_eq!(bw.gigabytes_per_sec(), 40.0); // 2 lanes x 20 GB/s
        assert!(p.p2p_capable(Device::gpu(0), Device::gpu(6)));
    }

    #[test]
    fn single_lane_variant_flattens_doubles() {
        let t = single_lane_dgx1();
        let bw = t
            .direct_link(Device::gpu(0), Device::gpu(1))
            .unwrap()
            .bandwidth;
        assert_eq!(bw.gigabytes_per_sec(), 25.0);
        assert_eq!(t.gpu_count(), 8);
    }

    #[test]
    fn pcie_only_has_no_nvlink() {
        let t = pcie_only(8);
        assert!(t.links().iter().all(|l| !l.kind.is_nvlink()));
        assert!(!t.p2p_capable(Device::gpu(0), Device::gpu(1)));
        assert_eq!(t.gpu_count(), 8);
        // GPUs on different sockets route over QPI.
        let r = t.route(Device::gpu(0), Device::gpu(7));
        assert_eq!(r.hop_count(), 3);
    }

    #[test]
    fn nvswitch_is_fully_connected() {
        let t = full_nvlink_switch(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert!(t.p2p_capable(Device::gpu(a), Device::gpu(b)));
                }
            }
        }
    }

    #[test]
    fn odd_gpu_counts_split_pcie_trees() {
        let t = pcie_only(3);
        assert_eq!(t.home_cpu(Device::gpu(0)), Device::cpu(0));
        assert_eq!(t.home_cpu(Device::gpu(1)), Device::cpu(0));
        assert_eq!(t.home_cpu(Device::gpu(2)), Device::cpu(1));
    }
}
