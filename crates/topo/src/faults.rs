//! Fault injection: degraded-hardware variants of a topology.
//!
//! Real multi-GPU nodes misbehave: NVLink bricks drop, links train down
//! to fewer lanes, thermal throttling slows individual GPUs, and noisy
//! neighbours add latency. A [`FaultSpec`] describes such a degradation
//! declaratively; [`Topology::apply`] produces the degraded device
//! graph, and the training simulator rebuilds rings, trees and routes
//! on it — collectives renegotiate around dead links exactly the way
//! NCCL's topology search does, falling back to host-bounced paths when
//! no NVLink cycle survives.
//!
//! # Example
//!
//! ```
//! use voltascope_topo::{dgx1_v100, Device, FaultSpec};
//!
//! let healthy = dgx1_v100();
//! // Kill the GPU3-GPU5 cross-quad brick (the quad-boundary link next
//! // to the GPU3/GPU4 split the paper highlights in §IV-A).
//! let spec = FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(5));
//! let degraded = healthy.apply(&spec);
//! assert!(degraded.direct_link(Device::gpu(3), Device::gpu(5)).is_none());
//! // Traffic between the pair now bounces through the host.
//! assert!(degraded.route(Device::gpu(3), Device::gpu(5)).through_host());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use voltascope_sim::SimSpan;

use crate::device::Device;
use crate::link::Link;
use crate::topology::Topology;

/// A declarative description of hardware degradation: dead or
/// downgraded links, added link latency, and per-GPU compute slowdown.
///
/// The default spec is healthy (no faults). Builder methods compose:
///
/// ```
/// use voltascope_topo::{Device, FaultSpec};
/// use voltascope_sim::SimSpan;
///
/// let spec = FaultSpec::new()
///     .kill_nvlinks_of(Device::gpu(3))
///     .slow_gpu(Device::gpu(5), 1.4)
///     .link_jitter(SimSpan::from_nanos(200));
/// assert!(!spec.is_healthy());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Device pairs whose direct links are all disabled.
    dead_links: Vec<(Device, Device)>,
    /// GPUs whose NVLink interface is entirely dead (every NVLink brick
    /// touching the device disappears; PCIe survives).
    dead_nvlink_gpus: Vec<Device>,
    /// Per-pair bandwidth multipliers in `(0, 1]` (link trained down).
    degraded_links: Vec<(Device, Device, f64)>,
    /// Extra latency added to every surviving link.
    link_jitter: SimSpan,
    /// Per-GPU compute slowdown factors (`>= 1`); a straggler or
    /// thermally-throttled device.
    gpu_slowdown: BTreeMap<Device, f64>,
}

impl FaultSpec {
    /// A healthy (empty) fault spec.
    pub fn new() -> Self {
        FaultSpec::default()
    }

    /// Disables every direct link between `a` and `b`.
    pub fn kill_link(mut self, a: Device, b: Device) -> Self {
        self.dead_links.push((a, b));
        self
    }

    /// Disables every NVLink brick attached to `gpu` (the whole NVLink
    /// interface fails; the PCIe uplink survives). This is the fault
    /// that actually breaks the DGX-1's 8-GPU ring: the hybrid
    /// cube-mesh tolerates any *single* dead link by renegotiating an
    /// alternative all-NVLink cycle.
    pub fn kill_nvlinks_of(mut self, gpu: Device) -> Self {
        self.dead_nvlink_gpus.push(gpu);
        self
    }

    /// Multiplies the bandwidth of every direct link between `a` and
    /// `b` by `factor` (a link trained down to fewer lanes). The factor
    /// must lie in `(0, 1]`; validation happens when the spec is
    /// applied, where [`Topology::try_apply`] reports
    /// [`FaultError::BadDegradeFactor`].
    pub fn degrade_link(mut self, a: Device, b: Device, factor: f64) -> Self {
        self.degraded_links.push((a, b, factor));
        self
    }

    /// Adds `extra` latency to every surviving link (congestion /
    /// retraining jitter).
    pub fn link_jitter(mut self, extra: SimSpan) -> Self {
        self.link_jitter = extra;
        self
    }

    /// Marks `gpu` as a straggler: all its kernels take `factor` times
    /// longer. The factor must be `>= 1`; validation happens when the
    /// spec is applied, where [`Topology::try_apply`] reports
    /// [`FaultError::BadSlowdownFactor`].
    pub fn slow_gpu(mut self, gpu: Device, factor: f64) -> Self {
        self.gpu_slowdown.insert(gpu, factor);
        self
    }

    /// Canned scenario: two GPUs straggling simultaneously at the same
    /// `factor` — the common "two hot devices" case on a shared
    /// chassis, where throttling correlates across neighbouring cards.
    /// Synchronous training pays the *max* of the per-GPU slowdowns per
    /// iteration, so a second straggler in the other quad mostly tests
    /// whether any schedule slack is left to hide it.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; factors below 1 are reported by
    /// [`Topology::try_apply`] like any [`FaultSpec::slow_gpu`].
    pub fn two_stragglers(self, a: Device, b: Device, factor: f64) -> Self {
        assert_ne!(a, b, "two stragglers need two distinct GPUs");
        self.slow_gpu(a, factor).slow_gpu(b, factor)
    }

    /// `true` when the spec injects nothing.
    pub fn is_healthy(&self) -> bool {
        self.dead_links.is_empty()
            && self.dead_nvlink_gpus.is_empty()
            && self.degraded_links.is_empty()
            && self.link_jitter.is_zero()
            && self.gpu_slowdown.is_empty()
    }

    /// The compute-slowdown factor for `device` (1.0 when healthy).
    pub fn slowdown_of(&self, device: Device) -> f64 {
        self.gpu_slowdown.get(&device).copied().unwrap_or(1.0)
    }

    /// All per-GPU slowdown factors.
    pub fn gpu_slowdowns(&self) -> &BTreeMap<Device, f64> {
        &self.gpu_slowdown
    }

    /// Device pairs whose direct links the spec kills, in insertion
    /// order (the mid-epoch event lowering in `voltascope-train` maps
    /// each pair to per-direction link failures).
    pub fn dead_link_pairs(&self) -> &[(Device, Device)] {
        &self.dead_links
    }

    /// GPUs whose entire NVLink interface the spec kills.
    pub fn dead_nvlink_devices(&self) -> &[Device] {
        &self.dead_nvlink_gpus
    }

    /// Per-pair bandwidth multipliers of degraded links, in insertion
    /// order.
    pub fn degraded_link_factors(&self) -> &[(Device, Device, f64)] {
        &self.degraded_links
    }

    /// Whether the spec kills or downgrades any link touching `link`.
    fn classify(&self, link: &Link) -> LinkFate {
        let pair_matches =
            |a: Device, b: Device| (link.a == a && link.b == b) || (link.a == b && link.b == a);
        if self.dead_links.iter().any(|&(a, b)| pair_matches(a, b)) {
            return LinkFate::Dead;
        }
        if link.kind.is_nvlink()
            && self
                .dead_nvlink_gpus
                .iter()
                .any(|&g| link.a == g || link.b == g)
        {
            return LinkFate::Dead;
        }
        let factor: f64 = self
            .degraded_links
            .iter()
            .filter(|&&(a, b, _)| pair_matches(a, b))
            .map(|&(_, _, f)| f)
            .product();
        if factor < 1.0 {
            LinkFate::Degraded(factor)
        } else {
            LinkFate::Alive
        }
    }
}

enum LinkFate {
    Alive,
    Degraded(f64),
    Dead,
}

/// A structurally invalid [`FaultSpec`] for a given [`Topology`]:
/// typos and impossible parameters are reported deterministically
/// rather than silently injecting nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The spec names a device the topology does not have.
    UnknownDevice {
        /// The missing device.
        device: Device,
        /// The topology's name.
        topology: String,
    },
    /// A dead or degraded pair has no direct link in the topology.
    MissingLink {
        /// One endpoint.
        a: Device,
        /// The other endpoint.
        b: Device,
        /// `true` when the spec degrades (rather than kills) the pair.
        degrades: bool,
        /// The topology's name.
        topology: String,
    },
    /// The same link pair is killed more than once.
    DuplicateKill {
        /// One endpoint.
        a: Device,
        /// The other endpoint.
        b: Device,
    },
    /// A [`FaultSpec::degrade_link`] factor outside `(0, 1]`.
    BadDegradeFactor {
        /// One endpoint.
        a: Device,
        /// The other endpoint.
        b: Device,
        /// The offending factor.
        factor: f64,
    },
    /// A [`FaultSpec::slow_gpu`] factor below 1 (or non-finite).
    BadSlowdownFactor {
        /// The straggler device.
        device: Device,
        /// The offending factor.
        factor: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownDevice { device, topology } => {
                write!(
                    f,
                    "fault names unknown device {device} in topology '{topology}'"
                )
            }
            FaultError::MissingLink {
                a,
                b,
                degrades,
                topology,
            } => {
                let verb = if *degrades { "degrades" } else { "kills" };
                write!(
                    f,
                    "fault {verb} non-existent link {a}-{b} in topology '{topology}'"
                )
            }
            FaultError::DuplicateKill { a, b } => {
                write!(f, "fault kills link {a}-{b} more than once")
            }
            FaultError::BadDegradeFactor { a, b, factor } => {
                write!(
                    f,
                    "degrade factor {factor} for link {a}-{b} must be in (0, 1]"
                )
            }
            FaultError::BadSlowdownFactor { device, factor } => {
                write!(f, "slowdown factor {factor} for {device} must be >= 1")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl Topology {
    /// Builds the degraded topology described by `faults`: dead links
    /// are removed, downgraded links get their bandwidth scaled, and
    /// every surviving link gains the spec's jitter latency. Devices,
    /// forwarding rules and link-insertion order are preserved, so
    /// routing and ring construction on the result stay deterministic
    /// and keep the store-and-forward semantics of the healthy graph.
    ///
    /// Compute slowdowns do not change the graph — consumers read them
    /// from [`FaultSpec::slowdown_of`].
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] when the spec names a device this
    /// topology does not have, kills or degrades a pair with no direct
    /// link, kills the same pair twice, or carries a degrade/slowdown
    /// factor outside its valid range.
    pub fn try_apply(&self, faults: &FaultSpec) -> Result<Topology, FaultError> {
        let pair_eq = |(a1, b1): (Device, Device), (a2, b2): (Device, Device)| {
            (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2)
        };
        for (i, &(a, b)) in faults.dead_links.iter().enumerate() {
            if self.direct_link(a, b).is_none() {
                return Err(FaultError::MissingLink {
                    a,
                    b,
                    degrades: false,
                    topology: self.name().to_string(),
                });
            }
            if faults.dead_links[..i].iter().any(|&p| pair_eq(p, (a, b))) {
                return Err(FaultError::DuplicateKill { a, b });
            }
        }
        for &(a, b, factor) in &faults.degraded_links {
            if self.direct_link(a, b).is_none() {
                return Err(FaultError::MissingLink {
                    a,
                    b,
                    degrades: true,
                    topology: self.name().to_string(),
                });
            }
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(FaultError::BadDegradeFactor { a, b, factor });
            }
        }
        for &g in faults
            .dead_nvlink_gpus
            .iter()
            .chain(faults.gpu_slowdown.keys())
        {
            if !self.devices().contains(&g) {
                return Err(FaultError::UnknownDevice {
                    device: g,
                    topology: self.name().to_string(),
                });
            }
        }
        for (&device, &factor) in &faults.gpu_slowdown {
            if !(factor >= 1.0 && factor.is_finite()) {
                return Err(FaultError::BadSlowdownFactor { device, factor });
            }
        }
        Ok(self.apply_unchecked(faults))
    }

    /// Infallible wrapper over [`Topology::try_apply`].
    ///
    /// # Panics
    ///
    /// Panics with the [`FaultError`]'s message when the spec is
    /// invalid for this topology.
    pub fn apply(&self, faults: &FaultSpec) -> Topology {
        match self.try_apply(faults) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    fn apply_unchecked(&self, faults: &FaultSpec) -> Topology {
        let name = if faults.is_healthy() {
            self.name().to_string()
        } else {
            format!("{} (degraded)", self.name())
        };
        let mut out = Topology::new(name);
        for &d in self.devices() {
            out.add_device(d);
        }
        out.set_gpus_forward(self.gpus_forward());
        for link in self.links() {
            match faults.classify(link) {
                LinkFate::Dead => {}
                LinkFate::Alive => {
                    out.connect_custom(Link {
                        latency: link.latency + faults.link_jitter,
                        ..*link
                    });
                }
                LinkFate::Degraded(factor) => {
                    out.connect_custom(Link {
                        bandwidth: crate::Bandwidth::bytes_per_sec(
                            link.bandwidth.as_bytes_per_sec() * factor,
                        ),
                        latency: link.latency + faults.link_jitter,
                        ..*link
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::dgx1_v100;

    #[test]
    fn healthy_spec_is_identity() {
        let topo = dgx1_v100();
        let same = topo.apply(&FaultSpec::new());
        assert_eq!(same.name(), topo.name());
        assert_eq!(same.links().len(), topo.links().len());
        for (a, b) in topo.links().iter().zip(same.links()) {
            assert_eq!(a.bandwidth, b.bandwidth);
            assert_eq!(a.latency, b.latency);
        }
    }

    #[test]
    fn dead_link_disappears_and_reroutes_via_host() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        let degraded = topo.apply(&FaultSpec::new().kill_link(g(3), g(5)));
        assert!(degraded.direct_link(g(3), g(5)).is_none());
        assert_eq!(degraded.links().len(), topo.links().len() - 1);
        let route = degraded.route(g(3), g(5));
        assert!(route.through_host());
        assert_eq!(route.hop_count(), 3); // g3 -> cpu0 -> cpu1 -> g5
    }

    #[test]
    fn dead_nvlink_interface_keeps_pcie() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        let degraded = topo.apply(&FaultSpec::new().kill_nvlinks_of(g(3)));
        for n in [0u8, 1, 2, 5] {
            assert!(degraded.direct_link(g(3), g(n)).is_none());
        }
        // PCIe uplink survives: GPU3 stays reachable via the host.
        assert_eq!(degraded.home_cpu(g(3)), Device::cpu(0));
        assert!(degraded.route(g(3), g(0)).through_host());
        // Unrelated links untouched.
        assert!(degraded.p2p_capable(g(0), g(1)));
    }

    #[test]
    fn degraded_link_scales_bandwidth_only() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        let degraded = topo.apply(&FaultSpec::new().degrade_link(g(0), g(1), 0.5));
        let link = degraded.direct_link(g(0), g(1)).unwrap();
        assert_eq!(link.bandwidth.gigabytes_per_sec(), 25.0); // was 50
        let other = degraded.direct_link(g(0), g(2)).unwrap();
        assert_eq!(other.bandwidth.gigabytes_per_sec(), 50.0);
    }

    #[test]
    fn jitter_adds_latency_everywhere() {
        let topo = dgx1_v100();
        let extra = SimSpan::from_nanos(250);
        let degraded = topo.apply(&FaultSpec::new().link_jitter(extra));
        for (a, b) in topo.links().iter().zip(degraded.links()) {
            assert_eq!(b.latency, a.latency + extra);
        }
    }

    #[test]
    fn slowdowns_round_trip() {
        let g = Device::gpu;
        let spec = FaultSpec::new().slow_gpu(g(5), 1.4);
        assert_eq!(spec.slowdown_of(g(5)), 1.4);
        assert_eq!(spec.slowdown_of(g(0)), 1.0);
        assert!(!spec.is_healthy());
        // Pure compute faults leave the graph alone.
        let topo = dgx1_v100();
        let degraded = topo.apply(&spec);
        assert_eq!(degraded.links().len(), topo.links().len());
    }

    #[test]
    fn degraded_name_is_marked() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        let degraded = topo.apply(&FaultSpec::new().kill_link(g(3), g(5)));
        assert!(degraded.name().contains("degraded"));
    }

    #[test]
    fn forwarding_flag_survives_apply() {
        let mut topo = dgx1_v100();
        topo.set_gpus_forward(true);
        let g = Device::gpu;
        let degraded = topo.apply(&FaultSpec::new().kill_link(g(3), g(5)));
        // With forwarding on, GPU3->GPU5 can still relay over NVLink.
        assert!(!degraded.route(g(3), g(5)).through_host());
    }

    #[test]
    #[should_panic(expected = "non-existent link")]
    fn killing_missing_link_panics() {
        let topo = dgx1_v100();
        let _ = topo.apply(&FaultSpec::new().kill_link(Device::gpu(3), Device::gpu(4)));
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_panics() {
        let topo = dgx1_v100();
        let _ = topo.apply(&FaultSpec::new().kill_nvlinks_of(Device::gpu(12)));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn degrade_factor_above_one_panics() {
        let topo = dgx1_v100();
        let _ = topo.apply(&FaultSpec::new().degrade_link(Device::gpu(0), Device::gpu(1), 1.5));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn speedup_straggler_panics() {
        let topo = dgx1_v100();
        let _ = topo.apply(&FaultSpec::new().slow_gpu(Device::gpu(0), 0.5));
    }

    // ---- Typed error paths (try_apply). ----

    #[test]
    fn try_apply_of_a_healthy_spec_succeeds() {
        let topo = dgx1_v100();
        let out = topo.try_apply(&FaultSpec::new()).unwrap();
        assert_eq!(out.links().len(), topo.links().len());
    }

    #[test]
    fn unknown_gpu_index_is_a_typed_error() {
        let topo = dgx1_v100();
        let err = topo
            .try_apply(&FaultSpec::new().kill_nvlinks_of(Device::gpu(12)))
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::UnknownDevice {
                device: Device::gpu(12),
                topology: topo.name().to_string(),
            }
        );
        assert!(err.to_string().contains("unknown device GPU12"));
        // Straggler specs validate the device too.
        let err = topo
            .try_apply(&FaultSpec::new().slow_gpu(Device::gpu(9), 1.5))
            .unwrap_err();
        assert!(matches!(err, FaultError::UnknownDevice { .. }));
    }

    #[test]
    fn duplicate_kill_is_a_typed_error() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        // Same pair twice, second time with the endpoints swapped.
        let spec = FaultSpec::new().kill_link(g(3), g(5)).kill_link(g(5), g(3));
        let err = topo.try_apply(&spec).unwrap_err();
        assert_eq!(err, FaultError::DuplicateKill { a: g(5), b: g(3) });
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn non_positive_degrade_factor_is_a_typed_error() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = topo
                .try_apply(&FaultSpec::new().degrade_link(g(0), g(1), bad))
                .unwrap_err();
            match err {
                FaultError::BadDegradeFactor { a, b, factor } => {
                    assert_eq!((a, b), (g(0), g(1)));
                    assert!(factor.is_nan() || factor == bad);
                }
                other => panic!("expected BadDegradeFactor, got {other:?}"),
            }
        }
    }

    #[test]
    fn sub_unity_slowdown_is_a_typed_error() {
        let topo = dgx1_v100();
        let err = topo
            .try_apply(&FaultSpec::new().slow_gpu(Device::gpu(0), 0.5))
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::BadSlowdownFactor {
                device: Device::gpu(0),
                factor: 0.5,
            }
        );
        assert!(err.to_string().contains("must be >= 1"));
    }

    #[test]
    fn missing_link_errors_distinguish_kill_from_degrade() {
        let topo = dgx1_v100();
        let g = Device::gpu;
        let kill = topo
            .try_apply(&FaultSpec::new().kill_link(g(3), g(4)))
            .unwrap_err();
        assert!(kill.to_string().contains("kills non-existent link"));
        let degrade = topo
            .try_apply(&FaultSpec::new().degrade_link(g(3), g(4), 0.5))
            .unwrap_err();
        assert!(degrade.to_string().contains("degrades non-existent link"));
    }

    #[test]
    fn two_stragglers_compose_both_slowdowns() {
        let g = Device::gpu;
        let spec = FaultSpec::new().two_stragglers(g(3), g(6), 1.5);
        assert_eq!(spec.slowdown_of(g(3)), 1.5);
        assert_eq!(spec.slowdown_of(g(6)), 1.5);
        assert_eq!(spec.slowdown_of(g(0)), 1.0);
        assert_eq!(spec.gpu_slowdowns().len(), 2);
        assert!(!spec.is_healthy());
        // Pure compute faults leave the graph alone.
        let topo = dgx1_v100();
        assert_eq!(topo.apply(&spec).links().len(), topo.links().len());
    }

    #[test]
    #[should_panic(expected = "two distinct GPUs")]
    fn identical_stragglers_panic() {
        let _ = FaultSpec::new().two_stragglers(Device::gpu(3), Device::gpu(3), 1.5);
    }
}
