//! Hardware routes between devices.

use std::fmt;

use voltascope_sim::SimSpan;

use crate::bandwidth::Bandwidth;
use crate::device::Device;
use crate::link::{LinkId, LinkKind};

/// One link crossing within a [`Route`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Source device of this hop.
    pub from: Device,
    /// Destination device of this hop.
    pub to: Device,
    /// The link crossed.
    pub link: LinkId,
    /// The link's technology.
    pub kind: LinkKind,
    /// Unidirectional bandwidth of the link.
    pub bandwidth: Bandwidth,
    /// Per-message latency of the link.
    pub latency: SimSpan,
}

/// A hardware path between two devices: the sequence of links a DMA
/// transfer crosses.
///
/// Multi-hop routes on the DGX-1 are *store-and-forward at the CPU*: a
/// GPU3→GPU4 copy is realised as a device-to-host copy followed by a
/// host-to-device copy (paper §V-A), so the total time is the sum of
/// per-hop times, not a pipelined cut-through.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Origin device.
    pub src: Device,
    /// Destination device.
    pub dst: Device,
    hops: Vec<Hop>,
}

impl Route {
    /// Assembles a route from its hops.
    ///
    /// # Panics
    ///
    /// Panics if the hops do not form a contiguous path from `src` to
    /// `dst`, or if `src == dst` and hops are non-empty.
    pub fn new(src: Device, dst: Device, hops: Vec<Hop>) -> Self {
        let mut at = src;
        for hop in &hops {
            assert_eq!(hop.from, at, "route hops are not contiguous");
            at = hop.to;
        }
        assert_eq!(at, dst, "route does not end at its destination");
        Route { src, dst, hops }
    }

    /// The hops in order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of links crossed. Zero for a self-route.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// `true` when the route is a single direct NVLink connection — the
    /// condition for CUDA peer-to-peer transfers and access.
    pub fn is_direct_nvlink(&self) -> bool {
        self.hops.len() == 1 && self.hops[0].kind.is_nvlink()
    }

    /// `true` when the route bounces through at least one CPU (the slow
    /// DtoH + HtoD fallback the paper describes for 8-GPU P2P training).
    pub fn through_host(&self) -> bool {
        self.hops.iter().any(|h| h.to.is_cpu())
    }

    /// The lowest bandwidth along the route, or `None` for a self-route.
    pub fn bottleneck_bandwidth(&self) -> Option<Bandwidth> {
        self.hops.iter().map(|h| h.bandwidth).reduce(Bandwidth::min)
    }

    /// Total latency along the route.
    pub fn total_latency(&self) -> SimSpan {
        self.hops.iter().map(|h| h.latency).sum()
    }

    /// Store-and-forward end-to-end time for a payload of `bytes`: the
    /// sum of per-hop latency and serialisation.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_topo::{dgx1_v100, Device};
    ///
    /// let topo = dgx1_v100();
    /// let direct = topo.route(Device::gpu(0), Device::gpu(1));
    /// let hosted = topo.route(Device::gpu(3), Device::gpu(4));
    /// // Same payload: host-bounced transfers are much slower.
    /// let payload = 10_000_000;
    /// assert!(hosted.transfer_time(payload) > direct.transfer_time(payload) * 4);
    /// ```
    pub fn transfer_time(&self, bytes: u64) -> SimSpan {
        self.hops
            .iter()
            .map(|h| h.latency + h.bandwidth.transfer_time(bytes))
            .sum()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.src)?;
        for hop in &self.hops {
            write!(f, " -[{}]-> {}", hop.kind, hop.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(from: Device, to: Device, kind: LinkKind, id: u32) -> Hop {
        Hop {
            from,
            to,
            link: LinkId(id),
            kind,
            bandwidth: kind.default_bandwidth(),
            latency: kind.default_latency(),
        }
    }

    #[test]
    fn self_route_has_no_hops() {
        let r = Route::new(Device::gpu(0), Device::gpu(0), vec![]);
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.transfer_time(1 << 30), SimSpan::ZERO);
        assert_eq!(r.bottleneck_bandwidth(), None);
        assert!(!r.is_direct_nvlink());
    }

    #[test]
    fn direct_nvlink_detected() {
        let r = Route::new(
            Device::gpu(0),
            Device::gpu(1),
            vec![hop(
                Device::gpu(0),
                Device::gpu(1),
                LinkKind::NvLink { lanes: 2 },
                0,
            )],
        );
        assert!(r.is_direct_nvlink());
        assert!(!r.through_host());
    }

    #[test]
    fn host_route_detected_and_bottlenecked() {
        let r = Route::new(
            Device::gpu(3),
            Device::gpu(4),
            vec![
                hop(Device::gpu(3), Device::cpu(0), LinkKind::Pcie, 0),
                hop(Device::cpu(0), Device::cpu(1), LinkKind::Qpi, 1),
                hop(Device::cpu(1), Device::gpu(4), LinkKind::Pcie, 2),
            ],
        );
        assert!(r.through_host());
        assert!(!r.is_direct_nvlink());
        assert_eq!(
            r.bottleneck_bandwidth().unwrap(),
            LinkKind::Pcie.default_bandwidth()
        );
        assert_eq!(
            r.total_latency(),
            LinkKind::Pcie.default_latency() * 2 + LinkKind::Qpi.default_latency()
        );
    }

    #[test]
    fn transfer_time_sums_hops() {
        let kind = LinkKind::NvLink { lanes: 1 };
        let r = Route::new(
            Device::gpu(0),
            Device::gpu(2),
            vec![
                hop(Device::gpu(0), Device::gpu(1), kind, 0),
                hop(Device::gpu(1), Device::gpu(2), kind, 1),
            ],
        );
        let one = kind.default_latency() + kind.default_bandwidth().transfer_time(1_000_000);
        assert_eq!(r.transfer_time(1_000_000), one * 2);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn discontiguous_hops_panic() {
        let kind = LinkKind::NvLink { lanes: 1 };
        let _ = Route::new(
            Device::gpu(0),
            Device::gpu(3),
            vec![
                hop(Device::gpu(0), Device::gpu(1), kind, 0),
                hop(Device::gpu(2), Device::gpu(3), kind, 1),
            ],
        );
    }

    #[test]
    fn display_shows_path() {
        let r = Route::new(
            Device::gpu(0),
            Device::gpu(1),
            vec![hop(
                Device::gpu(0),
                Device::gpu(1),
                LinkKind::NvLink { lanes: 2 },
                0,
            )],
        );
        assert_eq!(r.to_string(), "GPU0 -[NVLink x2]-> GPU1");
    }
}
