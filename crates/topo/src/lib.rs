//! # voltascope-topo — multi-GPU system interconnect topologies
//!
//! Models the device graph of a multi-GPU node: GPUs and CPUs as
//! vertices, NVLink / PCIe / QPI links as edges with per-direction
//! bandwidth and latency, plus the hardware routing rules that shape the
//! communication behaviour the paper measures:
//!
//! * **NVLink is point-to-point.** A GPU's NVLink router cannot forward
//!   a packet to a third device (paper §V-A footnote 4), so a hardware
//!   route between GPUs without a direct link falls back to PCIe through
//!   the CPUs (device-to-host + host-to-device).
//! * **Links aggregate.** GPU pairs wired with two NVLink lanes get a
//!   single virtual 50 GB/s connection (paper §IV-A).
//! * **Software relaying is possible.** MXNet stages transfers through
//!   an intermediate GPU that has direct links to both ends; the
//!   [`Topology::relay_candidates`] query supports that scheme (the
//!   actual two-stage copy is built by `voltascope-comm`).
//!
//! The exact Volta DGX-1 wiring of the paper's Fig. 2 ships as
//! [`dgx1_v100`], along with ablation topologies (PCIe-only,
//! single-lane NVLink, an idealised all-to-all switch).
//!
//! # Example
//!
//! ```
//! use voltascope_topo::{dgx1_v100, Device};
//!
//! let topo = dgx1_v100();
//! // GPU0-GPU1 are wired with an aggregated double NVLink: 50 GB/s.
//! let link = topo.direct_link(Device::gpu(0), Device::gpu(1)).unwrap();
//! assert_eq!(link.bandwidth.gigabytes_per_sec(), 50.0);
//! // GPU3 and GPU4 have no direct link: the hardware route goes
//! // through both CPUs.
//! let route = topo.route(Device::gpu(3), Device::gpu(4));
//! assert!(route.hop_count() > 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod device;
pub mod faults;
mod link;
mod presets;
pub mod render;
mod route;
mod topology;

pub use bandwidth::Bandwidth;
pub use device::{Device, DeviceKind};
pub use faults::{FaultError, FaultSpec};
pub use link::{Link, LinkId, LinkKind};
pub use presets::{dgx1_p100, dgx1_v100, full_nvlink_switch, pcie_only, single_lane_dgx1};
pub use route::Route;
pub use topology::Topology;
