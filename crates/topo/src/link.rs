//! Links: the edges of a topology graph.

use std::fmt;

use voltascope_sim::SimSpan;

use crate::bandwidth::Bandwidth;
use crate::device::Device;

/// Identifies a link within one [`Topology`](crate::Topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The dense index of this link inside its topology.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a link id from its dense index (the position in
    /// [`Topology::links`](crate::Topology::links)).
    pub fn from_index(index: usize) -> Self {
        LinkId(index as u32)
    }
}

/// The physical technology of a link. Determines default bandwidth and
/// latency; both can be overridden per link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// NVLink 2.0 with `lanes` aggregated bricks (25 GB/s per lane per
    /// direction; a double connection behaves as one 50 GB/s link,
    /// paper §IV-A).
    NvLink {
        /// Number of aggregated NVLink bricks on this connection.
        lanes: u32,
    },
    /// PCIe 3.0 ×16 host link (~16 GB/s raw, ~12 GB/s effective).
    Pcie,
    /// Intel QuickPath between the two CPU sockets.
    Qpi,
}

impl LinkKind {
    /// Default unidirectional bandwidth for this technology.
    pub fn default_bandwidth(self) -> Bandwidth {
        match self {
            // Paper §IV-A: "Each NVLink connection delivers 25 GB/s ...
            // NVLink can aggregate the connections and provide a 50 GB/s
            // virtual connection."
            LinkKind::NvLink { lanes } => Bandwidth::gigabytes_per_sec_of(25.0) * lanes,
            // PCIe 3.0 x16 sustains ~12 GB/s for large DMA transfers.
            LinkKind::Pcie => Bandwidth::gigabytes_per_sec_of(12.0),
            // QPI 9.6 GT/s ~ 19.2 GB/s per direction.
            LinkKind::Qpi => Bandwidth::gigabytes_per_sec_of(19.2),
        }
    }

    /// Default per-message latency for this technology.
    pub fn default_latency(self) -> SimSpan {
        match self {
            LinkKind::NvLink { .. } => SimSpan::from_nanos(1_300), // ~1.3 us
            LinkKind::Pcie => SimSpan::from_nanos(5_000),          // ~5 us
            LinkKind::Qpi => SimSpan::from_nanos(500),
        }
    }

    /// `true` for NVLink connections of any width.
    pub fn is_nvlink(self) -> bool {
        matches!(self, LinkKind::NvLink { .. })
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::NvLink { lanes } => write!(f, "NVLink x{lanes}"),
            LinkKind::Pcie => write!(f, "PCIe"),
            LinkKind::Qpi => write!(f, "QPI"),
        }
    }
}

/// A bidirectional link between two devices, with symmetric
/// per-direction bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: Device,
    /// The other endpoint.
    pub b: Device,
    /// Physical technology.
    pub kind: LinkKind,
    /// Unidirectional bandwidth.
    pub bandwidth: Bandwidth,
    /// Per-message latency.
    pub latency: SimSpan,
}

impl Link {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not an endpoint of this link.
    pub fn other_end(&self, device: Device) -> Device {
        if device == self.a {
            self.b
        } else if device == self.b {
            self.a
        } else {
            panic!("{device} is not an endpoint of {self}")
        }
    }

    /// `true` if `device` is one of the endpoints.
    pub fn connects(&self, device: Device) -> bool {
        self.a == device || self.b == device
    }

    /// Latency-plus-serialisation time for a payload of `bytes` crossing
    /// this link alone.
    pub fn transfer_time(&self, bytes: u64) -> SimSpan {
        self.latency + self.bandwidth.transfer_time(bytes)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}--{} ({}, {})",
            self.a, self.b, self.kind, self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link {
            a: Device::gpu(0),
            b: Device::gpu(1),
            kind: LinkKind::NvLink { lanes: 2 },
            bandwidth: LinkKind::NvLink { lanes: 2 }.default_bandwidth(),
            latency: SimSpan::from_nanos(1_300),
        }
    }

    #[test]
    fn nvlink_lanes_aggregate_bandwidth() {
        assert_eq!(
            LinkKind::NvLink { lanes: 1 }
                .default_bandwidth()
                .gigabytes_per_sec(),
            25.0
        );
        assert_eq!(
            LinkKind::NvLink { lanes: 2 }
                .default_bandwidth()
                .gigabytes_per_sec(),
            50.0
        );
    }

    #[test]
    fn other_end_flips() {
        let l = link();
        assert_eq!(l.other_end(Device::gpu(0)), Device::gpu(1));
        assert_eq!(l.other_end(Device::gpu(1)), Device::gpu(0));
        assert!(l.connects(Device::gpu(0)));
        assert!(!l.connects(Device::gpu(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_rejects_stranger() {
        let _ = link().other_end(Device::gpu(9));
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = link();
        let t = l.transfer_time(50_000_000); // 50 MB at 50 GB/s = 1 ms
        assert_eq!(t, SimSpan::from_millis(1) + SimSpan::from_nanos(1_300));
    }

    #[test]
    fn kind_display() {
        assert_eq!(LinkKind::NvLink { lanes: 2 }.to_string(), "NVLink x2");
        assert_eq!(LinkKind::Pcie.to_string(), "PCIe");
        assert!(LinkKind::NvLink { lanes: 1 }.is_nvlink());
        assert!(!LinkKind::Qpi.is_nvlink());
    }
}
