//! Plain-text table rendering with CSV export.

use std::fmt::Write as _;

/// A simple column-aligned text table; the output format of every
/// reproduction binary.
///
/// # Example
///
/// ```
/// use voltascope_profile::TextTable;
///
/// let mut t = TextTable::new(["GPUs", "Time (s)"]);
/// t.row(["1", "12.3"]);
/// t.row(["8", "2.1"]);
/// let out = t.render();
/// assert_eq!(out.lines().count(), 4); // header + rule + 2 rows
/// assert!(t.to_csv().starts_with("GPUs,Time (s)\n"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != table width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table (header, rule, rows).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (c, h) in self.header.iter().enumerate() {
            let sep = if c + 1 == cols { "\n" } else { "  " };
            write!(out, "{:<width$}{sep}", h, width = widths[c]).unwrap();
        }
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                let sep = if c + 1 == cols { "\n" } else { "  " };
                write!(out, "{:<width$}{sep}", cell, width = widths[c]).unwrap();
            }
        }
        out
    }

    /// Renders CSV (header + rows); cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_to_widest_cell() {
        let mut t = TextTable::new(["A", "BB"]);
        t.row(["wide-cell", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("A        "));
        assert!(lines[2].starts_with("wide-cell"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["A", "B"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["X"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
