//! ASCII timeline rendering (the paper's Fig. 1).

use std::collections::BTreeMap;

use voltascope_sim::Trace;

/// Renders a trace as an ASCII Gantt chart: one row per resource,
/// `width` time buckets, each bucket showing the first letter of the
/// category that was active (uppercase) or `.` for idle. Events without
/// a resource (barriers, markers) are skipped.
///
/// This regenerates the structure of the paper's Fig. 1: FP/BP bands on
/// every GPU followed by the staggered WU transfers.
///
/// # Example
///
/// ```
/// use voltascope_profile::render_timeline;
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
///
/// let mut g = TaskGraph::new();
/// let gpu = g.add_resource("gpu0", 1);
/// let fp = g.task("fp").on(gpu).lasting(SimSpan::from_micros(10)).category("fp").build();
/// g.task("bp").on(gpu).lasting(SimSpan::from_micros(20)).category("bp").after(fp).build();
/// let trace = Engine::new().run(&g).unwrap().into_trace();
/// let art = render_timeline(&trace, 30);
/// assert!(art.contains("gpu0"));
/// assert!(art.contains('F') && art.contains('B'));
/// ```
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(1);
    let end = trace.end_time().as_nanos().max(1);
    let mut rows: BTreeMap<String, Vec<char>> = BTreeMap::new();
    for e in trace.events() {
        let Some(res) = &e.resource else { continue };
        let row = rows.entry(res.clone()).or_insert_with(|| vec!['.'; width]);
        let glyph = e
            .category
            .chars()
            .next()
            .unwrap_or('?')
            .to_ascii_uppercase();
        let lo = (e.start.as_nanos() as u128 * width as u128 / end as u128) as usize;
        let hi = (e.end.as_nanos() as u128 * width as u128 / end as u128) as usize;
        for slot in row.iter_mut().take(hi.max(lo + 1).min(width)).skip(lo) {
            *slot = glyph;
        }
    }
    let name_width = rows.keys().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (name, row) in rows {
        out.push_str(&format!("{name:>name_width$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>name_width$}  0{:>width$}\n",
        "",
        format!("{}", trace.end_time()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::{SimSpan, TaskGraph};

    fn demo_trace() -> Trace {
        let mut g = TaskGraph::new();
        let g0 = g.add_resource("gpu0.compute", 1);
        let g1 = g.add_resource("gpu1.compute", 1);
        let link = g.add_resource("link.GPU1>GPU0", 1);
        let f0 = g
            .task("fp0")
            .on(g0)
            .lasting(SimSpan::from_micros(50))
            .category("fp")
            .build();
        let b0 = g
            .task("bp0")
            .on(g0)
            .lasting(SimSpan::from_micros(100))
            .category("bp")
            .after(f0)
            .build();
        let f1 = g
            .task("fp1")
            .on(g1)
            .lasting(SimSpan::from_micros(50))
            .category("fp")
            .build();
        let b1 = g
            .task("bp1")
            .on(g1)
            .lasting(SimSpan::from_micros(100))
            .category("bp")
            .after(f1)
            .build();
        let x = g
            .task("grad")
            .on(link)
            .lasting(SimSpan::from_micros(30))
            .category("wu.p2p")
            .after(b1)
            .build();
        g.task("upd")
            .on(g0)
            .lasting(SimSpan::from_micros(10))
            .category("wu.update")
            .after(x)
            .after(b0)
            .build();
        voltascope_sim::Engine::new().run(&g).unwrap().into_trace()
    }

    #[test]
    fn one_row_per_resource() {
        let art = render_timeline(&demo_trace(), 40);
        assert!(art.contains("gpu0.compute"));
        assert!(art.contains("gpu1.compute"));
        assert!(art.contains("link.GPU1>GPU0"));
    }

    #[test]
    fn stages_appear_in_order() {
        let art = render_timeline(&demo_trace(), 60);
        let gpu0_row = art.lines().find(|l| l.contains("gpu0.compute")).unwrap();
        let f = gpu0_row.find('F').unwrap();
        let b = gpu0_row.find('B').unwrap();
        let w = gpu0_row.find('W').unwrap();
        assert!(f < b && b < w, "row was: {gpu0_row}");
    }

    #[test]
    fn idle_time_is_dots() {
        let art = render_timeline(&demo_trace(), 60);
        let link_row = art.lines().find(|l| l.contains("link.")).unwrap();
        assert!(link_row.contains('.'));
        assert!(link_row.contains('W'));
    }

    #[test]
    fn zero_width_clamps() {
        let art = render_timeline(&demo_trace(), 0);
        assert!(!art.is_empty());
    }

    #[test]
    fn empty_trace_renders_axis_only() {
        let art = render_timeline(&Trace::default(), 10);
        assert!(art.contains('0'));
    }
}
