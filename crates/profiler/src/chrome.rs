//! Chrome trace-event export: load a simulated run into
//! `chrome://tracing` / Perfetto for interactive inspection.

use std::fmt::Write as _;

use voltascope_sim::Trace;

/// Serialises a trace as Chrome trace-event JSON (array format): one
/// complete event (`"ph":"X"`) per task, grouped into tracks by
/// resource name. Timestamps are microseconds, as the format requires,
/// with fractional digits preserved so sub-µs kernels keep their true
/// position and length (the format accepts decimal `ts`/`dur`).
///
/// The output is hand-rolled JSON (the workspace deliberately avoids a
/// JSON dependency); labels are escaped.
///
/// # Example
///
/// ```
/// use voltascope_profile::chrome_trace;
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
///
/// let mut g = TaskGraph::new();
/// let r = g.add_resource("gpu0", 1);
/// g.task("fp.conv1").on(r).lasting(SimSpan::from_micros(5)).category("fp").build();
/// let trace = Engine::new().run(&g).unwrap().into_trace();
/// let json = chrome_trace(&trace);
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"fp.conv1\""));
/// assert!(json.ends_with("]\n"));
/// ```
pub fn chrome_trace(trace: &Trace) -> String {
    let mut tracks: Vec<&str> = trace
        .events()
        .iter()
        .filter_map(|e| e.resource.as_deref())
        .collect();
    tracks.sort();
    tracks.dedup();
    chrome_trace_with_tracks(trace, &tracks)
}

/// Like [`chrome_trace`], but with an explicit track list (and order):
/// track `i` of `tracks` becomes tid `i + 1`, letting callers pin a
/// stable track layout across traces whose resource sets differ.
///
/// Events whose resource is absent from `tracks` land on a dedicated
/// overflow track (tid `tracks.len() + 1`, labelled `(unresolved)`),
/// never on tid 0 — that id is reserved for events with *no* resource,
/// matching the metadata-track convention tooling expects.
pub fn chrome_trace_with_tracks(trace: &Trace, tracks: &[&str]) -> String {
    let overflow = tracks.len() + 1;
    let tid = |name: &str| {
        tracks
            .iter()
            .position(|t| *t == name)
            .map(|i| i + 1)
            .unwrap_or(overflow)
    };
    let has_overflow = trace
        .events()
        .iter()
        .any(|e| e.resource.as_deref().is_some_and(|r| !tracks.contains(&r)));

    let mut out = String::from("[\n");
    let mut first = true;
    // Thread-name metadata events give each resource a labelled track.
    for (i, name) in tracks.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            escape(name)
        )
        .unwrap();
    }
    if has_overflow {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{overflow},\"args\":{{\"name\":\"(unresolved)\"}}}}",
        )
        .unwrap();
    }
    for e in trace.events() {
        if e.duration().is_zero() && e.resource.is_none() {
            continue; // barriers/markers add noise without information
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let track = e.resource.as_deref().map(tid).unwrap_or(0);
        write!(
            out,
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape(&e.label),
            escape(&e.category),
            track,
            micros(e.start.as_nanos()),
            micros(e.duration().as_nanos())
        )
        .unwrap();
    }
    out.push_str("\n]\n");
    out
}

/// Formats a nanosecond count as microseconds with up to three
/// fractional digits, trailing zeros trimmed: `3000` → `"3"`,
/// `300` → `"0.3"`, `1250` → `"1.25"`. Keeps sub-µs events at their
/// true position instead of truncating to whole microseconds.
fn micros(ns: u64) -> String {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        return whole.to_string();
    }
    let mut s = format!("{whole}.{frac:03}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// JSON string escaping per RFC 8259: the two mandatory characters,
/// short escapes for the common control characters, and `\uXXXX` for
/// the rest — labels with tabs or newlines round-trip instead of
/// being flattened to spaces.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if c.is_control() => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::{Engine, SimSpan, TaskGraph};

    fn demo() -> Trace {
        let mut g = TaskGraph::new();
        let r0 = g.add_resource("gpu0.compute", 1);
        let r1 = g.add_resource("link.GPU0>GPU1", 1);
        let a = g
            .task("fp.conv")
            .on(r0)
            .lasting(SimSpan::from_micros(3))
            .category("fp")
            .build();
        g.task("grad")
            .on(r1)
            .lasting(SimSpan::from_micros(2))
            .category("wu")
            .after(a)
            .build();
        g.task("barrier").after(a).build();
        Engine::new().run(&g).unwrap().into_trace()
    }

    #[test]
    fn emits_one_track_per_resource() {
        let json = chrome_trace(&demo());
        assert!(json.contains("\"gpu0.compute\""));
        assert!(json.contains("\"link.GPU0>GPU1\""));
        assert_eq!(json.matches("thread_name").count(), 2);
    }

    #[test]
    fn events_carry_timing_in_microseconds() {
        let json = chrome_trace(&demo());
        assert!(json.contains("\"ts\":0,\"dur\":3"));
        assert!(json.contains("\"ts\":3,\"dur\":2"));
    }

    #[test]
    fn zero_length_barriers_are_skipped() {
        let json = chrome_trace(&demo());
        assert!(!json.contains("\"barrier\""));
    }

    #[test]
    fn unresolved_resources_get_the_overflow_track_not_tid_zero() {
        // An explicit track list that omits one of the trace's
        // resources: events on the missing resource must land on the
        // dedicated overflow track (tracks.len() + 1), not collide
        // with tid 0 (the metadata/no-resource convention).
        let trace = demo();
        let json = chrome_trace_with_tracks(&trace, &["gpu0.compute"]);
        // The resolved resource keeps its position-based tid.
        assert!(
            json.contains("\"name\":\"fp.conv\",\"cat\":\"fp\",\"ph\":\"X\",\"pid\":1,\"tid\":1")
        );
        // The unresolved one overflows to tracks.len() + 1 = 2.
        assert!(json.contains("\"name\":\"grad\",\"cat\":\"wu\",\"ph\":\"X\",\"pid\":1,\"tid\":2"));
        assert!(!json.contains("\"tid\":0"));
        // The overflow track is labelled so viewers show it grouped.
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"(unresolved)\"}"));
    }

    #[test]
    fn explicit_track_order_is_respected() {
        // Caller-pinned ordering, not sorted: link first → tid 1.
        let json = chrome_trace_with_tracks(&demo(), &["link.GPU0>GPU1", "gpu0.compute"]);
        assert!(json.contains("\"tid\":1,\"args\":{\"name\":\"link.GPU0>GPU1\"}"));
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"gpu0.compute\"}"));
        assert!(json.contains("\"name\":\"grad\",\"cat\":\"wu\",\"ph\":\"X\",\"pid\":1,\"tid\":1"));
        // No overflow track when every resource resolves.
        assert!(!json.contains("(unresolved)"));
    }

    #[test]
    fn derived_track_list_never_overflows() {
        // chrome_trace derives tracks from the trace itself, so the
        // overflow path must be unreachable through it.
        let json = chrome_trace(&demo());
        assert!(!json.contains("(unresolved)"));
        assert!(!json.contains("\"tid\":0"));
    }

    #[test]
    fn labels_are_escaped() {
        use voltascope_sim::{SimTime, TaskId, TraceEvent};
        let trace = Trace::new(vec![TraceEvent {
            task: TaskId::from_index(0),
            label: "evil\"label\\".into(),
            category: "c".into(),
            resource: Some("r".into()),
            start: SimTime::ZERO,
            end: SimTime::from_nanos(5_000),
        }]);
        let json = chrome_trace(&trace);
        assert!(json.contains("evil\\\"label\\\\"));
    }

    fn event(i: usize, label: &str, start_ns: u64, end_ns: u64) -> voltascope_sim::TraceEvent {
        use voltascope_sim::{SimTime, TaskId, TraceEvent};
        TraceEvent {
            task: TaskId::from_index(i),
            label: label.into(),
            category: "fp".into(),
            resource: Some("gpu0".into()),
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
        }
    }

    #[test]
    fn sub_microsecond_kernels_keep_fractional_timing() {
        // Two adjacent 300 ns kernels. The old exporter truncated ts
        // with as_micros() and fabricated dur.max(1), rendering both
        // at ts 0 with 1 µs durations — overlapping events that never
        // overlapped.
        let json = chrome_trace(&Trace::new(vec![
            event(0, "k0", 0, 300),
            event(1, "k1", 300, 600),
        ]));
        assert!(json.contains("\"ts\":0,\"dur\":0.3"), "{json}");
        assert!(json.contains("\"ts\":0.3,\"dur\":0.3"), "{json}");
        assert!(!json.contains("\"dur\":1}"), "no fabricated 1 µs: {json}");
        assert_json(&json);
    }

    #[test]
    fn fractional_microseconds_trim_trailing_zeros() {
        assert_eq!(micros(3_000), "3");
        assert_eq!(micros(300), "0.3");
        assert_eq!(micros(1_250), "1.25");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000_001), "1000.001");
    }

    #[test]
    fn control_characters_escape_to_strict_json() {
        // The old escape() replaced control characters with a space,
        // silently corrupting the label; now they become proper JSON
        // escapes and the document stays strictly parseable.
        let json = chrome_trace(&Trace::new(vec![event(0, "a\tb\nc\u{1}d", 0, 5_000)]));
        assert!(json.contains("a\\tb\\nc\\u0001d"), "{json}");
        assert_json(&json);
    }

    #[test]
    fn exported_documents_parse_as_strict_json() {
        assert_json(&chrome_trace(&demo()));
        assert_json(&chrome_trace_with_tracks(&demo(), &["gpu0.compute"]));
    }

    /// Minimal strict JSON validator (RFC 8259): panics with a
    /// position on the first violation. Kept test-local because the
    /// workspace deliberately has no JSON dependency.
    fn assert_json(s: &str) {
        let b = s.as_bytes();
        let mut i = 0;
        skip_ws(b, &mut i);
        value(b, &mut i);
        skip_ws(b, &mut i);
        assert_eq!(i, b.len(), "trailing bytes after JSON value");
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) {
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return;
                }
                loop {
                    skip_ws(b, i);
                    string(b, i);
                    skip_ws(b, i);
                    assert_eq!(b.get(*i), Some(&b':'), "expected ':' at {i}");
                    *i += 1;
                    skip_ws(b, i);
                    value(b, i);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return;
                        }
                        other => panic!("expected ',' or '}}' at {i}, got {other:?}"),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return;
                }
                loop {
                    skip_ws(b, i);
                    value(b, i);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return;
                        }
                        other => panic!("expected ',' or ']' at {i}, got {other:?}"),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => panic!("unexpected JSON byte at {i}: {other:?}"),
        }
    }

    fn string(b: &[u8], i: &mut usize) {
        assert_eq!(b.get(*i), Some(&b'"'), "expected '\"' at {i}");
        *i += 1;
        loop {
            match b.get(*i) {
                Some(b'"') => {
                    *i += 1;
                    return;
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        Some(b'u') => {
                            for k in 1..=4 {
                                assert!(
                                    b.get(*i + k).is_some_and(u8::is_ascii_hexdigit),
                                    "bad \\u escape at {i}"
                                );
                            }
                            *i += 5;
                        }
                        other => panic!("bad escape at {i}: {other:?}"),
                    }
                }
                Some(c) if *c < 0x20 => panic!("raw control character 0x{c:02x} at {i}"),
                Some(_) => *i += 1,
                None => panic!("unterminated string"),
            }
        }
    }

    fn number(b: &[u8], i: &mut usize) {
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        assert!(
            b.get(*i).is_some_and(u8::is_ascii_digit),
            "expected digit at {i}"
        );
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            assert!(
                b.get(*i).is_some_and(u8::is_ascii_digit),
                "digit must follow '.' at {i}"
            );
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
        }
    }
}
