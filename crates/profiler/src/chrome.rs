//! Chrome trace-event export: load a simulated run into
//! `chrome://tracing` / Perfetto for interactive inspection.

use std::fmt::Write as _;

use voltascope_sim::Trace;

/// Serialises a trace as Chrome trace-event JSON (array format): one
/// complete event (`"ph":"X"`) per task, grouped into tracks by
/// resource name. Timestamps are microseconds, as the format requires.
///
/// The output is hand-rolled JSON (the workspace deliberately avoids a
/// JSON dependency); labels are escaped.
///
/// # Example
///
/// ```
/// use voltascope_profile::chrome_trace;
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
///
/// let mut g = TaskGraph::new();
/// let r = g.add_resource("gpu0", 1);
/// g.task("fp.conv1").on(r).lasting(SimSpan::from_micros(5)).category("fp").build();
/// let trace = Engine::new().run(&g).unwrap().into_trace();
/// let json = chrome_trace(&trace);
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"fp.conv1\""));
/// assert!(json.ends_with("]\n"));
/// ```
pub fn chrome_trace(trace: &Trace) -> String {
    let mut tracks: Vec<&str> = trace
        .events()
        .iter()
        .filter_map(|e| e.resource.as_deref())
        .collect();
    tracks.sort();
    tracks.dedup();
    chrome_trace_with_tracks(trace, &tracks)
}

/// Like [`chrome_trace`], but with an explicit track list (and order):
/// track `i` of `tracks` becomes tid `i + 1`, letting callers pin a
/// stable track layout across traces whose resource sets differ.
///
/// Events whose resource is absent from `tracks` land on a dedicated
/// overflow track (tid `tracks.len() + 1`, labelled `(unresolved)`),
/// never on tid 0 — that id is reserved for events with *no* resource,
/// matching the metadata-track convention tooling expects.
pub fn chrome_trace_with_tracks(trace: &Trace, tracks: &[&str]) -> String {
    let overflow = tracks.len() + 1;
    let tid = |name: &str| {
        tracks
            .iter()
            .position(|t| *t == name)
            .map(|i| i + 1)
            .unwrap_or(overflow)
    };
    let has_overflow = trace
        .events()
        .iter()
        .any(|e| e.resource.as_deref().is_some_and(|r| !tracks.contains(&r)));

    let mut out = String::from("[\n");
    let mut first = true;
    // Thread-name metadata events give each resource a labelled track.
    for (i, name) in tracks.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            escape(name)
        )
        .unwrap();
    }
    if has_overflow {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{overflow},\"args\":{{\"name\":\"(unresolved)\"}}}}",
        )
        .unwrap();
    }
    for e in trace.events() {
        if e.duration().is_zero() && e.resource.is_none() {
            continue; // barriers/markers add noise without information
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let track = e.resource.as_deref().map(tid).unwrap_or(0);
        write!(
            out,
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape(&e.label),
            escape(&e.category),
            track,
            e.start.as_micros(),
            e.duration().as_micros().max(1)
        )
        .unwrap();
    }
    out.push_str("\n]\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::{Engine, SimSpan, TaskGraph};

    fn demo() -> Trace {
        let mut g = TaskGraph::new();
        let r0 = g.add_resource("gpu0.compute", 1);
        let r1 = g.add_resource("link.GPU0>GPU1", 1);
        let a = g
            .task("fp.conv")
            .on(r0)
            .lasting(SimSpan::from_micros(3))
            .category("fp")
            .build();
        g.task("grad")
            .on(r1)
            .lasting(SimSpan::from_micros(2))
            .category("wu")
            .after(a)
            .build();
        g.task("barrier").after(a).build();
        Engine::new().run(&g).unwrap().into_trace()
    }

    #[test]
    fn emits_one_track_per_resource() {
        let json = chrome_trace(&demo());
        assert!(json.contains("\"gpu0.compute\""));
        assert!(json.contains("\"link.GPU0>GPU1\""));
        assert_eq!(json.matches("thread_name").count(), 2);
    }

    #[test]
    fn events_carry_timing_in_microseconds() {
        let json = chrome_trace(&demo());
        assert!(json.contains("\"ts\":0,\"dur\":3"));
        assert!(json.contains("\"ts\":3,\"dur\":2"));
    }

    #[test]
    fn zero_length_barriers_are_skipped() {
        let json = chrome_trace(&demo());
        assert!(!json.contains("\"barrier\""));
    }

    #[test]
    fn unresolved_resources_get_the_overflow_track_not_tid_zero() {
        // An explicit track list that omits one of the trace's
        // resources: events on the missing resource must land on the
        // dedicated overflow track (tracks.len() + 1), not collide
        // with tid 0 (the metadata/no-resource convention).
        let trace = demo();
        let json = chrome_trace_with_tracks(&trace, &["gpu0.compute"]);
        // The resolved resource keeps its position-based tid.
        assert!(
            json.contains("\"name\":\"fp.conv\",\"cat\":\"fp\",\"ph\":\"X\",\"pid\":1,\"tid\":1")
        );
        // The unresolved one overflows to tracks.len() + 1 = 2.
        assert!(json.contains("\"name\":\"grad\",\"cat\":\"wu\",\"ph\":\"X\",\"pid\":1,\"tid\":2"));
        assert!(!json.contains("\"tid\":0"));
        // The overflow track is labelled so viewers show it grouped.
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"(unresolved)\"}"));
    }

    #[test]
    fn explicit_track_order_is_respected() {
        // Caller-pinned ordering, not sorted: link first → tid 1.
        let json = chrome_trace_with_tracks(&demo(), &["link.GPU0>GPU1", "gpu0.compute"]);
        assert!(json.contains("\"tid\":1,\"args\":{\"name\":\"link.GPU0>GPU1\"}"));
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"gpu0.compute\"}"));
        assert!(json.contains("\"name\":\"grad\",\"cat\":\"wu\",\"ph\":\"X\",\"pid\":1,\"tid\":1"));
        // No overflow track when every resource resolves.
        assert!(!json.contains("(unresolved)"));
    }

    #[test]
    fn derived_track_list_never_overflows() {
        // chrome_trace derives tracks from the trace itself, so the
        // overflow path must be unreachable through it.
        let json = chrome_trace(&demo());
        assert!(!json.contains("(unresolved)"));
        assert!(!json.contains("\"tid\":0"));
    }

    #[test]
    fn labels_are_escaped() {
        use voltascope_sim::{SimTime, TaskId, TraceEvent};
        let trace = Trace::new(vec![TraceEvent {
            task: TaskId::from_index(0),
            label: "evil\"label\\".into(),
            category: "c".into(),
            resource: Some("r".into()),
            start: SimTime::ZERO,
            end: SimTime::from_nanos(5_000),
        }]);
        let json = chrome_trace(&trace);
        assert!(json.contains("evil\\\"label\\\\"));
    }
}
