//! # voltascope-profile — the measurement surface of the reproduction
//!
//! Stand-in for `nvprof` and `nvidia-smi` (paper §IV-B): turns the
//! simulator's execution traces into the reports the paper's tables
//! are built from.
//!
//! * [`ProfileSummary`] — nvprof-style "GPU activities" / "API calls"
//!   aggregation with time shares, call counts, and averages (the
//!   source of Table III's `cudaStreamSynchronize` shares).
//! * [`render_timeline`] — an ASCII Gantt chart of one iteration per
//!   resource (regenerates the paper's Fig. 1 timeline).
//! * [`chrome_trace`] — Chrome trace-event JSON export for interactive
//!   inspection in `chrome://tracing` / Perfetto.
//! * [`TextTable`] — the plain-text table builder all reproduction
//!   binaries print through, with CSV export.
//!
//! # Example
//!
//! ```
//! use voltascope_profile::TextTable;
//!
//! let mut table = TextTable::new(["Network", "Batch", "Overhead (%)"]);
//! table.row(["LeNet", "16", "21.8"]);
//! let text = table.render();
//! assert!(text.contains("LeNet"));
//! assert!(text.contains("Overhead"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod summary;
mod table;
mod timeline;

pub use chrome::{chrome_trace, chrome_trace_with_tracks};
pub use summary::{ProfileLine, ProfileSummary};
pub use table::TextTable;
pub use timeline::render_timeline;
