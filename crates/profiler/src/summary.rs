//! nvprof-style trace aggregation.

use std::collections::BTreeMap;
use std::fmt;

use voltascope_sim::{SimSpan, Trace};

/// One aggregated row of a profile: a category with its total time,
/// call count, and share of its section.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileLine {
    /// Category name (e.g. `"fp"`, `"api.cudaStreamSynchronize"`).
    pub category: String,
    /// Share of the section's total time, in percent.
    pub percent: f64,
    /// Total time across calls.
    pub total: SimSpan,
    /// Number of calls.
    pub calls: u64,
    /// Average time per call.
    pub average: SimSpan,
}

/// An nvprof-style summary: "GPU activities" (kernels and transfers)
/// and "API calls" (host runtime), each sorted by descending time.
///
/// # Example
///
/// ```
/// use voltascope_sim::{Engine, SimSpan, TaskGraph};
/// use voltascope_profile::ProfileSummary;
///
/// let mut g = TaskGraph::new();
/// let gpu = g.add_resource("gpu", 1);
/// g.task("k1").on(gpu).lasting(SimSpan::from_micros(90)).category("fp").build();
/// g.task("s").lasting(SimSpan::from_micros(10)).category("api.cudaStreamSynchronize").build();
/// let trace = Engine::new().run(&g).unwrap().into_trace();
/// let summary = ProfileSummary::from_trace(&trace);
/// assert_eq!(summary.gpu_activities()[0].category, "fp");
/// assert_eq!(summary.api_calls()[0].calls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    gpu: Vec<ProfileLine>,
    api: Vec<ProfileLine>,
}

impl ProfileSummary {
    /// Aggregates a trace. Categories starting with `api.` become API
    /// rows; `marker` and `setup` events are skipped; everything else
    /// is a GPU activity.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut gpu: BTreeMap<String, (SimSpan, u64)> = BTreeMap::new();
        let mut api: BTreeMap<String, (SimSpan, u64)> = BTreeMap::new();
        for e in trace.events() {
            if e.category == "marker" || e.category == "setup" || e.category.is_empty() {
                continue;
            }
            let slot = if e.category.starts_with("api.") {
                api.entry(e.category.clone()).or_insert((SimSpan::ZERO, 0))
            } else {
                gpu.entry(e.category.clone()).or_insert((SimSpan::ZERO, 0))
            };
            slot.0 += e.duration();
            slot.1 += 1;
        }
        ProfileSummary {
            gpu: section(gpu),
            api: section(api),
        }
    }

    /// Kernel/transfer rows, sorted by descending total time.
    pub fn gpu_activities(&self) -> &[ProfileLine] {
        &self.gpu
    }

    /// Host API rows, sorted by descending total time.
    pub fn api_calls(&self) -> &[ProfileLine] {
        &self.api
    }

    /// The share (in percent of total API time) of the named call —
    /// Table III queries this for `cudaStreamSynchronize`.
    pub fn api_percent(&self, name: &str) -> f64 {
        self.api
            .iter()
            .find(|l| l.category == name)
            .map(|l| l.percent)
            .unwrap_or(0.0)
    }
}

impl ProfileSummary {
    /// Converts the summary into a [`TextTable`](crate::TextTable)
    /// (one section column distinguishing GPU activities from API
    /// calls) for CSV export.
    pub fn to_table(&self) -> crate::TextTable {
        let mut table =
            crate::TextTable::new(["Section", "Name", "Time (%)", "Time", "Calls", "Avg"]);
        for (section, lines) in [("GPU activities", &self.gpu), ("API calls", &self.api)] {
            for l in lines {
                table.row([
                    section.to_string(),
                    l.category.clone(),
                    format!("{:.2}", l.percent),
                    l.total.to_string(),
                    l.calls.to_string(),
                    l.average.to_string(),
                ]);
            }
        }
        table
    }
}

fn section(map: BTreeMap<String, (SimSpan, u64)>) -> Vec<ProfileLine> {
    let total: SimSpan = map.values().map(|(t, _)| *t).sum();
    let mut lines: Vec<ProfileLine> = map
        .into_iter()
        .map(|(category, (time, calls))| ProfileLine {
            category,
            percent: 100.0 * time.ratio(total),
            total: time,
            calls,
            average: if calls == 0 {
                SimSpan::ZERO
            } else {
                time / calls
            },
        })
        .collect();
    lines.sort_by(|a, b| b.total.cmp(&a.total).then(a.category.cmp(&b.category)));
    lines
}

impl fmt::Display for ProfileSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== Profiling result (simulated nvprof) ====")?;
        writeln!(f, "GPU activities:")?;
        writeln!(
            f,
            "  {:>7}  {:>12}  {:>8}  {:>12}  Name",
            "Time(%)", "Time", "Calls", "Avg"
        )?;
        for l in &self.gpu {
            writeln!(
                f,
                "  {:>6.2}%  {:>12}  {:>8}  {:>12}  {}",
                l.percent,
                l.total.to_string(),
                l.calls,
                l.average.to_string(),
                l.category
            )?;
        }
        writeln!(f, "API calls:")?;
        for l in &self.api {
            writeln!(
                f,
                "  {:>6.2}%  {:>12}  {:>8}  {:>12}  {}",
                l.percent,
                l.total.to_string(),
                l.calls,
                l.average.to_string(),
                l.category
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_sim::{SimTime, TaskId, TraceEvent};

    fn ev(cat: &str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            task: TaskId::from_index(0),
            label: "x".into(),
            category: cat.into(),
            resource: None,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn sections_split_and_sort() {
        let trace = Trace::new(vec![
            ev("fp", 0, 100),
            ev("bp", 0, 300),
            ev("api.cudaLaunchKernel", 0, 10),
            ev("api.cudaStreamSynchronize", 0, 30),
            ev("marker", 0, 999),
        ]);
        let s = ProfileSummary::from_trace(&trace);
        assert_eq!(s.gpu_activities().len(), 2);
        assert_eq!(s.gpu_activities()[0].category, "bp");
        assert_eq!(s.api_calls()[0].category, "api.cudaStreamSynchronize");
        assert!((s.api_calls()[0].percent - 75.0).abs() < 1e-9);
        assert_eq!(
            s.api_percent("api.cudaStreamSynchronize"),
            s.api_calls()[0].percent
        );
        assert_eq!(s.api_percent("api.nonexistent"), 0.0);
    }

    #[test]
    fn percentages_sum_to_hundred_per_section() {
        let trace = Trace::new(vec![
            ev("fp", 0, 123),
            ev("bp", 0, 456),
            ev("wu.update", 0, 78),
        ]);
        let s = ProfileSummary::from_trace(&trace);
        let sum: f64 = s.gpu_activities().iter().map(|l| l.percent).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn call_counts_and_averages() {
        let trace = Trace::new(vec![ev("fp", 0, 10), ev("fp", 10, 30)]);
        let s = ProfileSummary::from_trace(&trace);
        let line = &s.gpu_activities()[0];
        assert_eq!(line.calls, 2);
        assert_eq!(line.total, SimSpan::from_nanos(30));
        assert_eq!(line.average, SimSpan::from_nanos(15));
    }

    #[test]
    fn display_includes_both_sections() {
        let trace = Trace::new(vec![ev("fp", 0, 10), ev("api.cudaMalloc", 0, 5)]);
        let text = ProfileSummary::from_trace(&trace).to_string();
        assert!(text.contains("GPU activities:"));
        assert!(text.contains("API calls:"));
        assert!(text.contains("api.cudaMalloc"));
    }

    #[test]
    fn to_table_covers_both_sections() {
        let trace = Trace::new(vec![ev("fp", 0, 10), ev("api.cudaMalloc", 0, 5)]);
        let table = ProfileSummary::from_trace(&trace).to_table();
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.contains("GPU activities,fp"));
        assert!(csv.contains("API calls,api.cudaMalloc"));
    }

    #[test]
    fn empty_trace_is_fine() {
        let s = ProfileSummary::from_trace(&Trace::default());
        assert!(s.gpu_activities().is_empty());
        assert!(s.api_calls().is_empty());
    }
}
