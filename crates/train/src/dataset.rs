//! Dataset descriptors and synthetic data generation.

use voltascope_dnn::{Shape, Tensor};

/// How the dataset grows with GPU count (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingMode {
    /// Fixed dataset size regardless of GPU count (speedup = strong
    /// scaling; the paper uses 256K ImageNet images).
    Strong,
    /// Dataset grows proportionally to GPU count (256K images *per
    /// GPU*: 512K for 2, 1024K for 4, 2048K for 8).
    Weak,
}

/// Size/shape description of a training set — all the simulator needs
/// (the paper profiles time, not accuracy, so image *content* only
/// matters for the numeric tests, which use [`SyntheticDataset`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Name for reports.
    pub name: String,
    /// Base image count (per the strong-scaling configuration).
    pub images: u64,
    /// Number of classes.
    pub classes: usize,
}

impl DatasetSpec {
    /// The paper's 256K-image ImageNet subset (§IV-C).
    pub fn imagenet_256k() -> Self {
        DatasetSpec {
            name: "ImageNet-256K".to_string(),
            images: 256 * 1024,
            classes: 1000,
        }
    }

    /// Total images given the scaling mode and GPU count.
    pub fn total_images(&self, scaling: ScalingMode, gpu_count: usize) -> u64 {
        match scaling {
            ScalingMode::Strong => self.images,
            ScalingMode::Weak => self.images * gpu_count as u64,
        }
    }

    /// Iterations per epoch: each iteration consumes one mini-batch of
    /// `batch_per_gpu` on every GPU.
    ///
    /// # Panics
    ///
    /// Panics if `batch_per_gpu` or `gpu_count` is zero.
    pub fn iterations(&self, scaling: ScalingMode, batch_per_gpu: usize, gpu_count: usize) -> u64 {
        assert!(batch_per_gpu > 0 && gpu_count > 0);
        let total = self.total_images(scaling, gpu_count);
        let per_iter = (batch_per_gpu * gpu_count) as u64;
        total.div_ceil(per_iter)
    }

    /// Bytes of one input image for the given image shape (f32).
    pub fn image_bytes(image_shape: &Shape) -> u64 {
        image_shape.with_batch(1).bytes()
    }
}

/// A deterministic synthetic classification dataset whose labels are
/// learnable from the images: each class has a base pattern, and each
/// sample is its class pattern plus small pseudo-random noise. Used by
/// the numeric training demos and tests (loss must actually fall).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    image_shape: Shape,
    classes: usize,
    samples: usize,
    seed: u64,
}

impl SyntheticDataset {
    /// Creates a dataset of `samples` images of `image_shape` (batch
    /// dim 1) over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` or `samples` is zero, or the shape's batch
    /// dimension is not 1.
    pub fn new(image_shape: Shape, classes: usize, samples: usize, seed: u64) -> Self {
        assert!(classes > 0 && samples > 0);
        assert_eq!(image_shape.dim(0), 1, "image shape uses batch 1");
        SyntheticDataset {
            image_shape,
            classes,
            samples,
            seed,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// `true` when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The label of sample `index`.
    pub fn label(&self, index: usize) -> usize {
        index % self.classes
    }

    /// Materialises a mini-batch `[start, start + count)` (indices wrap
    /// around the dataset) as an input tensor and label vector.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn batch(&self, start: usize, count: usize) -> (Tensor, Vec<usize>) {
        assert!(count > 0, "empty batch");
        let mut x = Tensor::zeros(self.image_shape.with_batch(count));
        let per_image = self.image_shape.numel();
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let idx = (start + i) % self.samples;
            let label = self.label(idx);
            labels.push(label);
            let dst = &mut x.data_mut()[i * per_image..(i + 1) * per_image];
            for (j, v) in dst.iter_mut().enumerate() {
                // Class pattern: a smooth function of (label, j).
                let pattern = (((label + 1) * (j + 3)) % 23) as f32 / 23.0 - 0.5;
                // Deterministic per-sample noise.
                let h =
                    (self.seed ^ ((idx as u64) << 24) ^ j as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let noise = ((h >> 40) % 1000) as f32 / 5000.0 - 0.1;
                *v = pattern + noise;
            }
        }
        (x, labels)
    }
}

/// A deterministic shuffled index sampler: a pseudo-random permutation
/// of `0..len` that is cheap to evaluate at any position (no O(n)
/// state), re-seeded per epoch — the behaviour of MXNet's shuffling
/// `ImageRecordIter`.
#[derive(Debug, Clone)]
pub struct ShuffledSampler {
    len: usize,
    seed: u64,
}

impl ShuffledSampler {
    /// Creates a sampler over `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize, seed: u64) -> Self {
        assert!(len > 0, "cannot sample an empty dataset");
        ShuffledSampler { len, seed }
    }

    /// The dataset index at shuffled position `pos` of `epoch`'s
    /// permutation. Bijective over `0..len` for each epoch (uses a
    /// Feistel-style cycle-walking permutation).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn index(&self, epoch: u64, pos: usize) -> usize {
        assert!(pos < self.len, "position {pos} out of range");
        // Cycle-walk a keyed balanced-Feistel bijection over the
        // smallest even-bit-width power of two covering the dataset.
        let bits = (usize::BITS - (self.len.max(2) - 1).leading_zeros()) as usize;
        let half = bits.div_ceil(2).max(1);
        let half_mask = (1usize << half) - 1;
        let key = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(epoch.wrapping_mul(0xD1B54A32D192ED03));
        let domain = 1usize << (2 * half);
        debug_assert!(domain >= self.len);
        let mut x = pos;
        loop {
            // Balanced Feistel: equal halves, provably a permutation.
            let (mut l, mut r) = (x & half_mask, x >> half);
            for round in 0..4u64 {
                let f = (r as u64)
                    .wrapping_mul(0x2545F4914F6CDD1D)
                    .wrapping_add(key ^ round.wrapping_mul(0x9E3779B97F4A7C15))
                    as usize;
                let (nl, nr) = (r, (l ^ f) & half_mask);
                l = nl;
                r = nr;
            }
            x = (r << half) | l;
            if x < self.len {
                return x;
            }
        }
    }

    /// The shuffled mini-batch of dataset indices at `(epoch, batch)`.
    pub fn batch_indices(&self, epoch: u64, batch: usize, batch_size: usize) -> Vec<usize> {
        (0..batch_size)
            .map(|i| self.index(epoch, (batch * batch_size + i) % self.len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_preset() {
        let d = DatasetSpec::imagenet_256k();
        assert_eq!(d.images, 262_144);
        assert_eq!(d.classes, 1000);
    }

    #[test]
    fn weak_scaling_multiplies_dataset() {
        let d = DatasetSpec::imagenet_256k();
        assert_eq!(d.total_images(ScalingMode::Strong, 8), 262_144);
        assert_eq!(d.total_images(ScalingMode::Weak, 8), 8 * 262_144);
        // Weak scaling: iterations per epoch are constant in GPU count.
        assert_eq!(
            d.iterations(ScalingMode::Weak, 32, 1),
            d.iterations(ScalingMode::Weak, 32, 8)
        );
    }

    #[test]
    fn strong_scaling_divides_iterations() {
        let d = DatasetSpec::imagenet_256k();
        let i1 = d.iterations(ScalingMode::Strong, 16, 1);
        let i4 = d.iterations(ScalingMode::Strong, 16, 4);
        assert_eq!(i1, 16_384);
        assert_eq!(i4, 4_096);
    }

    #[test]
    fn iterations_round_up() {
        let d = DatasetSpec {
            name: "t".into(),
            images: 10,
            classes: 2,
        };
        assert_eq!(d.iterations(ScalingMode::Strong, 3, 1), 4);
    }

    #[test]
    fn synthetic_batches_are_deterministic_and_labelled() {
        let ds = SyntheticDataset::new(Shape::new([1, 1, 4, 4]), 3, 30, 7);
        let (x1, l1) = ds.batch(0, 6);
        let (x2, l2) = ds.batch(0, 6);
        assert_eq!(x1.data(), x2.data());
        assert_eq!(l1, l2);
        assert_eq!(l1, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(x1.shape().dims(), &[6, 1, 4, 4]);
    }

    #[test]
    fn batches_wrap_around() {
        let ds = SyntheticDataset::new(Shape::new([1, 1, 2, 2]), 2, 4, 1);
        let (_, labels) = ds.batch(3, 3);
        assert_eq!(labels, vec![1, 0, 1]);
    }

    #[test]
    fn same_class_samples_share_structure() {
        // Two samples of the same class differ only by small noise.
        let ds = SyntheticDataset::new(Shape::new([1, 1, 3, 3]), 2, 10, 3);
        let (a, _) = ds.batch(0, 1); // label 0
        let (b, _) = ds.batch(2, 1); // label 0 again
        let diff: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        assert!(diff < 0.25, "noise too large: {diff}");
    }

    #[test]
    fn sampler_is_a_permutation_every_epoch() {
        for len in [1usize, 2, 7, 16, 100] {
            let s = ShuffledSampler::new(len, 42);
            for epoch in 0..3u64 {
                let mut seen: Vec<usize> = (0..len).map(|p| s.index(epoch, p)).collect();
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} epoch={epoch}"
                );
            }
        }
    }

    #[test]
    fn different_epochs_shuffle_differently() {
        let s = ShuffledSampler::new(64, 7);
        let e0: Vec<usize> = (0..64).map(|p| s.index(0, p)).collect();
        let e1: Vec<usize> = (0..64).map(|p| s.index(1, p)).collect();
        assert_ne!(e0, e1);
        // And the shuffle is not the identity.
        assert_ne!(e0, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sampler_batches_cover_the_epoch() {
        let s = ShuffledSampler::new(40, 3);
        let mut all = Vec::new();
        for b in 0..5 {
            all.extend(s.batch_indices(2, b, 8));
        }
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn image_bytes_formula() {
        assert_eq!(
            DatasetSpec::image_bytes(&Shape::new([1, 3, 224, 224])),
            3 * 224 * 224 * 4
        );
    }
}
