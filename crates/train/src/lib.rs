//! # voltascope-train — data-parallel DNN training on the simulated DGX-1
//!
//! The MXNet stand-in of the paper reproduction, with two coupled
//! halves:
//!
//! * **Real numerics** — [`DataParallel`] executes synchronous SGD
//!   (paper Fig. 1) with actual tensors: per-replica FP/BP, semantic
//!   ring-AllReduce gradient averaging, identical updates. The key
//!   invariant (N replicas on N shards == 1 replica on the full batch)
//!   is enforced by tests. [`AsyncParameterServer`] implements the ASGD
//!   alternative of §II-B, with its delayed-gradient staleness
//!   measurable.
//! * **Timing** — [`simulate_epoch`] lowers one configuration (model x
//!   batch x GPU count x [`CommMethod`](voltascope_comm::CommMethod))
//!   onto the discrete-event engine: API calls on host threads, kernels
//!   on compute streams, gradient buckets flowing over NVLink/PCIe as
//!   soon as backward produces them (MXNet's BP/WU overlap), with
//!   either the P2P parameter-server schedule or NCCL-style ring
//!   collectives.
//!
//! [`MemoryModel`] reproduces the `nvidia-smi` readings of Table IV,
//! including GPU0's batch-independent parameter-server overhead.
//!
//! # Example
//!
//! ```
//! use voltascope_comm::CommMethod;
//! use voltascope_dnn::zoo;
//! use voltascope_train::{simulate_epoch, SystemModel, TrainConfig};
//!
//! let sys = SystemModel::dgx1();
//! let model = zoo::lenet();
//! let report = simulate_epoch(&sys, &model, &TrainConfig::strong(32, 4, CommMethod::Nccl));
//! assert_eq!(report.iter_time, report.fp_bp_iter + report.wu_iter);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_sgd;
mod dataset;
pub mod dynamic;
mod epoch;
mod memory;
mod optimizer;
mod parallel;
mod pipeline;
mod schedule;

pub use async_sgd::AsyncParameterServer;
pub use dataset::{DatasetSpec, ScalingMode, ShuffledSampler, SyntheticDataset};
pub use dynamic::{
    simulate_epoch_dynamic, simulate_epoch_dynamic_lowered, DynamicEpochReport, MidEpochFault,
};
pub use epoch::{simulate_epoch, simulate_epoch_lowered, EpochReport, SystemModel, TrainConfig};
pub use memory::{GpuRole, MemoryModel, MemoryUsage};
pub use optimizer::{Sgd, SgdState};
pub use parallel::{flatten, unflatten, DataParallel};
pub use pipeline::{simulate_pipeline_epoch, PipelineConfig, PipelineError, PipelineReport};
pub use schedule::LrSchedule;

// Compile-time guarantee for the parallel experiment grid: the platform
// model and epoch reports cross sweep worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemModel>();
    assert_send_sync::<EpochReport>();
    assert_send_sync::<MemoryModel>();
    assert_send_sync::<TrainConfig>();
};
