//! Learning-rate schedules.

use crate::optimizer::Sgd;

/// A learning-rate schedule: maps an epoch index to a learning rate.
/// The paper trains at fixed hyper-parameters (accuracy is out of
/// scope), but any real adoption of this trainer needs the standard
/// schedules, so they ship with the framework.
#[derive(Debug, Clone)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// Multiply by `factor` every `every` epochs (classic ImageNet
    /// step decay, e.g. x0.1 every 30 epochs).
    StepDecay {
        /// Initial learning rate.
        base: f32,
        /// Decay factor applied at each step.
        factor: f32,
        /// Epochs between decays.
        every: u32,
    },
    /// Linear warmup from `base/warmup_epochs`-scaled values up to
    /// `base`, then constant (the large-batch training recipe of Goyal
    /// et al., directly relevant to the paper's batch-size scaling).
    LinearWarmup {
        /// Target learning rate after warmup.
        base: f32,
        /// Number of warmup epochs.
        warmup_epochs: u32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based).
    pub fn at(&self, epoch: u32) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                base,
                factor,
                every,
            } => base * factor.powi((epoch / every.max(1)) as i32),
            LrSchedule::LinearWarmup {
                base,
                warmup_epochs,
            } => {
                if warmup_epochs == 0 || epoch >= warmup_epochs {
                    base
                } else {
                    base * (epoch + 1) as f32 / warmup_epochs as f32
                }
            }
        }
    }

    /// An [`Sgd`] configured for `epoch`, carrying over `momentum` and
    /// `weight_decay`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule produces a non-positive rate.
    pub fn sgd_at(&self, epoch: u32, momentum: f32, weight_decay: f32) -> Sgd {
        Sgd::new(self.at(epoch))
            .momentum(momentum)
            .weight_decay(weight_decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(100), 0.1);
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            base: 0.1,
            factor: 0.1,
            every: 30,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(29), 0.1);
        assert!((s.at(30) - 0.01).abs() < 1e-9);
        assert!((s.at(60) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let s = LrSchedule::LinearWarmup {
            base: 0.4,
            warmup_epochs: 4,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(1) - 0.2).abs() < 1e-6);
        assert!((s.at(3) - 0.4).abs() < 1e-6);
        assert_eq!(s.at(10), 0.4);
    }

    #[test]
    fn sgd_at_carries_hyperparameters() {
        let s = LrSchedule::Constant(0.05);
        let sgd = s.sgd_at(3, 0.9, 1e-4);
        assert_eq!(sgd.learning_rate(), 0.05);
    }

    #[test]
    fn zero_warmup_is_constant() {
        let s = LrSchedule::LinearWarmup {
            base: 0.2,
            warmup_epochs: 0,
        };
        assert_eq!(s.at(0), 0.2);
    }
}
