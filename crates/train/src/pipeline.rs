//! Pipeline-parallel training simulation (GPipe-style schedule).
//!
//! Data parallelism ([`crate::simulate_epoch`]) replicates the whole
//! model per GPU; pipeline parallelism instead places contiguous layer
//! ranges ("stages") on different GPUs and streams micro-batches
//! through them. A `.workload` file opts in by declaring an
//! `axis pipeline <stages>` and tagging each layer with its stage —
//! no Rust module required.
//!
//! The schedule simulated here is the classic synchronous GPipe
//! pipeline: all micro-batch forward passes flow stage to stage over
//! the real interconnect topology, then the backward passes return in
//! reverse, and each stage finally applies its local weight update.
//! Cross-stage activation (and activation-gradient) traffic uses the
//! boundary layer's output bytes at the micro-batch size; there is no
//! gradient all-reduce — parameters are partitioned, not replicated.
//! The pipeline "bubble" (head/tail idleness of `S - 1` stage slots
//! out of `M + S - 1`) emerges from the task graph rather than being
//! assumed.

use voltascope_sim::{Engine, SimSpan, TaskGraph, TaskId};
use voltascope_topo::Device;
use voltascope_workload::{lower, LowerError, WorkloadSpec};

use crate::epoch::SystemModel;

/// One pipeline-parallel training configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Samples per micro-batch.
    pub microbatch: usize,
    /// Micro-batches per iteration (the mini-batch is
    /// `microbatch * microbatches`).
    pub microbatches: usize,
}

/// Why a workload could not be scheduled as a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The workload itself failed to lower (empty, zero-cost, ...).
    Lower(LowerError),
    /// The config asks for zero micro-batches.
    ZeroMicrobatches,
    /// A declared stage has no layers assigned to it.
    EmptyStage(usize),
    /// More stages than the topology has GPUs.
    TooManyStages {
        /// Stages the workload declares.
        stages: usize,
        /// GPUs the topology offers.
        gpus: usize,
    },
    /// Aggregating the stage's per-layer counts (each individually
    /// valid at the micro-batch size) does not fit in `u64`.
    ArithmeticOverflow {
        /// The stage whose aggregate overflows.
        stage: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Lower(e) => write!(f, "{e}"),
            PipelineError::ZeroMicrobatches => write!(f, "micro-batch count must be positive"),
            PipelineError::EmptyStage(s) => write!(f, "pipeline stage {s} has no layers"),
            PipelineError::TooManyStages { stages, gpus } => {
                write!(f, "{stages} pipeline stages out of range for {gpus} GPUs")
            }
            PipelineError::ArithmeticOverflow { stage } => {
                write!(f, "aggregating pipeline stage {stage} overflows u64")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

/// Results of simulating one pipeline-parallel iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Pipeline depth (stages == GPUs used).
    pub stages: usize,
    /// Micro-batches per iteration.
    pub microbatches: usize,
    /// Makespan of one iteration (all FP + BP + per-stage WU).
    pub iter_time: SimSpan,
    /// Per-stage compute busy time within the iteration.
    pub stage_busy: Vec<SimSpan>,
    /// Idle fraction of the stage-time rectangle:
    /// `1 - sum(stage_busy) / (stages * iter_time)`.
    pub bubble_fraction: f64,
}

/// Simulates one iteration of GPipe-style pipeline-parallel training
/// of `spec` on the first `spec.pipeline_stages` GPUs of `sys`.
///
/// # Example
///
/// ```
/// use voltascope_train::{simulate_pipeline_epoch, PipelineConfig, SystemModel};
/// use voltascope_workload::WorkloadSpec;
///
/// let spec = WorkloadSpec::parse(
///     "workload v1\nname PP\ninput 256\naxis pipeline 2\n\
///      layer a fc 0 1000000 2000000 1024 1024 4096 1\n\
///      layer b fc 1 1000000 2000000 1024 1024 4096 1\nend\n",
/// )
/// .unwrap();
/// let sys = SystemModel::dgx1();
/// let two = simulate_pipeline_epoch(&sys, &spec, &PipelineConfig { microbatch: 8, microbatches: 2 }).unwrap();
/// let eight = simulate_pipeline_epoch(&sys, &spec, &PipelineConfig { microbatch: 8, microbatches: 8 }).unwrap();
/// // More micro-batches amortise the fill/drain bubble.
/// assert!(eight.bubble_fraction < two.bubble_fraction);
/// ```
pub fn simulate_pipeline_epoch(
    sys: &SystemModel,
    spec: &WorkloadSpec,
    cfg: &PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    // Shared validation with the data-parallel path (batch 0, empty
    // workload, zero-cost layers, no parameters).
    let _ = lower(spec, cfg.microbatch)?;
    if cfg.microbatches == 0 {
        return Err(PipelineError::ZeroMicrobatches);
    }
    let stages = spec.pipeline_stages;
    if stages > sys.topo.gpu_count() {
        return Err(PipelineError::TooManyStages {
            stages,
            gpus: sys.topo.gpu_count(),
        });
    }

    // ---- Per-stage aggregation at the micro-batch size. ----
    let mb = cfg.microbatch as u64;
    struct StageProfile {
        fp_flops: f64,
        fp_bytes: u64,
        bp_flops: f64,
        bp_bytes: u64,
        param_bytes: u64,
        tensor_cores: bool,
        /// Summed output bytes of the stage's boundary layers — those
        /// with no successor inside the stage: the activation (and
        /// activation-gradient) volume crossing to the next stage.
        /// With explicit v2 `dep` edges a stage can end in parallel
        /// branches, all of which cross; for a linear chain this is
        /// the final layer's output, as before.
        boundary_bytes: u64,
    }
    // Effective layer edges (explicit `dep` or linear default);
    // `intra_succ[i]` marks layers consumed by a later layer of their
    // own stage — everything else is stage boundary.
    let deps = spec
        .resolved_deps()
        .map_err(|e| PipelineError::Lower(e.into()))?;
    let mut intra_succ = vec![false; spec.layers.len()];
    for (i, ps) in deps.iter().enumerate() {
        for &p in ps {
            if spec.layers[p].stage == spec.layers[i].stage {
                intra_succ[p] = true;
            }
        }
    }
    let mut profiles = Vec::with_capacity(stages);
    for s in 0..stages {
        let layers: Vec<(usize, &voltascope_workload::LayerSpec)> = spec
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.stage == s)
            .collect();
        if layers.is_empty() {
            return Err(PipelineError::EmptyStage(s));
        }
        // Each per-layer product is already validated by `lower` above;
        // the stage-level sums are what can still overflow.
        let ovf = || PipelineError::ArithmeticOverflow { stage: s };
        let mut fp_bytes = 0u64;
        let mut bp_bytes = 0u64;
        let mut param_bytes = 0u64;
        let mut boundary = 0u64;
        for &(i, l) in &layers {
            let act = mb * (l.in_bytes + l.out_bytes);
            fp_bytes = fp_bytes.checked_add(act).ok_or_else(ovf)?;
            bp_bytes = bp_bytes.checked_add(2 * act).ok_or_else(ovf)?;
            param_bytes = param_bytes.checked_add(l.param_bytes).ok_or_else(ovf)?;
            if !intra_succ[i] {
                boundary = boundary
                    .checked_add(mb.checked_mul(l.out_bytes).ok_or_else(ovf)?)
                    .ok_or_else(ovf)?;
            }
        }
        profiles.push(StageProfile {
            fp_flops: layers.iter().map(|(_, l)| (mb * l.fp_flops) as f64).sum(),
            fp_bytes,
            bp_flops: layers.iter().map(|(_, l)| (mb * l.bp_flops) as f64).sum(),
            bp_bytes,
            param_bytes,
            tensor_cores: layers.iter().any(|(_, l)| l.tensor_cores),
            boundary_bytes: boundary,
        });
    }

    // ---- Task graph: stage s lives on Device::gpu(s). ----
    let mut graph = TaskGraph::new();
    let net = voltascope_comm::LinkNetwork::register(&mut graph, &sys.topo);
    let gpus: Vec<Device> = (0..stages).map(|s| Device::gpu(s as u8)).collect();
    let compute: Vec<_> = gpus
        .iter()
        .map(|&d| graph.add_resource(format!("{d}.compute"), 1))
        .collect();
    let kmodels: Vec<_> = gpus.iter().map(|&d| sys.kernels_of(d)).collect();
    let fp_dur: Vec<SimSpan> = profiles
        .iter()
        .enumerate()
        .map(|(s, p)| kmodels[s].kernel_time_with_bytes(p.fp_flops, p.fp_bytes, p.tensor_cores))
        .collect();
    let bp_dur: Vec<SimSpan> = profiles
        .iter()
        .enumerate()
        .map(|(s, p)| kmodels[s].kernel_time_with_bytes(p.bp_flops, p.bp_bytes, p.tensor_cores))
        .collect();

    let m = cfg.microbatches;
    // fp[s][k]: forward of micro-batch k on stage s.
    let mut fp: Vec<Vec<Option<TaskId>>> = vec![vec![None; m]; stages];
    for k in 0..m {
        for s in 0..stages {
            // Activations arrive from the previous stage.
            let xfer = (s > 0).then(|| {
                net.transfer(
                    &mut graph,
                    &sys.topo,
                    gpus[s - 1],
                    gpus[s],
                    profiles[s - 1].boundary_bytes,
                    &[fp[s - 1][k].expect("built in order")],
                    "pp.act",
                    &format!("pp.act.mb{k}.s{}>{s}", s - 1),
                )
            });
            let mut builder = graph
                .task(format!("pp.fp.mb{k}@s{s}"))
                .on(compute[s])
                .lasting(fp_dur[s])
                .category("fp");
            // Serial compute stream per stage.
            if k > 0 {
                builder = builder.after(fp[s][k - 1].expect("built in order"));
            }
            if let Some(xfer) = xfer {
                builder = builder.after(xfer);
            }
            fp[s][k] = Some(builder.build());
        }
    }
    // bp[s][k]: backward of micro-batch k on stage s (reverse flow).
    let mut bp: Vec<Vec<Option<TaskId>>> = vec![vec![None; m]; stages];
    for k in 0..m {
        for s in (0..stages).rev() {
            // Activation gradients arrive from the next stage.
            let xfer = (s + 1 < stages).then(|| {
                net.transfer(
                    &mut graph,
                    &sys.topo,
                    gpus[s + 1],
                    gpus[s],
                    profiles[s].boundary_bytes,
                    &[bp[s + 1][k].expect("built in order")],
                    "pp.grad",
                    &format!("pp.grad.mb{k}.s{}>{s}", s + 1),
                )
            });
            let mut builder = graph
                .task(format!("pp.bp.mb{k}@s{s}"))
                .on(compute[s])
                .lasting(bp_dur[s])
                .category("bp")
                .after(fp[s][m - 1].expect("built"));
            if k > 0 {
                builder = builder.after(bp[s][k - 1].expect("built in order"));
            }
            if let Some(xfer) = xfer {
                builder = builder.after(xfer);
            }
            bp[s][k] = Some(builder.build());
        }
    }
    // Per-stage local weight update (parameters are partitioned, so no
    // cross-GPU gradient reduction).
    let upd_dur: Vec<SimSpan> = profiles
        .iter()
        .enumerate()
        .map(|(s, p)| kmodels[s].elementwise_kernel_time(5 * p.param_bytes))
        .collect();
    let mut updates = Vec::with_capacity(stages);
    for s in 0..stages {
        updates.push(
            graph
                .task(format!("pp.update@s{s}"))
                .on(compute[s])
                .lasting(upd_dur[s])
                .category("wu.update")
                .after(bp[s][m - 1].expect("built"))
                .build(),
        );
    }
    let done = graph
        .task("pp.iter.done")
        .category("marker")
        .after_all(updates)
        .build();

    let schedule = Engine::new()
        .run(&graph)
        .expect("pipeline graph is acyclic by construction");
    let iter_time = schedule.finish_time(done) - voltascope_sim::SimTime::ZERO;
    let stage_busy: Vec<SimSpan> = (0..stages)
        .map(|s| (fp_dur[s] + bp_dur[s]) * m as u64 + upd_dur[s])
        .collect();
    let busy_total: SimSpan = stage_busy.iter().copied().sum();
    let bubble_fraction = if iter_time.is_zero() {
        0.0
    } else {
        1.0 - busy_total.ratio(iter_time) / stages as f64
    };
    Ok(PipelineReport {
        stages,
        microbatches: m,
        iter_time,
        stage_busy,
        bubble_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec(stages: usize, layers_per_stage: usize) -> WorkloadSpec {
        let mut text = format!("workload v1\nname Chain\ninput 256\naxis pipeline {stages}\n");
        for s in 0..stages {
            for l in 0..layers_per_stage {
                text.push_str(&format!(
                    "layer s{s}l{l} fc {s} 50000000 100000000 4096 4096 1048576 1\n"
                ));
            }
        }
        text.push_str("end\n");
        WorkloadSpec::parse(&text).unwrap()
    }

    fn cfg(microbatch: usize, microbatches: usize) -> PipelineConfig {
        PipelineConfig {
            microbatch,
            microbatches,
        }
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let sys = SystemModel::dgx1();
        let spec = chain_spec(4, 2);
        let few = simulate_pipeline_epoch(&sys, &spec, &cfg(8, 2)).unwrap();
        let many = simulate_pipeline_epoch(&sys, &spec, &cfg(8, 16)).unwrap();
        assert!(few.bubble_fraction > many.bubble_fraction);
        assert!(many.bubble_fraction > 0.0);
        // The canonical GPipe bubble is (S-1)/(M+S-1); with balanced
        // stages the simulated value lands near it (transfers add a
        // little extra idleness).
        let ideal = 3.0 / (16.0 + 3.0);
        assert!(
            (many.bubble_fraction - ideal).abs() < 0.15,
            "bubble {} vs ideal {}",
            many.bubble_fraction,
            ideal
        );
    }

    #[test]
    fn deeper_pipelines_cut_per_stage_work() {
        let sys = SystemModel::dgx1();
        let one = simulate_pipeline_epoch(&sys, &chain_spec(1, 8), &cfg(8, 8)).unwrap();
        let four = simulate_pipeline_epoch(&sys, &chain_spec(4, 2), &cfg(8, 8)).unwrap();
        // Same total work split over four GPUs: the iteration finishes
        // faster despite the bubble.
        assert!(four.iter_time < one.iter_time);
        assert_eq!(one.bubble_fraction, 0.0);
        assert_eq!(four.stages, 4);
        assert_eq!(four.stage_busy.len(), 4);
    }

    #[test]
    fn report_is_deterministic() {
        let sys = SystemModel::dgx1();
        let spec = chain_spec(4, 2);
        let a = simulate_pipeline_epoch(&sys, &spec, &cfg(8, 8)).unwrap();
        let b = simulate_pipeline_epoch(&sys, &spec, &cfg(8, 8)).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
        assert_eq!(a.stage_busy, b.stage_busy);
    }

    #[test]
    fn typed_errors_for_degenerate_pipelines() {
        let sys = SystemModel::dgx1();
        let spec = chain_spec(2, 1);
        assert_eq!(
            simulate_pipeline_epoch(&sys, &spec, &cfg(8, 0)),
            Err(PipelineError::ZeroMicrobatches)
        );
        assert!(matches!(
            simulate_pipeline_epoch(&sys, &spec, &cfg(0, 4)),
            Err(PipelineError::Lower(LowerError::ZeroBatch))
        ));
        // A declared stage with no layers.
        let holey = WorkloadSpec::parse(
            "workload v1\nname Holey\ninput 4\naxis pipeline 2\n\
             layer a fc 1 100 200 16 16 64 0\nend\n",
        )
        .unwrap();
        assert_eq!(
            simulate_pipeline_epoch(&sys, &holey, &cfg(8, 4)),
            Err(PipelineError::EmptyStage(0))
        );
        // More stages than the DGX-1 has GPUs.
        let deep = chain_spec(9, 1);
        assert_eq!(
            simulate_pipeline_epoch(&sys, &deep, &cfg(8, 4)),
            Err(PipelineError::TooManyStages { stages: 9, gpus: 8 })
        );
    }

    #[test]
    fn stage_aggregation_overflow_is_typed() {
        // Each layer individually survives lowering at micro-batch 1
        // (its BP volume is 2^64 - 4), but summing the stage's BP
        // bytes overflows. Pre-fix this panicked in debug and wrapped
        // silently in release.
        let q = u64::MAX / 4;
        let spec = WorkloadSpec::parse(&format!(
            "workload v1\nname Huge\ninput 4\naxis pipeline 1\n\
             layer a fc 0 100 200 {q} {q} 4096 0\n\
             layer b fc 0 100 200 {q} {q} 0 0\nend\n"
        ))
        .unwrap();
        assert!(voltascope_workload::lower(&spec, 1).is_ok());
        assert_eq!(
            simulate_pipeline_epoch(&SystemModel::dgx1(), &spec, &cfg(1, 2)),
            Err(PipelineError::ArithmeticOverflow { stage: 0 })
        );
    }

    fn branchy_spec(branch_order: [&str; 2]) -> WorkloadSpec {
        // Stage 0 ends in two parallel branches (both cross to the
        // join on stage 1); only their file order varies.
        let [x, y] = branch_order;
        let mut text = String::from(
            "workload v2\nname Branches\ninput 256\naxis pipeline 2\n\
             layer stem fc 0 50000000 100000000 4096 1048576 1048576 1\n",
        );
        for name in [x, y] {
            let out = if name == "wide" { 8 << 20 } else { 1 << 20 };
            text.push_str(&format!(
                "layer {name} fc 0 50000000 100000000 1048576 {out} 1048576 1\ndep {name} stem\n"
            ));
        }
        text.push_str(
            "layer join fc 1 50000000 100000000 9437184 4096 1048576 1\ndep join wide narrow\nend\n",
        );
        WorkloadSpec::parse(&text).unwrap()
    }

    #[test]
    fn boundary_volume_covers_all_parallel_branches() {
        // Both branches' activations cross the stage boundary, so the
        // file order of the branch layers must not change the iteration
        // time. Pre-fix, `boundary_bytes` took the file-order-last
        // layer's out_bytes: swapping `wide` and `narrow` changed the
        // stage-crossing volume 8x and the report with it.
        let sys = SystemModel::dgx1();
        let a =
            simulate_pipeline_epoch(&sys, &branchy_spec(["wide", "narrow"]), &cfg(8, 4)).unwrap();
        let b =
            simulate_pipeline_epoch(&sys, &branchy_spec(["narrow", "wide"]), &cfg(8, 4)).unwrap();
        assert_eq!(a.iter_time, b.iter_time);
        assert_eq!(a.stage_busy, b.stage_busy);
    }
}
