//! Mid-epoch dynamic topology faults.
//!
//! [`crate::SystemModel::with_faults`] models a fault that exists for
//! the *whole* epoch: the topology is rewired before lowering, NCCL
//! rings renegotiate around the damage, and every iteration pays the
//! degraded price. Real failures strike *during* training — an NVLink
//! brick drops mid-epoch, a GPU starts throttling — and the iterations
//! already in flight cannot renegotiate: queued transfers on the dead
//! link fall back to host-bounced PCIe routes, in-flight kernels on a
//! throttled GPU finish at the reduced clock.
//!
//! This module prices that transition. A [`MidEpochFault`] names a
//! [`FaultSpec`] and the epoch fraction at which it strikes;
//! [`simulate_epoch_dynamic`] composes three engine runs into a
//! piecewise epoch:
//!
//! 1. the healthy lowering (iterations before the fault),
//! 2. a *transition* run of the healthy graph with the fault lowered
//!    to engine [`DynamicEvent`]s firing mid-iteration — dead links
//!    preempt and re-route their traffic, stragglers rescale their
//!    remaining kernels ([`lower_fault_events`]),
//! 3. the statically degraded lowering (iterations after the fault,
//!    once NCCL has rebuilt its communicator against the damaged
//!    topology the way [`Topology::apply`] models).
//!
//! The transition run re-routes dead-link traffic onto the first
//! PCIe leg of the host-bounced route and stretches the remaining
//! duration by the route's store-and-forward serialisation ratio
//! (`bw_direct x sum(1/bw_hop)`). That single-resource approximation
//! prices the route's full serialisation cost while contending only on
//! the source GPU's PCIe uplink — a deliberate simplification of the
//! multi-leg occupancy the static lowering models, acceptable for the
//! one transition iteration it is applied to.

use voltascope_dnn::Model;
use voltascope_sim::{DynamicEvent, DynamicEventKind, ResourceId, SimSpan, SimTime, TaskGraph};
use voltascope_topo::{FaultSpec, Link, Topology};
use voltascope_workload::{lower_model, LoweredWorkload};

use crate::epoch::{
    simulate_epoch_lowered, simulate_epoch_lowered_with_events, EpochReport, SystemModel,
    TrainConfig,
};

/// A fault that strikes partway through an epoch.
#[derive(Debug, Clone)]
pub struct MidEpochFault {
    /// What breaks.
    pub spec: FaultSpec,
    /// When it breaks, as a fraction of the epoch's iterations in
    /// `[0, 1]`: `0.0` degrades the whole epoch (equivalent to a
    /// construction-time fault), `>= 1.0` leaves it healthy.
    pub at_fraction: f64,
}

impl MidEpochFault {
    /// A fault striking at `at_fraction` of the epoch.
    ///
    /// # Panics
    ///
    /// Panics unless `at_fraction` is finite and non-negative.
    pub fn new(spec: FaultSpec, at_fraction: f64) -> Self {
        assert!(
            at_fraction.is_finite() && at_fraction >= 0.0,
            "fault fraction {at_fraction} must be finite and non-negative"
        );
        MidEpochFault { spec, at_fraction }
    }
}

/// The piecewise epoch of a [`MidEpochFault`].
#[derive(Debug, Clone)]
pub struct DynamicEpochReport {
    /// The healthy lowering (pre-fault iterations).
    pub healthy: EpochReport,
    /// The statically degraded lowering (post-fault iterations).
    pub degraded: EpochReport,
    /// Duration of the iteration the fault strikes in: the healthy
    /// schedule preempted mid-flight, traffic re-routed by the engine's
    /// dynamic-event machinery.
    pub transition_iter: SimSpan,
    /// The (0-based) iteration the fault strikes in; `iterations` or
    /// more means it never fires.
    pub fault_iteration: u64,
    /// The composed epoch duration.
    pub epoch_time: SimSpan,
}

/// Lowers `spec` to engine [`DynamicEvent`]s firing at `at` against a
/// task graph whose resources follow the epoch lowering's naming
/// (`link.{a}>{b}` per direction, `{gpu}.compute` per device):
///
/// * each killed direct link becomes two per-direction
///   [`DynamicEventKind::Fail`] events whose fallback is the first leg
///   of the degraded topology's route and whose `duration_factor` is
///   the store-and-forward serialisation ratio of that route;
/// * each degraded link becomes two per-direction
///   [`DynamicEventKind::Scale`] events stretching remaining transfers
///   by the inverse bandwidth factor;
/// * each straggler GPU becomes a [`DynamicEventKind::Scale`] on its
///   compute resource.
///
/// Resources the graph does not define (links outside the simulated
/// GPU set) are skipped — their traffic does not exist. Link jitter
/// has no mid-epoch lowering (it is a per-link latency constant, not a
/// resource mutation) and is ignored here.
///
/// # Panics
///
/// Panics if `spec` is invalid for `topo` (same validation as
/// [`Topology::apply`]).
pub fn lower_fault_events(
    graph: &TaskGraph,
    topo: &Topology,
    spec: &FaultSpec,
    at: SimTime,
) -> Vec<DynamicEvent> {
    let resource_of = |name: &str| -> Option<ResourceId> {
        graph
            .resources()
            .find(|(_, r)| r.name == name)
            .map(|(id, _)| id)
    };
    // Validates the spec and yields the renegotiated routes the
    // fallback traffic follows.
    let degraded = topo.apply(spec);
    let pair_eq = |l: &Link, a, b| (l.a == a && l.b == b) || (l.a == b && l.b == a);
    let mut events = Vec::new();
    for link in topo.links() {
        let killed = spec
            .dead_link_pairs()
            .iter()
            .any(|&(a, b)| pair_eq(link, a, b))
            || (link.kind.is_nvlink()
                && spec
                    .dead_nvlink_devices()
                    .iter()
                    .any(|&g| link.a == g || link.b == g));
        if killed {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let Some(res) = resource_of(&format!("link.{from}>{to}")) else {
                    continue;
                };
                let route = degraded.route(from, to);
                let fallback = route.hops().first().and_then(|h| {
                    let l = degraded.link(h.link);
                    let other = if l.a == h.from { l.b } else { l.a };
                    resource_of(&format!("link.{}>{other}", h.from))
                });
                let inv_bw: f64 = route
                    .hops()
                    .iter()
                    .map(|h| 1.0 / h.bandwidth.as_bytes_per_sec())
                    .sum();
                let duration_factor = link.bandwidth.as_bytes_per_sec() * inv_bw;
                events.push(DynamicEvent {
                    at,
                    kind: DynamicEventKind::Fail {
                        resource: res,
                        fallback,
                        duration_factor,
                    },
                });
            }
            continue;
        }
        let slow: f64 = spec
            .degraded_link_factors()
            .iter()
            .filter(|&&(a, b, _)| pair_eq(link, a, b))
            .map(|&(_, _, f)| f)
            .product();
        if slow < 1.0 {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                if let Some(res) = resource_of(&format!("link.{from}>{to}")) {
                    events.push(DynamicEvent {
                        at,
                        kind: DynamicEventKind::Scale {
                            resource: res,
                            factor: 1.0 / slow,
                        },
                    });
                }
            }
        }
    }
    for (&gpu, &factor) in spec.gpu_slowdowns() {
        if let Some(res) = resource_of(&format!("{gpu}.compute")) {
            events.push(DynamicEvent {
                at,
                kind: DynamicEventKind::Scale {
                    resource: res,
                    factor,
                },
            });
        }
    }
    events
}

/// Simulates an epoch through which `fault` strikes mid-way. See the
/// module docs for the three-piece composition.
///
/// # Panics
///
/// As [`crate::simulate_epoch`], plus the fault-spec validation of
/// [`Topology::apply`].
pub fn simulate_epoch_dynamic(
    sys: &SystemModel,
    model: &Model,
    cfg: &TrainConfig,
    fault: &MidEpochFault,
) -> DynamicEpochReport {
    let lowered = lower_model(model, cfg.batch_per_gpu).unwrap_or_else(|e| panic!("{e}"));
    simulate_epoch_dynamic_lowered(sys, &lowered, cfg, fault)
}

/// [`simulate_epoch_dynamic`] from an already-lowered workload.
///
/// # Panics
///
/// As [`simulate_epoch_dynamic`].
pub fn simulate_epoch_dynamic_lowered(
    sys: &SystemModel,
    workload: &LoweredWorkload,
    cfg: &TrainConfig,
    fault: &MidEpochFault,
) -> DynamicEpochReport {
    let healthy = simulate_epoch_lowered(sys, workload, cfg);
    let degraded_sys = sys.with_faults(&fault.spec);
    let degraded = simulate_epoch_lowered(&degraded_sys, workload, cfg);
    let n = healthy.iterations;
    // The iteration the fault strikes in; saturates at `n` (never
    // fires). f64->u64 is exact here: `at_fraction` is validated
    // non-negative and `n` is far below 2^53.
    let fault_iteration = ((fault.at_fraction * n as f64).floor() as u64).min(n);

    if fault_iteration >= n || fault.spec.is_healthy() {
        // Strikes at or after the last iteration completes: healthy
        // epoch, and the "transition" iteration is an ordinary one.
        return DynamicEpochReport {
            transition_iter: healthy.iter_time,
            fault_iteration,
            epoch_time: healthy.epoch_time,
            healthy,
            degraded,
        };
    }
    if fault_iteration == 0 {
        // Broken from the start: identical to a construction-time
        // fault, where the communicator is built against the damaged
        // topology and no transition is ever paid.
        return DynamicEpochReport {
            transition_iter: degraded.iter_time,
            fault_iteration,
            epoch_time: degraded.epoch_time,
            healthy,
            degraded,
        };
    }

    // Transition run: the *healthy* lowering, with the fault's dynamic
    // events firing halfway through the middle (steady-state)
    // iteration of the three-iteration pipeline. The fill `t0` and the
    // pre-fault half of iteration 1 replay the healthy schedule
    // exactly (the engine's event machinery is inert until `at`), so
    // `t1' - t0` prices one iteration that starts healthy and ends
    // re-routed.
    let fill = healthy
        .epoch_time
        .saturating_sub(healthy.iter_time * n.saturating_sub(1));
    let at = SimTime::ZERO + fill + healthy.iter_time / 2;
    let (_, [t0, t1, _]) = simulate_epoch_lowered_with_events(sys, workload, cfg, |graph| {
        lower_fault_events(graph, &sys.topo, &fault.spec, at)
    });
    let transition_iter = t1 - t0;
    debug_assert_eq!(t0 - SimTime::ZERO, fill, "pre-fault fill must replay");

    // Piecewise epoch: healthy fill + (k-1) healthy steady iterations
    // + the transition iteration + the remaining iterations at the
    // renegotiated (statically degraded) pace.
    let epoch_time = fill
        + healthy.iter_time * (fault_iteration - 1)
        + transition_iter
        + degraded.iter_time * (n - fault_iteration - 1);
    DynamicEpochReport {
        transition_iter,
        fault_iteration,
        epoch_time,
        healthy,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_comm::CommMethod;
    use voltascope_dnn::zoo;
    use voltascope_topo::Device;

    use crate::dataset::{DatasetSpec, ScalingMode};

    fn cfg(gpus: usize) -> TrainConfig {
        TrainConfig {
            batch_per_gpu: 16,
            gpu_count: gpus,
            comm: CommMethod::Nccl,
            scaling: ScalingMode::Strong,
            dataset: DatasetSpec {
                name: "small".into(),
                images: 4096,
                classes: 10,
            },
            bucket_fusion_bytes: 0,
        }
    }

    fn dead_link() -> FaultSpec {
        FaultSpec::new().kill_link(Device::gpu(0), Device::gpu(1))
    }

    #[test]
    fn mid_epoch_dead_interface_lands_between_healthy_and_always_dead() {
        // All of GPU3's NVLink bricks die at 50%: the 8-GPU ring cannot
        // renegotiate around a whole dead interface, so the post-fault
        // iterations run at the host-bounced pace — but the pre-fault
        // half of the epoch ran healthy, so the total sits strictly
        // between the healthy and always-dead epochs.
        let sys = SystemModel::dgx1();
        let model = zoo::alexnet();
        let spec = FaultSpec::new().kill_nvlinks_of(Device::gpu(3));
        let r = simulate_epoch_dynamic(&sys, &model, &cfg(8), &MidEpochFault::new(spec, 0.5));
        assert!(
            r.degraded.epoch_time > r.healthy.epoch_time,
            "static fault was free"
        );
        assert!(
            r.epoch_time > r.healthy.epoch_time,
            "fault was free: {} vs healthy {}",
            r.epoch_time,
            r.healthy.epoch_time
        );
        assert!(
            r.epoch_time < r.degraded.epoch_time,
            "mid-epoch fault not cheaper than always-dead: {} vs {}",
            r.epoch_time,
            r.degraded.epoch_time
        );
        assert!(r.fault_iteration > 0 && r.fault_iteration < r.healthy.iterations);
    }

    #[test]
    fn tolerated_single_link_failure_costs_only_the_transition() {
        // The hybrid cube-mesh tolerates any single dead link: the
        // renegotiated 4-GPU ring is all-NVLink again and the static
        // degraded epoch matches the healthy one. The *transition*
        // iteration still pays — its in-flight ring was built over the
        // link that died, and the displaced transfers host-bounce.
        let sys = SystemModel::dgx1();
        let model = zoo::alexnet();
        let r =
            simulate_epoch_dynamic(&sys, &model, &cfg(4), &MidEpochFault::new(dead_link(), 0.5));
        assert_eq!(r.degraded.epoch_time, r.healthy.epoch_time);
        assert!(
            r.transition_iter > r.healthy.iter_time,
            "transition was free: {} vs {}",
            r.transition_iter,
            r.healthy.iter_time
        );
        let excess = r.transition_iter - r.healthy.iter_time;
        assert_eq!(r.epoch_time, r.healthy.epoch_time + excess);
    }

    #[test]
    fn fault_at_zero_equals_the_construction_time_fault() {
        let sys = SystemModel::dgx1();
        let model = zoo::alexnet();
        let r =
            simulate_epoch_dynamic(&sys, &model, &cfg(4), &MidEpochFault::new(dead_link(), 0.0));
        assert_eq!(r.fault_iteration, 0);
        assert_eq!(r.epoch_time, r.degraded.epoch_time);
    }

    #[test]
    fn fault_past_the_epoch_equals_healthy() {
        let sys = SystemModel::dgx1();
        let model = zoo::alexnet();
        let r =
            simulate_epoch_dynamic(&sys, &model, &cfg(4), &MidEpochFault::new(dead_link(), 1.0));
        assert_eq!(r.epoch_time, r.healthy.epoch_time);
    }

    #[test]
    fn healthy_spec_is_a_no_op_at_any_fraction() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let r = simulate_epoch_dynamic(
            &sys,
            &model,
            &cfg(2),
            &MidEpochFault::new(FaultSpec::new(), 0.5),
        );
        assert_eq!(r.epoch_time, r.healthy.epoch_time);
        assert_eq!(r.degraded.epoch_time, r.healthy.epoch_time);
    }

    #[test]
    fn mid_epoch_straggler_charges_the_transition_and_the_tail() {
        let sys = SystemModel::dgx1();
        let model = zoo::alexnet();
        let spec = FaultSpec::new().slow_gpu(Device::gpu(1), 1.5);
        let r = simulate_epoch_dynamic(&sys, &model, &cfg(2), &MidEpochFault::new(spec, 0.5));
        assert!(r.degraded.iter_time > r.healthy.iter_time);
        assert!(r.epoch_time > r.healthy.epoch_time);
        assert!(r.epoch_time < r.degraded.epoch_time);
        // The transition iteration starts healthy, so it costs no more
        // than a fully degraded one (and at least a healthy one).
        assert!(r.transition_iter >= r.healthy.iter_time);
        assert!(r.transition_iter <= r.degraded.iter_time + r.healthy.iter_time);
    }

    #[test]
    fn lowered_events_name_real_resources_and_directions() {
        use voltascope_comm::LinkNetwork;
        use voltascope_sim::TaskGraph;

        let sys = SystemModel::dgx1();
        let mut graph = TaskGraph::new();
        let _net = LinkNetwork::register(&mut graph, &sys.topo);
        let compute = graph.add_resource("GPU1.compute", 1);
        let spec = FaultSpec::new()
            .kill_link(Device::gpu(0), Device::gpu(1))
            .slow_gpu(Device::gpu(1), 2.0);
        let at = SimTime::from_nanos(100);
        let events = lower_fault_events(&graph, &sys.topo, &spec, at);
        // Two per-direction Fail events plus one compute Scale.
        let fails: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, DynamicEventKind::Fail { .. }))
            .collect();
        assert_eq!(fails.len(), 2);
        for e in &fails {
            assert_eq!(e.at, at);
            if let DynamicEventKind::Fail {
                fallback,
                duration_factor,
                ..
            } = e.kind
            {
                // GPU0-GPU1 is a 50 GB/s double NVLink; the host bounce
                // runs at PCIe pace, so re-routed remainders stretch.
                assert!(fallback.is_some());
                assert!(duration_factor > 1.0, "factor {duration_factor}");
            }
        }
        assert!(events.iter().any(|e| matches!(
            e.kind,
            DynamicEventKind::Scale { resource, factor } if resource == compute && factor == 2.0
        )));
    }

    #[test]
    fn degraded_link_lowers_to_inverse_bandwidth_scales() {
        use voltascope_comm::LinkNetwork;
        use voltascope_sim::TaskGraph;

        let sys = SystemModel::dgx1();
        let mut graph = TaskGraph::new();
        let _net = LinkNetwork::register(&mut graph, &sys.topo);
        let spec = FaultSpec::new().degrade_link(Device::gpu(0), Device::gpu(1), 0.5);
        let events = lower_fault_events(&graph, &sys.topo, &spec, SimTime::ZERO);
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(matches!(
                e.kind,
                DynamicEventKind::Scale { factor, .. } if (factor - 2.0).abs() < 1e-12
            ));
        }
    }
}
