//! Stochastic gradient descent with momentum.

use voltascope_dnn::{Gradients, Params, Tensor};

/// SGD with classical momentum and weight decay — MXNet's default
/// optimiser for the paper's image-classification workloads.
///
/// Update rule per parameter: `v = m*v + g + wd*w ; w -= lr*v`.
///
/// # Example
///
/// ```
/// use voltascope_train::Sgd;
///
/// let sgd = Sgd::new(0.01).momentum(0.9).weight_decay(1e-4);
/// assert_eq!(sgd.learning_rate(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

/// Momentum buffers, one per parameter tensor (lazily shaped on first
/// step).
#[derive(Debug, Clone, Default)]
pub struct SgdState {
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "bad learning rate {lr}");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= m < 1`.
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "bad momentum {m}");
        self.momentum = m;
        self
    }

    /// Sets the L2 weight decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative or non-finite.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd.is_finite() && wd >= 0.0, "bad weight decay {wd}");
        self.weight_decay = wd;
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not structurally match `params`, or
    /// `state` was used with a different model.
    pub fn step(&self, params: &mut Params, grads: &Gradients, state: &mut SgdState) {
        if state.velocity.is_empty() {
            state.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.shape().clone()))
                .collect();
        }
        let mut slot = 0;
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            assert_eq!(p.shape(), g.shape(), "gradient/parameter shape mismatch");
            let v = &mut state.velocity[slot];
            assert_eq!(v.shape(), p.shape(), "stale optimiser state");
            for i in 0..p.numel() {
                let grad = g[i] + self.weight_decay * p[i];
                v[i] = self.momentum * v[i] + grad;
                p[i] -= self.lr * v[i];
            }
            slot += 1;
        }
        assert_eq!(slot, state.velocity.len(), "gradient structure mismatch");
    }

    /// FLOPs of one update step over `param_count` scalars (used by the
    /// timing model; the paper notes the WU arithmetic is a trivial
    /// `Y = aX + B`, §V-C).
    pub fn step_flops(&self, param_count: u64) -> u64 {
        // grad + wd*w (2), v = m*v + grad (2), w -= lr*v (2).
        6 * param_count
    }

    /// Bytes of optimiser state per parameter byte (momentum buffer).
    pub fn state_bytes(&self, param_bytes: u64) -> u64 {
        if self.momentum > 0.0 {
            param_bytes
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::{zoo, Shape, Tensor};

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let model = zoo::lenet();
        let mut params = model.init_params(3);
        let x = Tensor::full(Shape::new([1, 1, 28, 28]), 0.2);
        let acts = model.forward(&params, &x);
        let before = model.output(&acts).clone();
        let (_, grad) = voltascope_dnn::softmax_cross_entropy(&before, &[3]);
        let grads = model.backward(&params, &x, &acts, &grad);
        let sgd = Sgd::new(0.5);
        let mut state = SgdState::default();
        sgd.step(&mut params, &grads, &mut state);
        let after_acts = model.forward(&params, &x);
        let (loss_after, _) =
            voltascope_dnn::softmax_cross_entropy(model.output(&after_acts), &[3]);
        let (loss_before, _) = voltascope_dnn::softmax_cross_entropy(&before, &[3]);
        assert!(
            loss_after < loss_before,
            "loss went {loss_before} -> {loss_after}"
        );
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Two identical steps with momentum move further the second time.
        let model = zoo::lenet();
        let mut p1 = model.init_params(1);
        let x = Tensor::full(Shape::new([1, 1, 28, 28]), 0.1);
        let acts = model.forward(&p1, &x);
        let (_, grad) = voltascope_dnn::softmax_cross_entropy(model.output(&acts), &[0]);
        let grads = model.backward(&p1, &x, &acts, &grad);

        let sgd = Sgd::new(0.1).momentum(0.9);
        let mut state = SgdState::default();
        let snapshot = |p: &voltascope_dnn::Params| -> Vec<f32> {
            p.iter().flat_map(|t| t.data().to_vec()).collect()
        };
        let w0 = snapshot(&p1);
        sgd.step(&mut p1, &grads, &mut state);
        let w1 = snapshot(&p1);
        sgd.step(&mut p1, &grads, &mut state);
        let w2 = snapshot(&p1);
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let d1 = dist(&w0, &w1);
        let d2 = dist(&w1, &w2);
        assert!(d2 > d1 * 1.5, "momentum not accumulating: {d1} then {d2}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let model = zoo::lenet();
        let mut params = model.init_params(2);
        let zero_grads = {
            let x = Tensor::zeros(Shape::new([1, 1, 28, 28]));
            let acts = model.forward(&params, &x);
            let mut g = model.backward(&params, &x, &acts, &Tensor::zeros(Shape::new([1, 10])));
            g.scale(0.0);
            g
        };
        let norm_before: f32 = params.iter().map(|t| t.max_abs()).sum();
        let sgd = Sgd::new(0.1).weight_decay(0.5);
        let mut state = SgdState::default();
        sgd.step(&mut params, &zero_grads, &mut state);
        let norm_after: f32 = params.iter().map(|t| t.max_abs()).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    fn flop_and_state_accounting() {
        let sgd = Sgd::new(0.1).momentum(0.9);
        assert_eq!(sgd.step_flops(1000), 6000);
        assert_eq!(sgd.state_bytes(4000), 4000);
        assert_eq!(Sgd::new(0.1).state_bytes(4000), 0);
    }

    #[test]
    #[should_panic(expected = "bad learning rate")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }
}
