//! Asynchronous SGD — the alternative scheme the paper discusses in
//! §II-B, implemented as an extension so the delayed-gradient effect it
//! warns about is demonstrable.

use voltascope_dnn::{softmax_cross_entropy, Model, Params, Tensor};

use crate::optimizer::{Sgd, SgdState};
use crate::parallel::{flatten, unflatten};

/// An asynchronous parameter-server trainer: workers compute gradients
/// against whatever weights they last pulled, and the server applies
/// each gradient as it arrives. Faster per step (no synchronisation
/// barrier) but suffers the *delayed gradient problem*: a gradient may
/// be applied `staleness` updates after the weights it was computed on.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{zoo, Shape, Tensor};
/// use voltascope_train::{AsyncParameterServer, Sgd};
///
/// let model = zoo::lenet();
/// let mut ps = AsyncParameterServer::new(&model, 2, Sgd::new(0.01), 7);
/// let x = Tensor::full(Shape::new([2, 1, 28, 28]), 0.1);
/// ps.worker_step(0, &x, &[1, 2]);
/// assert_eq!(ps.max_staleness(), 0); // first update is never stale
/// ```
#[derive(Debug)]
pub struct AsyncParameterServer<'m> {
    model: &'m Model,
    server: Params,
    state: SgdState,
    sgd: Sgd,
    /// Server update counter.
    version: u64,
    /// Per-worker: version of the weights it last pulled.
    worker_versions: Vec<u64>,
    max_staleness: u64,
    total_staleness: u64,
    updates: u64,
}

impl<'m> AsyncParameterServer<'m> {
    /// Creates a server with `workers` asynchronous workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(model: &'m Model, workers: usize, sgd: Sgd, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        AsyncParameterServer {
            model,
            server: model.init_params(seed),
            state: SgdState::default(),
            sgd,
            version: 0,
            worker_versions: vec![0; workers],
            max_staleness: 0,
            total_staleness: 0,
            updates: 0,
        }
    }

    /// Worker `w` pulls the current weights, computes a gradient on its
    /// batch, and pushes it; the server applies it immediately. Returns
    /// the worker's loss.
    ///
    /// In a real deployment the pull and push are separated in time —
    /// call [`AsyncParameterServer::worker_pull`] and
    /// [`AsyncParameterServer::worker_push`] directly to model that gap
    /// (and grow staleness).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or labels mismatch the batch.
    pub fn worker_step(&mut self, w: usize, batch: &Tensor, labels: &[usize]) -> f32 {
        let params = self.worker_pull(w);
        self.worker_push(w, &params, batch, labels)
    }

    /// Worker `w` snapshots the current server weights.
    pub fn worker_pull(&mut self, w: usize) -> Params {
        self.worker_versions[w] = self.version;
        self.server.clone()
    }

    /// Worker `w` computes a gradient on `pulled` weights and pushes it
    /// to the server, which applies it to (possibly newer) weights —
    /// the delayed-gradient mechanic.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or labels mismatch the batch.
    pub fn worker_push(
        &mut self,
        w: usize,
        pulled: &Params,
        batch: &Tensor,
        labels: &[usize],
    ) -> f32 {
        let acts = self.model.forward(pulled, batch);
        let (loss, grad_out) = softmax_cross_entropy(self.model.output(&acts), labels);
        let grads = self.model.backward(pulled, batch, &acts, &grad_out);

        let staleness = self.version - self.worker_versions[w];
        self.max_staleness = self.max_staleness.max(staleness);
        self.total_staleness += staleness;
        self.updates += 1;

        // Apply to the *current* server weights (not the pulled ones).
        let flat = flatten(&grads);
        let mut server_grads = grads;
        unflatten(&mut server_grads, &flat);
        self.sgd
            .step(&mut self.server, &server_grads, &mut self.state);
        self.version += 1;
        loss
    }

    /// Largest staleness (in server updates) any applied gradient had.
    pub fn max_staleness(&self) -> u64 {
        self.max_staleness
    }

    /// Mean staleness over all applied gradients.
    pub fn mean_staleness(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_staleness as f64 / self.updates as f64
        }
    }

    /// The current server weights.
    pub fn server_params(&self) -> &Params {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use voltascope_dnn::Shape;

    fn tiny_model() -> Model {
        use voltascope_dnn::{Dense, ModelBuilder, Relu, Source};
        let mut b = ModelBuilder::new("t", Shape::new([1, 1, 4, 4]));
        let f1 = b.add("f1", Dense::new(16, 8), &[Source::Input]);
        let r = b.add("r", Relu, &[Source::Node(f1)]);
        let f2 = b.add("f2", Dense::new(8, 3), &[Source::Node(r)]);
        b.finish(f2)
    }

    #[test]
    fn immediate_push_has_zero_staleness() {
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 4, 4]), 3, 12, 1);
        let mut ps = AsyncParameterServer::new(&model, 2, Sgd::new(0.05), 1);
        for step in 0..4 {
            let (x, l) = data.batch(step * 3, 3);
            ps.worker_step(step % 2, &x, &l);
        }
        assert_eq!(ps.max_staleness(), 0);
        assert_eq!(ps.mean_staleness(), 0.0);
    }

    #[test]
    fn overlapping_workers_accumulate_staleness() {
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 4, 4]), 3, 12, 2);
        let mut ps = AsyncParameterServer::new(&model, 2, Sgd::new(0.05), 2);
        // Both workers pull the same version, then push sequentially:
        // the second push lands on weights one update newer.
        let p0 = ps.worker_pull(0);
        let p1 = ps.worker_pull(1);
        let (x, l) = data.batch(0, 3);
        ps.worker_push(0, &p0, &x, &l);
        ps.worker_push(1, &p1, &x, &l);
        assert_eq!(ps.max_staleness(), 1);
        assert_eq!(ps.mean_staleness(), 0.5);
    }

    #[test]
    fn async_training_still_learns() {
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 4, 4]), 3, 60, 3);
        let mut ps = AsyncParameterServer::new(&model, 3, Sgd::new(0.1), 3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            let (x, l) = data.batch(step * 6, 6);
            let loss = ps.worker_step(step % 3, &x, &l);
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first, "loss did not fall: {first} -> {last}");
    }
}
