//! Numerically-real data-parallel training over simulated GPU replicas.
//!
//! This module executes the *mathematics* of the paper's training
//! pipeline (Fig. 1): every replica runs FP and BP on its own
//! mini-batch shard, gradients are averaged with a real collective
//! (`voltascope-comm`'s semantic layer), and the synchronised update is
//! applied everywhere. The key testable property: an N-replica step on
//! N shards produces the same weights as a 1-replica step on the
//! concatenated batch.

use voltascope_comm::semantic;
use voltascope_dnn::{softmax_cross_entropy, Gradients, Model, Params, Tensor};

use crate::optimizer::{Sgd, SgdState};

/// A synchronous data-parallel trainer: one model definition, `n`
/// parameter replicas (one per simulated GPU), real gradient averaging.
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo;
/// use voltascope_train::{DataParallel, Sgd, SyntheticDataset};
/// use voltascope_dnn::Shape;
///
/// let model = zoo::lenet();
/// let data = SyntheticDataset::new(Shape::new([1, 1, 28, 28]), 10, 64, 1);
/// let mut trainer = DataParallel::new(&model, 2, Sgd::new(0.05), 42);
/// let (x, labels) = data.batch(0, 8); // 4 samples per replica
/// let loss = trainer.step(&x, &labels);
/// assert!(loss.is_finite());
/// assert!(trainer.replicas_in_sync());
/// ```
#[derive(Debug)]
pub struct DataParallel<'m> {
    model: &'m Model,
    replicas: Vec<Params>,
    states: Vec<SgdState>,
    sgd: Sgd,
}

impl<'m> DataParallel<'m> {
    /// Creates a trainer with `replicas` synchronised copies of the
    /// model initialised from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(model: &'m Model, replicas: usize, sgd: Sgd, seed: u64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let params = model.init_params(seed);
        DataParallel {
            model,
            replicas: vec![params; replicas],
            states: (0..replicas).map(|_| SgdState::default()).collect(),
            sgd,
        }
    }

    /// Number of replicas (simulated GPUs).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Read access to a replica's parameters.
    pub fn params(&self, replica: usize) -> &Params {
        &self.replicas[replica]
    }

    /// One synchronous training step (paper Fig. 1): shards `batch`
    /// evenly across replicas, runs FP+BP per replica, ring-AllReduces
    /// the gradients (averaged), and applies the same SGD update on
    /// every replica. Returns the mean loss over the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch size is not divisible by the replica count
    /// or `labels` doesn't match the batch.
    pub fn step(&mut self, batch: &Tensor, labels: &[usize]) -> f32 {
        let n = self.replicas.len();
        let total = batch.shape().dim(0);
        assert_eq!(
            total % n,
            0,
            "batch of {total} not divisible across {n} replicas"
        );
        assert_eq!(labels.len(), total, "one label per sample");
        let shard = total / n;
        let per_image = batch.numel() / total;

        // FP + BP per replica on its shard (real math).
        let mut losses = Vec::with_capacity(n);
        let mut grads: Vec<Gradients> = Vec::with_capacity(n);
        for (r, params) in self.replicas.iter().enumerate() {
            let lo = r * shard;
            let shard_data = batch.data()[lo * per_image..(lo + shard) * per_image].to_vec();
            let x = Tensor::from_vec(batch.shape().with_batch(shard), shard_data);
            let acts = self.model.forward(params, &x);
            let (loss, grad_out) =
                softmax_cross_entropy(self.model.output(&acts), &labels[lo..lo + shard]);
            losses.push(loss);
            grads.push(self.model.backward(params, &x, &acts, &grad_out));
        }

        // WU stage: real ring AllReduce of flattened gradients, averaged.
        let mut buffers: Vec<Vec<f32>> = grads.iter().map(flatten).collect();
        semantic::all_reduce_average(&mut buffers);
        for (g, buf) in grads.iter_mut().zip(&buffers) {
            unflatten(g, buf);
        }

        // Identical update on every replica keeps them in sync.
        for ((params, state), grad) in self.replicas.iter_mut().zip(&mut self.states).zip(&grads) {
            self.sgd.step(params, grad, state);
        }
        losses.iter().sum::<f32>() / n as f32
    }

    /// `true` when every replica holds bit-identical parameters — the
    /// invariant synchronous SGD must maintain after every step.
    pub fn replicas_in_sync(&self) -> bool {
        let first = &self.replicas[0];
        self.replicas[1..].iter().all(|r| {
            r.iter()
                .zip(first.iter())
                .all(|(a, b)| a.data() == b.data())
        })
    }
}

/// Flattens a gradient set into one contiguous buffer (the layout the
/// collectives operate on).
pub fn flatten(grads: &Gradients) -> Vec<f32> {
    let mut out = Vec::new();
    for t in grads.iter() {
        out.extend_from_slice(t.data());
    }
    out
}

/// Writes a flat buffer back into a gradient set.
///
/// # Panics
///
/// Panics if `buf` does not match the gradients' total element count.
pub fn unflatten(grads: &mut Gradients, buf: &[f32]) {
    let mut at = 0;
    for t in grads.iter_mut() {
        let n = t.numel();
        t.data_mut().copy_from_slice(&buf[at..at + n]);
        at += n;
    }
    assert_eq!(at, buf.len(), "buffer length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use voltascope_dnn::{zoo, Shape};

    fn tiny_model() -> Model {
        use voltascope_dnn::{Conv2d, Dense, ModelBuilder, Relu, Source};
        let mut b = ModelBuilder::new("tiny", Shape::new([1, 1, 6, 6]));
        let c = b.add("c", Conv2d::new(1, 3, 3, 1, 1), &[Source::Input]);
        let r = b.add("r", Relu, &[Source::Node(c)]);
        let f = b.add("f", Dense::new(3 * 36, 4), &[Source::Node(r)]);
        b.finish(f)
    }

    #[test]
    fn replicas_stay_in_sync_over_steps() {
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 6, 6]), 4, 32, 5);
        let mut t = DataParallel::new(&model, 4, Sgd::new(0.05).momentum(0.9), 9);
        for step in 0..5 {
            let (x, l) = data.batch(step * 8, 8);
            t.step(&x, &l);
            assert!(t.replicas_in_sync(), "desync at step {step}");
        }
    }

    #[test]
    fn multi_gpu_step_equals_single_gpu_step() {
        // The fundamental data-parallel identity: averaging gradients
        // over shards == gradient of the full batch (losses are means).
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 6, 6]), 4, 32, 5);
        let (x, l) = data.batch(0, 8);

        let mut single = DataParallel::new(&model, 1, Sgd::new(0.1), 77);
        let mut multi = DataParallel::new(&model, 4, Sgd::new(0.1), 77);
        let loss1 = single.step(&x, &l);
        let loss4 = multi.step(&x, &l);
        assert!((loss1 - loss4).abs() < 1e-5, "{loss1} vs {loss4}");
        for (a, b) in single.params(0).iter().zip(multi.params(0).iter()) {
            for (u, v) in a.data().iter().zip(b.data()) {
                assert!((u - v).abs() < 1e-5, "weights diverged: {u} vs {v}");
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_learnable_data() {
        let model = tiny_model();
        let data = SyntheticDataset::new(Shape::new([1, 1, 6, 6]), 4, 64, 3);
        let mut t = DataParallel::new(&model, 2, Sgd::new(0.1).momentum(0.9), 1);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let (x, l) = data.batch(step * 16, 16);
            let loss = t.step(&x, &l);
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.7, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn lenet_trains_end_to_end() {
        // Smoke: real LeNet on 28x28 synthetic data, 2 replicas.
        let model = zoo::lenet();
        let data = SyntheticDataset::new(Shape::new([1, 1, 28, 28]), 4, 16, 2);
        let mut t = DataParallel::new(&model, 2, Sgd::new(0.05), 4);
        let mut losses = Vec::new();
        for step in 0..6 {
            let (x, l) = data.batch(step * 4, 4);
            losses.push(t.step(&x, &l));
        }
        assert!(losses.last().unwrap() < losses.first().unwrap());
        assert!(t.replicas_in_sync());
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let model = tiny_model();
        let p = model.init_params(1);
        let x = Tensor::full(Shape::new([1, 1, 6, 6]), 0.3);
        let acts = model.forward(&p, &x);
        let (_, g) = softmax_cross_entropy(model.output(&acts), &[1]);
        let mut grads = model.backward(&p, &x, &acts, &g);
        let flat = flatten(&grads);
        assert_eq!(flat.len() as u64, model.param_count());
        let mut doubled = flat.clone();
        for v in &mut doubled {
            *v *= 2.0;
        }
        unflatten(&mut grads, &doubled);
        assert_eq!(flatten(&grads), doubled);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_batch_panics() {
        let model = tiny_model();
        let mut t = DataParallel::new(&model, 3, Sgd::new(0.1), 1);
        let x = Tensor::zeros(Shape::new([4, 1, 6, 6]));
        let _ = t.step(&x, &[0, 1, 2, 3]);
    }
}
