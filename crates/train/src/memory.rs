//! GPU memory accounting for training (the paper's Table IV).
//!
//! Reproduces what `nvidia-smi` reports per GPU during the pre-training
//! and training phases of MXNet data-parallel training:
//!
//! * **Pre-training**: CUDA context + the replicated network model.
//! * **Training (every GPU)**: adds gradients, optimiser state, and the
//!   activation/workspace footprint that grows with batch size.
//! * **Training (GPU0)**: adds the parameter-server buffers — gradient
//!   aggregation and weight staging — which are *batch-independent*,
//!   which is why GPU0's relative overhead shrinks as the batch grows
//!   (§V-D).

use voltascope_dnn::Model;
use voltascope_gpu::{GpuSpec, MemoryPool, OomError};

/// Which role a GPU plays in the parameter-server schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuRole {
    /// GPU0: aggregates gradients and updates weights.
    Server,
    /// Any other GPU.
    Worker,
}

/// Calibration constants of the memory model.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    /// Multiplier on the raw activation footprint covering backward
    /// buffers, cuDNN workspace per layer, and allocator slack.
    /// Calibrated so Inception-v3 at batch 64 lands near the paper's
    /// 11 GB and the batch-size caps of §V-D reproduce.
    pub activation_multiplier: f64,
    /// Fixed framework overhead beyond the CUDA context (data pipeline
    /// staging buffers, executor bookkeeping).
    pub fixed_overhead: u64,
    /// Whether the optimiser keeps a momentum buffer (MXNet's default
    /// SGD does).
    pub momentum: bool,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            activation_multiplier: 1.3,
            fixed_overhead: 600 << 20,
            momentum: true,
        }
    }
}

/// One GPU's memory usage figures in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryUsage {
    /// `nvidia-smi` reading during pre-training (model resident).
    pub pre_training: u64,
    /// `nvidia-smi` reading during training.
    pub training: u64,
}

impl MemoryUsage {
    /// Usage in GiB (the unit of Table IV).
    pub fn training_gib(&self) -> f64 {
        self.training as f64 / (1u64 << 30) as f64
    }

    /// Pre-training usage in GiB.
    pub fn pre_training_gib(&self) -> f64 {
        self.pre_training as f64 / (1u64 << 30) as f64
    }
}

impl MemoryModel {
    /// Computes the memory usage of one GPU for `model` at the given
    /// per-GPU batch size.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the footprint exceeds the device —
    /// the condition that capped the paper's batch sizes (§V-D).
    pub fn usage(
        &self,
        model: &Model,
        batch: usize,
        role: GpuRole,
        spec: &GpuSpec,
    ) -> Result<MemoryUsage, OomError> {
        let mut pool = MemoryPool::new(spec.memory_bytes, spec.context_bytes);
        let params = model.param_bytes();

        // Pre-training: the model is broadcast to every GPU.
        pool.alloc(params, "weights")?;
        pool.alloc(self.fixed_overhead, "framework")?;
        let pre_training = pool.device_reported();

        // Training: gradients + optimiser state + activations.
        pool.alloc(params, "gradients")?;
        if self.momentum {
            pool.alloc(params, "momentum")?;
        }
        let activations =
            (model.activation_bytes(batch) as f64 * self.activation_multiplier) as u64;
        pool.alloc(activations, "activations+workspace")?;
        if role == GpuRole::Server {
            // Aggregation buffer for incoming gradients + staging copy
            // of the updated weights, both batch-independent.
            pool.alloc(params, "grad-aggregation")?;
            pool.alloc(params, "weight-staging")?;
        }
        Ok(MemoryUsage {
            pre_training,
            training: pool.device_reported(),
        })
    }

    /// The largest power-of-two batch size (from 16 doubling upward)
    /// that still fits on the device — how §V-D found 64 to be the cap
    /// for Inception-v3/ResNet and 128 for GoogLeNet.
    pub fn max_batch(&self, model: &Model, spec: &GpuSpec) -> Option<usize> {
        let mut best = None;
        let mut batch = 16usize;
        while batch <= 1024 {
            if self.usage(model, batch, GpuRole::Server, spec).is_err() {
                break;
            }
            best = Some(batch);
            batch *= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo;

    #[test]
    fn server_uses_more_than_worker() {
        let mm = MemoryModel::default();
        let spec = GpuSpec::tesla_v100();
        let model = zoo::alexnet();
        let s = mm.usage(&model, 32, GpuRole::Server, &spec).unwrap();
        let w = mm.usage(&model, 32, GpuRole::Worker, &spec).unwrap();
        assert!(s.training > w.training);
        assert_eq!(s.pre_training, w.pre_training);
        // The gap is two parameter copies (modulo allocator rounding).
        let gap = s.training - w.training;
        assert!(gap >= 2 * model.param_bytes());
        assert!(gap < 2 * model.param_bytes() + 2048);
    }

    #[test]
    fn server_overhead_percentage_shrinks_with_batch() {
        // Paper §V-D: "the percentage of additional memory usage by
        // GPU0 decreases with increased batch size."
        let mm = MemoryModel::default();
        let spec = GpuSpec::tesla_v100();
        let model = zoo::googlenet();
        let pct = |batch| {
            let s = mm.usage(&model, batch, GpuRole::Server, &spec).unwrap();
            let w = mm.usage(&model, batch, GpuRole::Worker, &spec).unwrap();
            (s.training - w.training) as f64 / w.training as f64
        };
        assert!(pct(16) > pct(32));
        assert!(pct(32) > pct(64));
    }

    #[test]
    fn memory_grows_with_batch_but_sublinearly() {
        let mm = MemoryModel::default();
        let spec = GpuSpec::tesla_v100();
        let model = zoo::resnet50();
        let m16 = mm
            .usage(&model, 16, GpuRole::Worker, &spec)
            .unwrap()
            .training;
        let m64 = mm
            .usage(&model, 64, GpuRole::Worker, &spec)
            .unwrap()
            .training;
        assert!(m64 > m16);
        // Fixed terms mean 4x batch < 4x memory (paper: 1.83x for
        // Inception-v3).
        assert!((m64 as f64) < 4.0 * m16 as f64);
    }

    #[test]
    fn pre_training_is_batch_independent() {
        let mm = MemoryModel::default();
        let spec = GpuSpec::tesla_v100();
        let model = zoo::lenet();
        let a = mm.usage(&model, 16, GpuRole::Worker, &spec).unwrap();
        let b = mm.usage(&model, 64, GpuRole::Worker, &spec).unwrap();
        assert_eq!(a.pre_training, b.pre_training);
    }

    #[test]
    fn oversized_batches_oom() {
        let mm = MemoryModel::default();
        let spec = GpuSpec::tesla_v100();
        let model = zoo::inception_v3();
        // Batch 256 per GPU cannot fit Inception-v3 in 16 GB.
        assert!(mm.usage(&model, 256, GpuRole::Server, &spec).is_err());
        let cap = mm.max_batch(&model, &spec).unwrap();
        assert!(cap < 256);
    }

    #[test]
    fn gib_conversions() {
        let u = MemoryUsage {
            pre_training: 1 << 30,
            training: 3 << 30,
        };
        assert_eq!(u.pre_training_gib(), 1.0);
        assert_eq!(u.training_gib(), 3.0);
    }
}
