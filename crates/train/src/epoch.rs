//! Epoch-level timing simulation of data-parallel training.
//!
//! Lowers one training configuration (workload x batch x GPU count x
//! communication method) onto the discrete-event engine: CUDA API calls
//! on per-GPU host threads, FP/BP kernels on per-GPU compute streams,
//! gradient/weight movement on per-direction link resources, following
//! the schedule of the paper's Fig. 1 with MXNet's BP/WU overlap
//! (gradient buckets communicate as soon as their backward kernel
//! finishes).
//!
//! Three pipelined iterations are simulated in detail; the steady-state
//! iteration time (iteration 3 minus iteration 2) is extrapolated to
//! the full epoch. This matches the paper's own observation that "the
//! time spent during each of the three stages within an epoch will
//! remain the same" (§IV-B).

use std::collections::BTreeMap;

use voltascope_comm::{collective, tuner, CommMethod, LinkNetwork, ReductionTree, Ring, Selection};
use voltascope_dnn::{Model, Stage};
use voltascope_gpu::{ApiCall, ApiCostModel, GpuSpec, KernelCostModel};
use voltascope_sim::{DynamicEvent, Engine, ResourceId, SimSpan, TaskGraph, TaskId, Trace};
use voltascope_topo::{dgx1_v100, Device, FaultSpec, Topology};
use voltascope_workload::{lower_model, LoweredWorkload};

use crate::dataset::{DatasetSpec, ScalingMode};

/// The simulated hardware/software platform.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// Interconnect topology.
    pub topo: Topology,
    /// GPU hardware spec.
    pub gpu: GpuSpec,
    /// Kernel execution cost model.
    pub kernels: KernelCostModel,
    /// CUDA runtime API cost model.
    pub api: ApiCostModel,
    /// NCCL backend cost model.
    pub nccl: collective::NcclCosts,
    /// Host-side per-GPU per-iteration dispatch cost (data iterator +
    /// kvstore push/pull bookkeeping), serialised on MXNet's single
    /// scheduling thread. This is what caps LeNet's multi-GPU speedup:
    /// at 8 GPUs roughly a millisecond of serial host work per
    /// iteration cannot be parallelised away (cf. the cudaStream-
    /// Synchronize discussion of §V-C).
    pub host_dispatch: SimSpan,
    /// Host-side orchestration cost per P2P WU transfer (kvstore
    /// `device` mode issues each per-key, per-pair copy individually:
    /// event wait + cudaMemcpyPeerAsync + completion callback). Charged
    /// on the source GPU's host thread; with 57-190 gradient buckets
    /// this is the per-key tax that lets NCCL's grouped collectives
    /// win on the deep networks (§V-A).
    pub p2p_issue: SimSpan,
    /// Whether gradient communication for a layer may start as soon as
    /// that layer's backward kernel finishes (`true`), or only after
    /// the whole backward pass (`false`). The paper notes MXNet
    /// "supports pipelining of WU and BP" but that only *some* latency
    /// is hidden (§II-B, §V-C footnote 6); the 2018-era kvstore pull
    /// blocked per iteration, so the calibrated default is `false`.
    /// Flipping this is the overlap ablation of DESIGN.md §5.
    pub bp_wu_overlap: bool,
    /// Per-GPU compute slowdown factors (>= 1): a straggler or
    /// thermally-throttled device runs all its kernels this much
    /// slower. Devices not listed run at full speed. Populated by
    /// [`SystemModel::with_faults`]; empty on a healthy system.
    pub gpu_slowdown: BTreeMap<Device, f64>,
    /// Concurrent kernels a GPU's compute resource admits. The
    /// calibrated default is 1 — one serial compute stream per GPU,
    /// matching the MXNet behaviour the paper profiles, under which
    /// DAG-shaped workloads still serialise. Raising it lets
    /// independent branches of a DAG-lowered workload (v2 `dep` edges)
    /// overlap, modelling multi-stream execution; linear chains are
    /// unaffected because their kernels are dependency-serialised.
    pub compute_streams: u32,
}

impl SystemModel {
    /// The paper's Volta-based DGX-1 with default calibration.
    pub fn dgx1() -> Self {
        let gpu = GpuSpec::tesla_v100();
        let kernels = KernelCostModel::new(&gpu);
        SystemModel {
            topo: dgx1_v100(),
            gpu,
            kernels,
            api: ApiCostModel::default(),
            nccl: collective::NcclCosts::default(),
            host_dispatch: SimSpan::from_micros(130),
            p2p_issue: SimSpan::from_micros(70),
            bp_wu_overlap: false,
            gpu_slowdown: BTreeMap::new(),
            compute_streams: 1,
        }
    }

    /// Derives the degraded system described by `faults`: the topology
    /// is rewired around dead/downgraded links (see
    /// [`Topology::apply`]) and per-GPU straggler factors are recorded
    /// for the kernel model. An empty fault spec returns an identical
    /// system.
    pub fn with_faults(&self, faults: &FaultSpec) -> SystemModel {
        let mut sys = self.clone();
        sys.topo = self.topo.apply(faults);
        for (&g, &f) in faults.gpu_slowdowns() {
            *sys.gpu_slowdown.entry(g).or_insert(1.0) *= f;
        }
        sys
    }

    /// Kernel cost model for device `g`, accounting for any straggler
    /// slowdown. Healthy devices get a plain copy of the shared model,
    /// so fault-free simulations are bit-identical to a system without
    /// the fault machinery.
    pub(crate) fn kernels_of(&self, g: Device) -> KernelCostModel {
        match self.gpu_slowdown.get(&g) {
            Some(&f) if f != 1.0 => self.kernels.slowed(f),
            _ => self.kernels.clone(),
        }
    }
}

/// One training configuration to simulate.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Per-GPU mini-batch size (the paper sweeps 16/32/64).
    pub batch_per_gpu: usize,
    /// Number of GPUs (1/2/4/8).
    pub gpu_count: usize,
    /// Communication method for the WU stage.
    pub comm: CommMethod,
    /// Strong or weak scaling.
    pub scaling: ScalingMode,
    /// Dataset size description.
    pub dataset: DatasetSpec,
    /// Gradient-bucket fusion threshold in bytes: consecutive per-layer
    /// buckets (in backward-completion order) are merged until each
    /// fused bucket reaches this size. `0` keeps MXNet's per-layer
    /// buckets (the paper's behaviour); larger values trade per-bucket
    /// overhead against pipelining granularity — the bucket-size
    /// ablation of DESIGN.md SS5 and the optimisation later popularised
    /// by Horovod/DDP.
    pub bucket_fusion_bytes: u64,
}

impl TrainConfig {
    /// A strong-scaling ImageNet-256K configuration (the paper's
    /// default protocol).
    pub fn strong(batch_per_gpu: usize, gpu_count: usize, comm: CommMethod) -> Self {
        TrainConfig {
            batch_per_gpu,
            gpu_count,
            comm,
            scaling: ScalingMode::Strong,
            dataset: DatasetSpec::imagenet_256k(),
            bucket_fusion_bytes: 0,
        }
    }
}

/// Results of simulating one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Iterations (mini-batches per GPU) in the epoch.
    pub iterations: u64,
    /// Steady-state duration of one iteration.
    pub iter_time: SimSpan,
    /// Full epoch duration (setup + pipeline fill + steady iterations).
    pub epoch_time: SimSpan,
    /// Wall time per iteration during which FP or BP kernels were
    /// executing on at least one GPU.
    pub fp_bp_iter: SimSpan,
    /// Exposed (non-overlapped) weight-update time per iteration.
    pub wu_iter: SimSpan,
    /// Per-iteration totals of every `api.*` category (call durations).
    pub api_iter: BTreeMap<String, SimSpan>,
    /// Per-iteration, per-GPU average wall time attributed to
    /// `cudaStreamSynchronize`, including the time the host thread sits
    /// blocked inside the call (what nvprof reports for it).
    pub sync_wall_iter: SimSpan,
    /// Mean compute-stream utilisation across GPUs in steady state.
    pub compute_utilization: f64,
    /// Steady-state iteration trace (times rebased to the iteration
    /// start) for profiler reports.
    pub iter_trace: Trace,
    /// The schedule's blocking chain through the middle (steady-state)
    /// iteration, oldest first: each task was what its successor
    /// actually waited on last — dependency or resource contention —
    /// so this is the simulated critical path. Labels are the
    /// middle-iteration task labels with the iteration prefix
    /// stripped (e.g. `fp.conv1@gpu0`).
    pub critical_chain: Vec<String>,
}

impl EpochReport {
    /// FP+BP time over the whole epoch.
    pub fn fp_bp_epoch(&self) -> SimSpan {
        self.fp_bp_iter * self.iterations
    }

    /// Exposed WU time over the whole epoch.
    pub fn wu_epoch(&self) -> SimSpan {
        self.wu_iter * self.iterations
    }

    /// `cudaStreamSynchronize` share of the epoch, in percent
    /// (Table III's metric).
    pub fn sync_percent(&self) -> f64 {
        100.0 * (self.sync_wall_iter * self.iterations).ratio(self.epoch_time)
    }
}

/// Simulates one epoch of data-parallel training.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero batch/GPUs) or asks
/// for more GPUs than the topology has.
///
/// # Example
///
/// ```
/// use voltascope_comm::CommMethod;
/// use voltascope_dnn::zoo;
/// use voltascope_train::{simulate_epoch, SystemModel, TrainConfig};
///
/// let sys = SystemModel::dgx1();
/// let model = zoo::lenet();
/// let one = simulate_epoch(&sys, &model, &TrainConfig::strong(16, 1, CommMethod::P2p));
/// let four = simulate_epoch(&sys, &model, &TrainConfig::strong(16, 4, CommMethod::P2p));
/// // More GPUs train faster, but sublinearly for tiny LeNet.
/// assert!(four.epoch_time < one.epoch_time);
/// assert!(four.epoch_time > one.epoch_time / 4);
/// ```
pub fn simulate_epoch(sys: &SystemModel, model: &Model, cfg: &TrainConfig) -> EpochReport {
    let lowered = lower_model(model, cfg.batch_per_gpu).unwrap_or_else(|e| panic!("{e}"));
    simulate_epoch_lowered(sys, &lowered, cfg)
}

/// Simulates one epoch of data-parallel training from an
/// already-lowered workload: the data-driven twin of
/// [`simulate_epoch`], consuming the kernel/bucket profile a
/// [`WorkloadSpec`](voltascope_workload::WorkloadSpec) or a built
/// model lowers to. All pipeline assembly — bucket fusion, the FP/BP
/// kernel chains, the P2P and NCCL weight-update schedules — lives
/// here; `simulate_epoch` is a thin wrapper that lowers its model
/// first, so both entry points produce bit-identical reports for
/// equivalent inputs.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero batch, GPU count
/// outside the topology) or `workload.batch` disagrees with
/// `cfg.batch_per_gpu`.
pub fn simulate_epoch_lowered(
    sys: &SystemModel,
    workload: &LoweredWorkload,
    cfg: &TrainConfig,
) -> EpochReport {
    simulate_epoch_lowered_with_events(sys, workload, cfg, |_| Vec::new()).0
}

/// The full lowering with a mid-run dynamic-event hook: `events` sees
/// the assembled task graph (to resolve resources by name) and returns
/// the [`DynamicEvent`]s to inject; the engine then runs via
/// [`Engine::run_with_events`]. With no events this is bit-identical
/// to [`Engine::run`] — `simulate_epoch_lowered` is exactly this call
/// with an empty hook, so the healthy path cannot drift. Also returns
/// the three iteration-marker finish instants (pipeline fill `t0`,
/// then the steady-state window ends `t1`, `t2`) that the mid-epoch
/// fault model in [`crate::dynamic`] needs.
pub(crate) fn simulate_epoch_lowered_with_events(
    sys: &SystemModel,
    workload: &LoweredWorkload,
    cfg: &TrainConfig,
    events: impl FnOnce(&TaskGraph) -> Vec<DynamicEvent>,
) -> (EpochReport, [voltascope_sim::SimTime; 3]) {
    assert!(cfg.batch_per_gpu > 0, "batch size must be positive");
    assert_eq!(
        workload.batch, cfg.batch_per_gpu,
        "workload lowered for batch {} but config asks for {}",
        workload.batch, cfg.batch_per_gpu
    );
    assert!(
        cfg.gpu_count >= 1 && cfg.gpu_count <= sys.topo.gpu_count(),
        "gpu_count {} out of range",
        cfg.gpu_count
    );

    let mut graph = TaskGraph::new();
    let net = LinkNetwork::register(&mut graph, &sys.topo);
    let gpus: Vec<Device> = (0..cfg.gpu_count).map(|g| Device::gpu(g as u8)).collect();
    let compute: BTreeMap<Device, ResourceId> = gpus
        .iter()
        .map(|&d| {
            (
                d,
                graph.add_resource(format!("{d}.compute"), sys.compute_streams.max(1)),
            )
        })
        .collect();
    let host: BTreeMap<Device, ResourceId> = gpus
        .iter()
        .map(|&d| (d, graph.add_resource(format!("{d}.host"), 1)))
        .collect();
    let scheduler = graph.add_resource("host.scheduler", 1);
    // Per-device kernel models: healthy GPUs share the system model's
    // numbers, stragglers get a uniformly slowed copy.
    let kmodels: BTreeMap<Device, KernelCostModel> =
        gpus.iter().map(|&d| (d, sys.kernels_of(d))).collect();

    let kernels = &workload.kernels;
    let layer_buckets = &workload.buckets;
    // Optional fusion: group consecutive per-layer buckets until each
    // fused bucket reaches the threshold. `groups[i]` lists the layer
    // buckets merged into fused bucket i; a fused bucket is ready when
    // its last member's backward kernel finishes.
    let mut buckets: Vec<voltascope_dnn::GradientBucket> = Vec::new();
    let mut member_of: BTreeMap<&str, usize> = BTreeMap::new();
    {
        let mut acc_bytes = 0u64;
        let mut acc_names: Vec<&str> = Vec::new();
        for b in layer_buckets {
            acc_bytes += b.bytes;
            acc_names.push(&b.name);
            if acc_bytes >= cfg.bucket_fusion_bytes.max(1) {
                let idx = buckets.len();
                for n in acc_names.drain(..) {
                    member_of.insert(n, idx);
                }
                buckets.push(voltascope_dnn::GradientBucket {
                    name: format!("bucket{idx}"),
                    bytes: acc_bytes,
                });
                acc_bytes = 0;
            }
        }
        if !acc_names.is_empty() {
            // Tail group merges into the previous bucket if one exists.
            if let Some(last) = buckets.last_mut() {
                last.bytes += acc_bytes;
                let idx = buckets.len() - 1;
                for n in acc_names {
                    member_of.insert(n, idx);
                }
            } else {
                for n in acc_names {
                    member_of.insert(n, 0);
                }
                buckets.push(voltascope_dnn::GradientBucket {
                    name: "bucket0".to_string(),
                    bytes: acc_bytes,
                });
            }
        }
    }
    let bucket_index = member_of;
    let batch_bytes = cfg.batch_per_gpu as u64 * DatasetSpec::image_bytes(&workload.input_shape);
    let ring = Ring::build(&sys.topo, cfg.gpu_count);
    let tree = ReductionTree::new(cfg.gpu_count);
    // Tune the NCCL (algorithm, protocol, channels) per distinct
    // bucket size once — bucket sizes are identical across the three
    // pipelined iterations, and with the calibrated singleton space
    // the tuner short-circuits without simulating anything. Built on
    // the (possibly degraded) topology, so a dead NVLink renegotiates
    // the choice along with the ring.
    let nccl_sel: BTreeMap<u64, (Selection, Selection)> = match cfg.comm {
        CommMethod::Nccl => buckets
            .iter()
            .map(|b| b.bytes)
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .map(|bytes| {
                let ar = tuner::choose_all_reduce(&sys.topo, &ring, bytes, &sys.nccl)
                    .unwrap_or_else(|e| panic!("{e}"));
                let bc = tuner::choose_broadcast(&sys.topo, &ring, bytes, &sys.nccl)
                    .unwrap_or_else(|e| panic!("{e}"));
                (bytes, (ar, bc))
            })
            .collect(),
        CommMethod::P2p => BTreeMap::new(),
    };

    // ---- Prologue: NCCL setup + initial model distribution. ----
    let setup = match cfg.comm {
        CommMethod::Nccl => {
            let t = graph
                .task("setup.nccl")
                .lasting(sys.nccl.epoch_setup)
                .category("setup")
                .build();
            Some(t)
        }
        CommMethod::P2p => None,
    };
    let mut weights_ready: Vec<TaskId> = gpus
        .iter()
        .map(|&g| {
            let deps: Vec<TaskId> = setup.into_iter().collect();
            net.transfer(
                &mut graph,
                &sys.topo,
                sys.topo.home_cpu(g),
                g,
                workload.param_bytes,
                &deps,
                "setup.weights",
                &format!("init.weights@{g}"),
            )
        })
        .collect();

    // ---- Three pipelined iterations. ----
    const ITERS: usize = 3;
    let mut markers = Vec::with_capacity(ITERS);
    // (sync task, host predecessor) pairs of the middle iteration, for
    // blocking-time attribution.
    let mut sync_pairs: Vec<(TaskId, TaskId)> = Vec::new();

    for it in 0..ITERS {
        let p = format!("it{it}");
        // Per GPU, per bucket: the BP kernel that produced the bucket.
        let mut bucket_ready: Vec<Vec<Option<TaskId>>> =
            vec![vec![None; buckets.len()]; cfg.gpu_count];
        let mut fp_bp_tail: Vec<TaskId> = Vec::with_capacity(cfg.gpu_count);
        let mut host_tail: Vec<TaskId> = Vec::with_capacity(cfg.gpu_count);

        for (gi, &g) in gpus.iter().enumerate() {
            // Per-GPU iteration dispatch on the shared scheduler thread
            // (data iterator + kvstore bookkeeping).
            let dispatch = graph
                .task(format!("{p}/dispatch@{g}"))
                .on(scheduler)
                .lasting(sys.host_dispatch)
                .category("api.kvstoreDispatch")
                .after(weights_ready[gi])
                .build();
            // Mini-batch H2D (prefetched; PCIe contention is modelled by
            // the link resource itself).
            let issue = graph
                .task(format!("{p}/h2d.issue@{g}"))
                .on(host[&g])
                .lasting(sys.api.cost(ApiCall::MemcpyAsync))
                .category(ApiCall::MemcpyAsync.category())
                .after(dispatch)
                .build();
            let h2d = net.transfer(
                &mut graph,
                &sys.topo,
                sys.topo.home_cpu(g),
                g,
                batch_bytes,
                &[issue],
                "h2d",
                &format!("{p}/data@{g}"),
            );

            let mut host_prev = issue;
            let mut kernel_prev: Option<TaskId> = None;
            let mut kernel_ids: Vec<TaskId> = Vec::with_capacity(kernels.len());
            for (ki, kd) in kernels.iter().enumerate() {
                let launch = graph
                    .task(format!("{p}/launch.{}@{g}", kd.name))
                    .on(host[&g])
                    .lasting(sys.api.cost(ApiCall::LaunchKernel))
                    .category(ApiCall::LaunchKernel.category())
                    .after(host_prev)
                    .build();
                host_prev = launch;
                let duration =
                    kmodels[&g].kernel_time_with_bytes(kd.flops as f64, kd.bytes, kd.tensor_cores);
                let category = match kd.stage {
                    Stage::Forward => "fp",
                    Stage::Backward => "bp",
                };
                let mut builder = graph
                    .task(format!("{p}/{}@{g}", kd.name))
                    .on(compute[&g])
                    .lasting(duration)
                    .category(category)
                    .after(launch);
                match &workload.dag {
                    // Linear chain: each kernel follows the previous
                    // one in issue order, the first follows the data.
                    None => {
                        if let Some(prev) = kernel_prev {
                            builder = builder.after(prev);
                        } else {
                            builder = builder.after(h2d).after(dispatch);
                        }
                    }
                    // DAG mode: data-dependency edges are wired after
                    // the loop (they can point forward in issue
                    // order); only the external-input gate is known
                    // here. Kernel index `ki < n` is FP of layer `ki`.
                    Some(dag) => {
                        if ki < dag.preds.len() && dag.preds[ki].is_empty() {
                            builder = builder.after(h2d).after(dispatch);
                        }
                    }
                }
                let kernel = builder.build();
                kernel_prev = Some(kernel);
                kernel_ids.push(kernel);
                if kd.stage == Stage::Backward {
                    if let Some(&bi) = kd
                        .name
                        .strip_prefix("bp.")
                        .and_then(|n| bucket_index.get(n))
                    {
                        bucket_ready[gi][bi] = Some(kernel);
                    }
                }
            }
            let last_kernel = match &workload.dag {
                None => kernel_prev.expect("model has at least one layer"),
                Some(dag) => {
                    // FP of layer `li` sits at kernel index `li`, its
                    // BP at `2n - 1 - li` (BP kernels are emitted in
                    // reverse layer order).
                    let n = dag.preds.len();
                    for li in 0..n {
                        for &pr in &dag.preds[li] {
                            graph.add_dep(kernel_ids[pr], kernel_ids[li]);
                        }
                        let bp = kernel_ids[2 * n - 1 - li];
                        // BP needs the layer's own activations and the
                        // gradients flowing back from every consumer;
                        // output layers (no consumers) start straight
                        // after their FP.
                        graph.add_dep(kernel_ids[li], bp);
                        for &sc in &dag.succs[li] {
                            graph.add_dep(kernel_ids[2 * n - 1 - sc], bp);
                        }
                    }
                    // The backward pass has no single final kernel in
                    // DAG mode; a zero-cost marker joins all BP nodes
                    // for end-of-compute gating.
                    graph
                        .task(format!("{p}/bp.done@{g}"))
                        .category("marker")
                        .after_all(kernel_ids[n..].iter().copied())
                        .build()
                }
            };
            if !sys.bp_wu_overlap {
                // Communication waits for the full backward pass.
                for slot in bucket_ready[gi].iter_mut() {
                    *slot = Some(last_kernel);
                }
            }
            fp_bp_tail.push(last_kernel);
            // End-of-compute stream synchronisation.
            let sync = graph
                .task(format!("{p}/sync.fpbp@{g}"))
                .on(host[&g])
                .lasting(sys.api.cost(ApiCall::StreamSynchronize))
                .category(ApiCall::StreamSynchronize.category())
                .after(host_prev)
                .after(last_kernel)
                .build();
            if it == 1 {
                sync_pairs.push((sync, host_prev));
            }
            host_tail.push(sync);
        }

        let bucket_ready: Vec<Vec<TaskId>> = bucket_ready
            .into_iter()
            .map(|v| {
                v.into_iter()
                    .collect::<Option<Vec<TaskId>>>()
                    .expect("every bucket has a BP kernel")
            })
            .collect();

        // ---- WU stage. ----
        let wu_done: Vec<Vec<TaskId>> = match cfg.comm {
            CommMethod::P2p => build_p2p_wu(
                &mut graph,
                &net,
                sys,
                &kmodels,
                &buckets,
                &gpus,
                &compute,
                &host,
                &tree,
                &bucket_ready,
                &p,
            ),
            CommMethod::Nccl => {
                // Grouped-collective marshalling on the scheduler thread,
                // once per GPU per iteration, gating the collectives.
                // Single-GPU runs skip it: no cross-device group exists
                // (the per-bucket kernel overheads still apply, which is
                // Table II's single-GPU NCCL overhead).
                let mut gated = bucket_ready.clone();
                for (gi, &g) in gpus.iter().enumerate().filter(|_| cfg.gpu_count > 1) {
                    let group = graph
                        .task(format!("{p}/nccl.group@{g}"))
                        .on(scheduler)
                        .lasting(sys.nccl.group_call_overhead)
                        .category("api.ncclGroupLaunch")
                        .after(gated[gi][0])
                        .build();
                    for slot in gated[gi].iter_mut() {
                        let merged = graph
                            .task(format!("{p}/nccl.gate@{g}"))
                            .category("marker")
                            .after(*slot)
                            .after(group)
                            .build();
                        *slot = merged;
                    }
                }
                build_nccl_wu(
                    &mut graph, &net, sys, &kmodels, &buckets, &gpus, &compute, &ring, &nccl_sel,
                    &gated, &p,
                )
            }
        };

        // Per-GPU weights-ready barrier + end-of-iteration sync.
        let mut iter_done_per_gpu = Vec::with_capacity(cfg.gpu_count);
        for (gi, &g) in gpus.iter().enumerate() {
            let barrier = graph
                .task(format!("{p}/weights.ready@{g}"))
                .category("marker")
                .after_all(wu_done[gi].iter().copied())
                .build();
            weights_ready[gi] = barrier;
            let sync = graph
                .task(format!("{p}/sync.wu@{g}"))
                .on(host[&g])
                .lasting(sys.api.cost(ApiCall::StreamSynchronize))
                .category(ApiCall::StreamSynchronize.category())
                .after(host_tail[gi])
                .after(barrier)
                .build();
            if it == 1 {
                sync_pairs.push((sync, host_tail[gi]));
            }
            iter_done_per_gpu.push(sync);
        }
        let marker = graph
            .task(format!("{p}/iter.done"))
            .category("marker")
            .after_all(iter_done_per_gpu)
            .build();
        markers.push(marker);
        let _ = fp_bp_tail;
    }

    // ---- Execute and extract. ----
    let dynamic = events(&graph);
    let schedule = Engine::new()
        .run_with_events(&graph, &dynamic)
        .expect("training graph is acyclic by construction");
    // The blocking chain runs earliest-first through whatever each
    // task waited on; keep the steady-state slice (the middle
    // iteration's tasks).
    let critical_chain: Vec<String> = schedule
        .critical_chain()
        .into_iter()
        .filter_map(|t| graph[t].label.strip_prefix("it1/").map(str::to_string))
        .collect();
    let t0 = schedule.finish_time(markers[0]);
    let t1 = schedule.finish_time(markers[1]);
    let t2 = schedule.finish_time(markers[2]);
    let iter_time = t2 - t1;
    let iterations = cfg
        .dataset
        .iterations(cfg.scaling, cfg.batch_per_gpu, cfg.gpu_count);
    // Epoch = first (fill) iteration + steady-state repetitions.
    let epoch_time =
        (t0 - voltascope_sim::SimTime::ZERO) + iter_time * iterations.saturating_sub(1);

    // Middle-iteration event window [t0, t1].
    let trace = schedule.trace();
    let mid: Vec<_> = trace
        .events()
        .iter()
        .filter(|e| e.label.starts_with("it1/"))
        .cloned()
        .collect();
    // FP+BP attribution: the mean per-GPU compute-stream busy time
    // (each stream is serial, so busy == sum of kernel durations).
    // Everything else in the iteration — communication, update kernels,
    // synchronisation stalls — is the exposed WU stage, matching the
    // paper's accounting where hidden (overlapped) communication is not
    // charged to WU (§V-C footnote 6).
    let compute_busy_total: SimSpan = mid
        .iter()
        .filter(|e| e.category == "fp" || e.category == "bp")
        .map(|e| e.duration())
        .sum();
    let fp_bp_iter = compute_busy_total / cfg.gpu_count as u64;
    let wu_iter = iter_time.saturating_sub(fp_bp_iter);

    let mut api_iter: BTreeMap<String, SimSpan> = BTreeMap::new();
    for e in &mid {
        if e.category.starts_with("api.") {
            *api_iter.entry(e.category.clone()).or_insert(SimSpan::ZERO) += e.duration();
        }
    }
    let sync_wall_total: SimSpan = sync_pairs
        .iter()
        .map(|&(sync, prev)| {
            schedule.finish_time(sync) - schedule.finish_time(prev).min(schedule.start_time(sync))
        })
        .sum();
    // Average over the per-GPU host threads (each thread makes the
    // same calls; nvprof reports per-thread shares).
    let sync_wall_iter = sync_wall_total / cfg.gpu_count as u64;

    let compute_utilization = if iter_time.is_zero() {
        0.0
    } else {
        compute_busy_total.ratio(iter_time) / cfg.gpu_count as f64
    };

    // Rebase the middle-iteration trace to start at zero.
    let base = mid.iter().map(|e| e.start).min().unwrap_or_default();
    let rebased: Vec<_> = mid
        .into_iter()
        .map(|mut e| {
            let offset = e.start - base;
            let len = e.duration();
            e.start = voltascope_sim::SimTime::ZERO + offset;
            e.end = e.start + len;
            e
        })
        .collect();

    (
        EpochReport {
            iterations,
            iter_time,
            epoch_time,
            fp_bp_iter,
            wu_iter,
            api_iter,
            sync_wall_iter,
            compute_utilization,
            iter_trace: Trace::new(rebased),
            critical_chain,
        },
        [t0, t1, t2],
    )
}

/// MXNet `device` kvstore: tree-reduce every gradient bucket onto GPU0,
/// update there, tree-broadcast the weights back (paper §II-B, §V-A).
#[allow(clippy::too_many_arguments)]
fn build_p2p_wu(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    sys: &SystemModel,
    kmodels: &BTreeMap<Device, KernelCostModel>,
    buckets: &[voltascope_dnn::GradientBucket],
    gpus: &[Device],
    compute: &BTreeMap<Device, ResourceId>,
    host: &BTreeMap<Device, ResourceId>,
    tree: &ReductionTree,
    bucket_ready: &[Vec<TaskId>],
    prefix: &str,
) -> Vec<Vec<TaskId>> {
    let n = gpus.len();
    let mut done: Vec<Vec<TaskId>> = vec![Vec::with_capacity(buckets.len()); n];

    for (bi, bucket) in buckets.iter().enumerate() {
        let mut cur: Vec<TaskId> = (0..n).map(|g| bucket_ready[g][bi]).collect();

        for round in tree.reduce_steps() {
            for (from, to) in round {
                let issue = graph
                    .task(format!("{prefix}/wu.issue.{}.{from}>{to}", bucket.name))
                    .on(host[&gpus[from]])
                    .lasting(sys.p2p_issue)
                    .category("api.kvstorePush")
                    .after(cur[from])
                    .build();
                let xfer = net.transfer_hardware(
                    graph,
                    &sys.topo,
                    gpus[from],
                    gpus[to],
                    bucket.bytes,
                    &[issue, cur[to]],
                    "wu.p2p.reduce",
                    &format!("{prefix}/wu.grad.{}.{from}>{to}", bucket.name),
                );
                let add = graph
                    .task(format!("{prefix}/wu.add.{}@{to}", bucket.name))
                    .on(compute[&gpus[to]])
                    // Read both operands, write the sum: 3x bucket bytes.
                    .lasting(kmodels[&gpus[to]].elementwise_kernel_time(3 * bucket.bytes))
                    .category("wu.p2p.add")
                    .after(xfer)
                    .build();
                cur[to] = add;
            }
        }

        // SGD update on the parameter-server GPU: elementwise over
        // weights, gradients and momentum (~5x bucket bytes traffic).
        let upd = graph
            .task(format!("{prefix}/wu.update.{}", bucket.name))
            .on(compute[&gpus[0]])
            .lasting(kmodels[&gpus[0]].elementwise_kernel_time(5 * bucket.bytes))
            .category("wu.update")
            .after(cur[0])
            .build();

        let mut bcur: Vec<TaskId> = vec![upd; n];
        for round in tree.broadcast_steps() {
            for (from, to) in round {
                let issue = graph
                    .task(format!("{prefix}/wu.bissue.{}.{from}>{to}", bucket.name))
                    .on(host[&gpus[from]])
                    .lasting(sys.p2p_issue)
                    .category("api.kvstorePull")
                    .after(bcur[from])
                    .build();
                let xfer = net.transfer(
                    graph,
                    &sys.topo,
                    gpus[from],
                    gpus[to],
                    bucket.bytes,
                    &[issue],
                    "wu.p2p.bcast",
                    &format!("{prefix}/wu.weights.{}.{from}>{to}", bucket.name),
                );
                bcur[to] = xfer;
            }
        }
        for g in 0..n {
            done[g].push(bcur[g]);
        }
    }
    done
}

/// NCCL backend: per-bucket ring AllReduce of gradients, SGD update on
/// GPU0, ring Broadcast of updated weights (paper §II-C, §V-B).
#[allow(clippy::too_many_arguments)]
fn build_nccl_wu(
    graph: &mut TaskGraph,
    net: &LinkNetwork,
    sys: &SystemModel,
    kmodels: &BTreeMap<Device, KernelCostModel>,
    buckets: &[voltascope_dnn::GradientBucket],
    gpus: &[Device],
    compute: &BTreeMap<Device, ResourceId>,
    ring: &Ring,
    selections: &BTreeMap<u64, (Selection, Selection)>,
    bucket_ready: &[Vec<TaskId>],
    prefix: &str,
) -> Vec<Vec<TaskId>> {
    let n = gpus.len();
    let mut done: Vec<Vec<TaskId>> = vec![Vec::with_capacity(buckets.len()); n];

    for (bi, bucket) in buckets.iter().enumerate() {
        let ready: collective::PerGpuDone = gpus
            .iter()
            .enumerate()
            .map(|(g, &d)| (d, bucket_ready[g][bi]))
            .collect();
        let (sel_ar, sel_bc) = selections.get(&bucket.bytes).unwrap_or_else(|| {
            panic!("no tuned NCCL selection for a {}-byte bucket", bucket.bytes)
        });
        // (bucket sizes drive both transfer and update costs below)
        let reduced = collective::all_reduce(
            graph,
            net,
            &sys.topo,
            ring,
            bucket.bytes,
            &ready,
            compute,
            &sys.nccl,
            sel_ar,
            &format!("{prefix}/wu.ar.{}", bucket.name),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let upd = graph
            .task(format!("{prefix}/wu.update.{}", bucket.name))
            .on(compute[&gpus[0]])
            .lasting(kmodels[&gpus[0]].elementwise_kernel_time(5 * bucket.bytes))
            .category("wu.update")
            .after(reduced[&gpus[0]])
            .build();
        let ready2: collective::PerGpuDone = gpus
            .iter()
            .map(|&d| (d, if d == gpus[0] { upd } else { reduced[&d] }))
            .collect();
        let bc = collective::broadcast(
            graph,
            net,
            &sys.topo,
            ring,
            bucket.bytes,
            &ready2,
            compute,
            &sys.nccl,
            sel_bc,
            &format!("{prefix}/wu.bc.{}", bucket.name),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        for (g, &d) in gpus.iter().enumerate() {
            done[g].push(bc[&d]);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltascope_dnn::zoo;

    fn quick_dataset() -> DatasetSpec {
        DatasetSpec {
            name: "small".into(),
            images: 1024,
            classes: 10,
        }
    }

    fn cfg(batch: usize, gpus: usize, comm: CommMethod) -> TrainConfig {
        TrainConfig {
            batch_per_gpu: batch,
            gpu_count: gpus,
            comm,
            scaling: ScalingMode::Strong,
            dataset: quick_dataset(),
            bucket_fusion_bytes: 0,
        }
    }

    #[test]
    fn multi_gpu_reduces_epoch_time() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let r1 = simulate_epoch(&sys, &model, &cfg(16, 1, CommMethod::P2p));
        let r2 = simulate_epoch(&sys, &model, &cfg(16, 2, CommMethod::P2p));
        let r4 = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::P2p));
        assert!(r2.epoch_time < r1.epoch_time);
        assert!(r4.epoch_time < r2.epoch_time);
        // Sublinear for LeNet: communication cannot be hidden.
        let speedup4 = r1.epoch_time.as_secs_f64() / r4.epoch_time.as_secs_f64();
        assert!(speedup4 < 4.0, "speedup {speedup4}");
    }

    #[test]
    fn larger_batches_reduce_epoch_time() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let b16 = simulate_epoch(&sys, &model, &cfg(16, 2, CommMethod::P2p));
        let b32 = simulate_epoch(&sys, &model, &cfg(32, 2, CommMethod::P2p));
        let b64 = simulate_epoch(&sys, &model, &cfg(64, 2, CommMethod::P2p));
        assert!(b32.epoch_time < b16.epoch_time);
        assert!(b64.epoch_time < b32.epoch_time);
    }

    #[test]
    fn nccl_loses_on_a_single_gpu() {
        // Table II: the NCCL code path is pure overhead at GPU count 1.
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let p2p = simulate_epoch(&sys, &model, &cfg(16, 1, CommMethod::P2p));
        let nccl = simulate_epoch(&sys, &model, &cfg(16, 1, CommMethod::Nccl));
        assert!(nccl.epoch_time > p2p.epoch_time);
    }

    #[test]
    fn wu_exists_only_with_multiple_gpus_meaningfully() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let r1 = simulate_epoch(&sys, &model, &cfg(16, 1, CommMethod::P2p));
        let r4 = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::P2p));
        // Single-GPU WU is just the update kernels: far below FP+BP.
        assert!(r1.wu_iter < r1.fp_bp_iter / 2);
        assert!(r4.wu_iter > r1.wu_iter);
    }

    #[test]
    fn report_identities_hold() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let r = simulate_epoch(&sys, &model, &cfg(32, 2, CommMethod::Nccl));
        assert_eq!(r.fp_bp_iter + r.wu_iter, r.iter_time);
        assert!(r.compute_utilization > 0.0 && r.compute_utilization < 1.0);
        assert!(!r.iter_trace.is_empty());
        assert!(r.sync_percent() >= 0.0);
        assert_eq!(r.fp_bp_epoch(), r.fp_bp_iter * r.iterations);
    }

    #[test]
    fn weak_scaling_keeps_iterations_constant() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let mut weak = cfg(16, 4, CommMethod::P2p);
        weak.scaling = ScalingMode::Weak;
        let strong = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::P2p));
        let weak = simulate_epoch(&sys, &model, &weak);
        assert_eq!(weak.iterations, strong.iterations * 4);
        assert_eq!(weak.iter_time, strong.iter_time);
    }

    #[test]
    fn simulation_is_deterministic() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let a = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::Nccl));
        let b = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::Nccl));
        assert_eq!(a.epoch_time, b.epoch_time);
        assert_eq!(a.iter_time, b.iter_time);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_gpus_panics() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let _ = simulate_epoch(&sys, &model, &cfg(16, 9, CommMethod::P2p));
    }

    #[test]
    fn empty_faults_change_nothing() {
        let sys = SystemModel::dgx1();
        let degraded = sys.with_faults(&FaultSpec::new());
        let model = zoo::lenet();
        let a = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::Nccl));
        let b = simulate_epoch(&degraded, &model, &cfg(16, 4, CommMethod::Nccl));
        assert_eq!(a.epoch_time, b.epoch_time);
        assert_eq!(a.iter_time, b.iter_time);
    }

    #[test]
    fn straggler_gpu_slows_the_whole_iteration() {
        // Data parallelism synchronises every iteration, so one GPU at
        // 2x kernel time drags all four towards its pace.
        let sys = SystemModel::dgx1();
        let slow = sys.with_faults(&FaultSpec::new().slow_gpu(Device::gpu(3), 2.0));
        let model = zoo::alexnet();
        let healthy = simulate_epoch(&sys, &model, &cfg(16, 4, CommMethod::Nccl));
        let degraded = simulate_epoch(&slow, &model, &cfg(16, 4, CommMethod::Nccl));
        assert!(
            degraded.iter_time > healthy.iter_time,
            "straggler did not slow the iteration: {} vs {}",
            degraded.iter_time,
            healthy.iter_time
        );
        // But nowhere near 2x the whole epoch either: only GPU3's
        // kernels run slow, and a single-GPU run without it is
        // unaffected entirely.
        let healthy1 = simulate_epoch(&sys, &model, &cfg(16, 1, CommMethod::P2p));
        let degraded1 = simulate_epoch(&slow, &model, &cfg(16, 1, CommMethod::P2p));
        assert_eq!(healthy1.epoch_time, degraded1.epoch_time);
    }

    #[test]
    fn dag_branches_overlap_with_multiple_streams() {
        use voltascope_workload::{lower, WorkloadSpec};
        // Two heavy parallel branches between stem and join. Linear
        // twin: same layers, deps stripped (the v1 chain).
        let text = "workload v2\nname Branchy\ninput 64 64\n\
                    layer stem conv 0 800000000 1600000000 16384 1048576 4096 0\n\
                    layer left conv 0 900000000 1800000000 1048576 1048576 8192 0\n\
                    dep left stem\n\
                    layer right conv 0 900000000 1800000000 1048576 1048576 8192 0\n\
                    dep right stem\n\
                    layer join concat 0 1000000 2000000 2097152 2097152 4096 0\n\
                    dep join left right\n\
                    end\n";
        let spec = WorkloadSpec::parse(text).unwrap();
        let mut linear = spec.clone();
        for l in &mut linear.layers {
            l.deps = None;
        }
        let dag_lw = lower(&spec, 16).unwrap();
        let lin_lw = lower(&linear, 16).unwrap();
        assert!(dag_lw.dag.is_some());
        assert!(lin_lw.dag.is_none());

        let mut sys = SystemModel::dgx1();
        let c = cfg(16, 1, CommMethod::P2p);
        // One stream: branches serialise; the DAG changes nothing
        // observable in iteration time.
        let one_dag = simulate_epoch_lowered(&sys, &dag_lw, &c);
        let one_lin = simulate_epoch_lowered(&sys, &lin_lw, &c);
        assert_eq!(one_dag.iter_time, one_lin.iter_time);
        // Two streams: left and right overlap in FP and BP. The linear
        // twin runs at the same capacity so the comparison isolates
        // the branch overlap (WU kernels share the compute resource,
        // so capacity alone shifts both runs equally).
        sys.compute_streams = 2;
        let two_dag = simulate_epoch_lowered(&sys, &dag_lw, &c);
        let two_lin = simulate_epoch_lowered(&sys, &lin_lw, &c);
        assert!(
            two_dag.iter_time < two_lin.iter_time,
            "branches did not overlap: {} vs {}",
            two_dag.iter_time,
            two_lin.iter_time
        );
        // In each direction the critical chain threads exactly one of
        // the two parallel branches (the other overlaps off-path).
        let has = |lbl: &str| two_dag.critical_chain.iter().any(|l| l.contains(lbl));
        assert!(
            has("fp.left@") ^ has("fp.right@"),
            "{:?}",
            two_dag.critical_chain
        );
        assert!(
            has("bp.left@") ^ has("bp.right@"),
            "{:?}",
            two_dag.critical_chain
        );
    }

    #[test]
    fn critical_chain_is_reported_for_the_steady_iteration() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let r = simulate_epoch(&sys, &model, &cfg(16, 2, CommMethod::P2p));
        assert!(!r.critical_chain.is_empty());
        // Labels are it1-scoped with the prefix stripped.
        assert!(r.critical_chain.iter().all(|l| !l.starts_with("it")));
    }

    #[test]
    fn dead_nvlink_interface_slows_nccl_training() {
        // All of GPU3's NVLink bricks dead: the 8-GPU ring cannot avoid
        // it, so three hops fall back to host bouncing and the NCCL
        // epoch stretches.
        let sys = SystemModel::dgx1();
        let dead = sys.with_faults(&FaultSpec::new().kill_nvlinks_of(Device::gpu(3)));
        let model = zoo::alexnet();
        let healthy = simulate_epoch(&sys, &model, &cfg(16, 8, CommMethod::Nccl));
        let degraded = simulate_epoch(&dead, &model, &cfg(16, 8, CommMethod::Nccl));
        assert!(
            degraded.epoch_time > healthy.epoch_time,
            "dead NVLink interface did not slow NCCL: {} vs {}",
            degraded.epoch_time,
            healthy.epoch_time
        );
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use voltascope_dnn::zoo;

    fn cfg_fused(fusion: u64) -> TrainConfig {
        cfg_fused_with(fusion, CommMethod::Nccl)
    }

    fn cfg_fused_with(fusion: u64, comm: CommMethod) -> TrainConfig {
        TrainConfig {
            batch_per_gpu: 16,
            gpu_count: 4,
            comm,
            scaling: ScalingMode::Strong,
            dataset: DatasetSpec {
                name: "small".into(),
                images: 1024,
                classes: 10,
            },
            bucket_fusion_bytes: fusion,
        }
    }

    #[test]
    fn fusion_cuts_p2p_per_key_orchestration() {
        // P2P pays per-transfer kvstore orchestration, so merging 107
        // ResNet buckets into a handful must shorten the WU stage.
        let sys = SystemModel::dgx1();
        let model = zoo::resnet50();
        let per_layer = simulate_epoch(&sys, &model, &cfg_fused_with(0, CommMethod::P2p));
        let fused = simulate_epoch(&sys, &model, &cfg_fused_with(16 << 20, CommMethod::P2p));
        assert!(
            fused.wu_iter < per_layer.wu_iter,
            "fused {} vs per-layer {}",
            fused.wu_iter,
            per_layer.wu_iter
        );
    }

    #[test]
    fn nccl_fusion_trades_overhead_against_pipelining() {
        // NCCL's ring is bandwidth-bound for ResNet at 4 GPUs: fusion
        // removes per-bucket overheads that were already hidden, while
        // coarser buckets lose AllReduce/Broadcast pipelining — the WU
        // stage shifts only mildly in either direction.
        let sys = SystemModel::dgx1();
        let model = zoo::resnet50();
        let per_layer = simulate_epoch(&sys, &model, &cfg_fused(0));
        let fused = simulate_epoch(&sys, &model, &cfg_fused(16 << 20));
        let ratio = fused.wu_iter.as_secs_f64() / per_layer.wu_iter.as_secs_f64();
        assert!(
            (0.5..1.5).contains(&ratio),
            "fusion changed NCCL WU by {ratio:.2}x"
        );
    }

    #[test]
    fn fusion_preserves_total_gradient_volume() {
        // Whatever the fusion threshold, the bytes communicated per
        // iteration stay the model's parameter bytes; epoch time is
        // finite and deterministic.
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        for fusion in [0u64, 1 << 10, 1 << 20, u64::MAX / 2] {
            let r = simulate_epoch(&sys, &model, &cfg_fused(fusion));
            assert!(!r.epoch_time.is_zero());
        }
    }

    #[test]
    fn full_fusion_behaves_like_single_bucket() {
        let sys = SystemModel::dgx1();
        let model = zoo::lenet();
        let one = simulate_epoch(&sys, &model, &cfg_fused(u64::MAX / 2));
        let per_layer = simulate_epoch(&sys, &model, &cfg_fused(0));
        // A single bucket loses all BP/WU pipelining granularity but
        // pays the per-collective overhead once.
        assert_ne!(one.iter_time, per_layer.iter_time);
    }
}
