//! Property-based tests over random layer configurations: gradients of
//! randomly-shaped convolutions and pools must always match finite
//! differences, and shape inference must agree with real execution.

use proptest::prelude::*;
use voltascope_dnn::{AvgPool2d, Conv2d, Dense, Layer, MaxPool2d, Shape, Tensor};

fn fixture(shape: Shape, salt: u64) -> Tensor {
    let mut t = Tensor::zeros(shape);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        let x = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(salt);
        *v = ((x >> 33) % 1000) as f32 / 500.0 - 1.0;
    }
    t
}

/// Numeric-vs-analytic gradient check using loss = sum(output * seed).
fn gradcheck(layer: &dyn Layer, inputs: &[Tensor], params: &[Tensor]) -> Result<(), String> {
    let irefs: Vec<&Tensor> = inputs.iter().collect();
    let prefs: Vec<&Tensor> = params.iter().collect();
    let out = layer.forward(&irefs, &prefs);
    let mut seed = Tensor::zeros(out.shape().clone());
    for (i, v) in seed.data_mut().iter_mut().enumerate() {
        *v = ((i * 2654435761) % 13) as f32 / 13.0 - 0.5;
    }
    let loss = |o: &Tensor| -> f64 {
        o.data()
            .iter()
            .zip(seed.data())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    };
    let bwd = layer.backward(&irefs, &prefs, &out, &seed);
    let eps = 1e-2f32;
    // Spot-check a deterministic sample of coordinates per tensor.
    for (slot, analytic) in bwd.grad_inputs.iter().enumerate() {
        for idx in (0..analytic.numel()).step_by(analytic.numel() / 8 + 1) {
            let mut p = inputs.to_vec();
            let mut m = inputs.to_vec();
            p[slot][idx] += eps;
            m[slot][idx] -= eps;
            let op = layer.forward(&p.iter().collect::<Vec<_>>(), &prefs);
            let om = layer.forward(&m.iter().collect::<Vec<_>>(), &prefs);
            let numeric = ((loss(&op) - loss(&om)) / (2.0 * eps as f64)) as f32;
            let got = analytic[idx];
            let scale = numeric.abs().max(got.abs()).max(1.0);
            if (numeric - got).abs() / scale > 3e-2 {
                return Err(format!(
                    "{} d-input[{slot}][{idx}]: numeric {numeric} vs analytic {got}",
                    layer.kind()
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random convolution configurations: shape inference matches the
    /// executed output shape, FLOPs are positive, gradients check out.
    #[test]
    fn conv_shapes_and_gradients(
        in_ch in 1usize..3,
        out_ch in 1usize..3,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        hw in 3usize..7,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let conv = Conv2d::new(in_ch, out_ch, k, stride, pad);
        let in_shape = Shape::new([1, in_ch, hw, hw]);
        let expect = conv.output_shape(std::slice::from_ref(&in_shape));
        let x = fixture(in_shape.clone(), 1);
        let w = fixture(Shape::new([out_ch, in_ch, k, k]), 2);
        let b = fixture(Shape::new([out_ch]), 3);
        let y = conv.forward(&[&x], &[&w, &b]);
        prop_assert_eq!(y.shape(), &expect);
        prop_assert!(conv.forward_flops(std::slice::from_ref(&in_shape)) > 0);
        gradcheck(&conv, &[x], &[w, b]).map_err(TestCaseError::fail)?;
    }

    /// Random pooling configurations: executed shape == inferred shape,
    /// and max-pool output is bounded by the input extremes.
    #[test]
    fn pool_shapes_and_bounds(
        k in 1usize..4,
        stride in 1usize..3,
        hw in 3usize..8,
        avg in proptest::bool::ANY,
    ) {
        prop_assume!(hw >= k);
        let in_shape = Shape::new([2, 2, hw, hw]);
        let x = fixture(in_shape.clone(), 7);
        let layer: Box<dyn Layer> = if avg {
            Box::new(AvgPool2d::new(k, stride, 0))
        } else {
            Box::new(MaxPool2d::new(k, stride, 0))
        };
        let expect = layer.output_shape(std::slice::from_ref(&in_shape));
        let y = layer.forward(&[&x], &[]);
        prop_assert_eq!(y.shape(), &expect);
        let lo = x.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &v in y.data() {
            prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
        }
    }

    /// Dense layers: linearity in the input.
    #[test]
    fn dense_is_linear(in_f in 1usize..8, out_f in 1usize..6, scale in 1u32..5) {
        let fc = Dense::new(in_f, out_f);
        let x = fixture(Shape::new([2, in_f]), 4);
        let w = fixture(Shape::new([out_f, in_f]), 5);
        let b = Tensor::zeros(Shape::new([out_f]));
        let y1 = fc.forward(&[&x], &[&w, &b]);
        let mut xs = x.clone();
        xs.scale(scale as f32);
        let y2 = fc.forward(&[&xs], &[&w, &b]);
        for (a, c) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * scale as f32 - c).abs() < 1e-3 * c.abs().max(1.0));
        }
    }
}
