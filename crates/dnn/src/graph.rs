//! Network graphs: DAGs of layers with shape inference, real
//! execution, and the accounting queries the simulator consumes.

use std::collections::BTreeMap;

use crate::layer::Layer;
use crate::tensor::{Shape, Tensor};

/// Identifies a node within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a node reads its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The model's external input tensor.
    Input,
    /// Another node's output.
    Node(NodeId),
}

struct Node {
    name: String,
    layer: Box<dyn Layer>,
    inputs: Vec<Source>,
    out_shape: Shape, // at batch 1
    module: Option<String>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("kind", &self.layer.kind())
            .field("out_shape", &self.out_shape)
            .finish()
    }
}

/// Which training stage a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
}

/// One GPU kernel the simulator must schedule for a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDesc {
    /// Label, e.g. `"fp.conv1"`.
    pub name: String,
    /// FP or BP.
    pub stage: Stage,
    /// Arithmetic work.
    pub flops: u64,
    /// Device memory traffic (inputs + outputs, at f32).
    pub bytes: u64,
    /// Whether the kernel runs on tensor cores.
    pub tensor_cores: bool,
}

/// One layer's accounting snapshot at batch 1: everything a
/// declarative workload schema needs to describe the layer without the
/// graph. Every count scales exactly linearly in batch for the layer
/// kinds in this crate, so batch-1 values suffice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Layer (node) name, unique within the model.
    pub name: String,
    /// Layer kind tag (`"conv"`, `"fc"`, ...).
    pub kind: &'static str,
    /// Forward FLOPs for one sample.
    pub fp_flops: u64,
    /// Backward FLOPs for one sample.
    pub bp_flops: u64,
    /// Input activation bytes for one sample (summed over fan-in).
    pub in_bytes: u64,
    /// Output activation bytes for one sample.
    pub out_bytes: u64,
    /// Parameter bytes at f32.
    pub param_bytes: u64,
    /// Whether the layer's kernels run on tensor cores.
    pub tensor_cores: bool,
}

/// A layer's parameter block, used as the granularity of gradient
/// communication (MXNet transfers gradients layer by layer, which is
/// what NCCL pipelines across, §V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradientBucket {
    /// Owning node's name.
    pub name: String,
    /// Bytes of gradient (= bytes of weights) in this bucket.
    pub bytes: u64,
}

/// A feed-forward DAG of layers.
///
/// Build with [`ModelBuilder`]; the five paper workloads are available
/// in [`crate::zoo`].
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Conv2d, Dense, ModelBuilder, Relu, Shape, Source};
///
/// let mut b = ModelBuilder::new("tiny", Shape::new([1, 1, 8, 8]));
/// let c = b.add("conv1", Conv2d::new(1, 4, 3, 1, 1), &[Source::Input]);
/// let r = b.add("relu1", Relu, &[Source::Node(c)]);
/// let f = b.add("fc", Dense::new(4 * 8 * 8, 10), &[Source::Node(r)]);
/// let model = b.finish(f);
/// assert_eq!(model.output_shape(1).dims(), &[1, 10]);
/// assert_eq!(model.param_count(), (4 * 9 + 4) + (4 * 64 * 10 + 10));
/// ```
#[derive(Debug)]
pub struct Model {
    name: String,
    input_shape: Shape, // batch dim = 1
    nodes: Vec<Node>,
    output: NodeId,
}

/// Incremental [`Model`] constructor with eager shape inference.
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
    current_module: Option<String>,
}

impl ModelBuilder {
    /// Starts a model taking inputs of `input_shape` (batch dimension
    /// must be 1; executions rescale it).
    ///
    /// # Panics
    ///
    /// Panics unless `input_shape` has batch dimension 1.
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        assert_eq!(input_shape.dim(0), 1, "canonical input shape uses batch 1");
        ModelBuilder {
            name: name.into(),
            input_shape,
            nodes: Vec::new(),
            current_module: None,
        }
    }

    /// Marks subsequent nodes as belonging to the named module (e.g. an
    /// inception module); used for the Table I census.
    pub fn begin_module(&mut self, name: impl Into<String>) {
        self.current_module = Some(name.into());
    }

    /// Ends the current module grouping.
    pub fn end_module(&mut self) {
        self.current_module = None;
    }

    /// Adds a layer reading from `inputs`; returns the new node's id.
    /// Output shape is inferred immediately, so an ill-formed graph
    /// panics here rather than at execution time.
    ///
    /// # Panics
    ///
    /// Panics if an input id is out of range or shapes are incompatible.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        layer: impl Layer + 'static,
        inputs: &[Source],
    ) -> NodeId {
        let in_shapes: Vec<Shape> = inputs
            .iter()
            .map(|s| match s {
                Source::Input => self.input_shape.clone(),
                Source::Node(id) => {
                    assert!(id.index() < self.nodes.len(), "unknown input {id:?}");
                    self.nodes[id.index()].out_shape.clone()
                }
            })
            .collect();
        let out_shape = layer.output_shape(&in_shapes);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            layer: Box::new(layer),
            inputs: inputs.to_vec(),
            out_shape,
            module: self.current_module.clone(),
        });
        id
    }

    /// Finalises the model with `output` as its head.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a node of this builder.
    pub fn finish(self, output: NodeId) -> Model {
        assert!(output.index() < self.nodes.len(), "unknown output node");
        Model {
            name: self.name,
            input_shape: self.input_shape,
            nodes: self.nodes,
            output,
        }
    }
}

impl Model {
    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Canonical input shape (batch 1).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Number of nodes (layers).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Output shape for a batch of `n`.
    pub fn output_shape(&self, n: usize) -> Shape {
        self.nodes[self.output.index()].out_shape.with_batch(n)
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.layer.param_count()).sum()
    }

    /// Bytes of parameters at f32 — also the bytes of gradients one GPU
    /// must communicate per weight update (paper §II-B: gradient data
    /// size ≈ model size).
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * 4
    }

    /// Per-kind layer counts (`"conv" -> 57`, ...).
    pub fn layer_census(&self) -> BTreeMap<&'static str, usize> {
        let mut census = BTreeMap::new();
        for n in &self.nodes {
            *census.entry(n.layer.kind()).or_insert(0) += 1;
        }
        census
    }

    /// Number of distinct named modules (inception blocks, residual
    /// blocks) tagged during construction.
    pub fn module_count(&self) -> usize {
        let mut names: Vec<&str> = self
            .nodes
            .iter()
            .filter_map(|n| n.module.as_deref())
            .collect();
        names.sort();
        names.dedup();
        names.len()
    }

    /// Forward FLOPs for one mini-batch of `batch` samples.
    pub fn forward_flops(&self, batch: usize) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.layer.forward_flops(&self.node_input_shapes(n, batch)))
            .sum()
    }

    /// Backward FLOPs for one mini-batch of `batch` samples.
    pub fn backward_flops(&self, batch: usize) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.layer.backward_flops(&self.node_input_shapes(n, batch)))
            .sum()
    }

    /// Bytes of activations (all layer outputs) for a mini-batch —
    /// training keeps these alive for the backward pass, which is the
    /// memory term that grows with batch size in Table IV.
    pub fn activation_bytes(&self, batch: usize) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.out_shape.with_batch(batch).bytes())
            .sum()
    }

    /// The kernels of one training iteration, in execution order:
    /// forward kernels first, then backward kernels in reverse layer
    /// order (as cuDNN issues them).
    pub fn kernel_profile(&self, batch: usize) -> Vec<KernelDesc> {
        let mut kernels = Vec::with_capacity(self.nodes.len() * 2);
        for n in &self.nodes {
            let shapes = self.node_input_shapes(n, batch);
            let in_bytes: u64 = shapes.iter().map(|s| s.bytes()).sum();
            let out_bytes = n.out_shape.with_batch(batch).bytes();
            kernels.push(KernelDesc {
                name: format!("fp.{}", n.name),
                stage: Stage::Forward,
                flops: n.layer.forward_flops(&shapes),
                bytes: in_bytes + out_bytes,
                tensor_cores: n.layer.uses_tensor_cores(),
            });
        }
        for n in self.nodes.iter().rev() {
            let shapes = self.node_input_shapes(n, batch);
            let in_bytes: u64 = shapes.iter().map(|s| s.bytes()).sum();
            let out_bytes = n.out_shape.with_batch(batch).bytes();
            kernels.push(KernelDesc {
                name: format!("bp.{}", n.name),
                stage: Stage::Backward,
                flops: n.layer.backward_flops(&shapes),
                bytes: 2 * (in_bytes + out_bytes),
                tensor_cores: n.layer.uses_tensor_cores(),
            });
        }
        kernels
    }

    /// Per-layer batch-1 accounting rows in forward order: the data a
    /// declarative `.workload` file records for each layer. Consistent
    /// with [`Model::kernel_profile`] by construction — the FP kernel
    /// for a layer at batch `b` has `flops = b * fp_flops` and
    /// `bytes = b * (in_bytes + out_bytes)`; the BP kernel has
    /// `flops = b * bp_flops` and `bytes = 2 * b * (in_bytes +
    /// out_bytes)`.
    pub fn layer_info(&self) -> Vec<LayerInfo> {
        self.nodes
            .iter()
            .map(|n| {
                let shapes = self.node_input_shapes(n, 1);
                LayerInfo {
                    name: n.name.clone(),
                    kind: n.layer.kind(),
                    fp_flops: n.layer.forward_flops(&shapes),
                    bp_flops: n.layer.backward_flops(&shapes),
                    in_bytes: shapes.iter().map(|s| s.bytes()).sum(),
                    out_bytes: n.out_shape.bytes(),
                    param_bytes: n.layer.param_count() * 4,
                    tensor_cores: n.layer.uses_tensor_cores(),
                }
            })
            .collect()
    }

    /// Each node's dataflow predecessors by name, in forward order.
    /// External [`Source::Input`] feeds are omitted, so a layer with an
    /// empty list reads only the model input. This is the edge set
    /// [`layer_info`](Model::layer_info) flattens away, exported as v2
    /// `dep` directives by `WorkloadSpec::from_model_dag`.
    pub fn layer_deps(&self) -> Vec<Vec<String>> {
        self.nodes
            .iter()
            .map(|n| {
                n.inputs
                    .iter()
                    .filter_map(|s| match s {
                        Source::Node(id) => Some(self.nodes[id.index()].name.clone()),
                        Source::Input => None,
                    })
                    .collect()
            })
            .collect()
    }

    /// Gradient buckets in backward-completion order (last layer
    /// first): the order in which gradients become available for
    /// communication, enabling BP/WU overlap.
    pub fn gradient_buckets(&self) -> Vec<GradientBucket> {
        self.nodes
            .iter()
            .rev()
            .filter(|n| n.layer.param_count() > 0)
            .map(|n| GradientBucket {
                name: n.name.clone(),
                bytes: n.layer.param_count() * 4,
            })
            .collect()
    }

    /// A Keras-style per-layer summary: name, kind, output shape (at
    /// batch 1) and parameter count, followed by totals.
    ///
    /// # Example
    ///
    /// ```
    /// let summary = voltascope_dnn::zoo::lenet().summary();
    /// assert!(summary.contains("conv1"));
    /// assert!(summary.contains("Total params"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "Model: {}  (input {})", self.name, self.input_shape).unwrap();
        writeln!(
            out,
            "{:<24} {:<10} {:<16} {:>12}",
            "Layer", "Kind", "Output", "Params"
        )
        .unwrap();
        writeln!(out, "{}", "-".repeat(66)).unwrap();
        for n in &self.nodes {
            writeln!(
                out,
                "{:<24} {:<10} {:<16} {:>12}",
                n.name,
                n.layer.kind(),
                n.out_shape.to_string(),
                n.layer.param_count()
            )
            .unwrap();
        }
        writeln!(out, "{}", "-".repeat(66)).unwrap();
        writeln!(out, "Total params: {}", self.param_count()).unwrap();
        writeln!(
            out,
            "Forward FLOPs (batch 1): {:.2} G",
            self.forward_flops(1) as f64 / 1e9
        )
        .unwrap();
        writeln!(
            out,
            "Activations (batch 1): {:.1} MB",
            self.activation_bytes(1) as f64 / 1e6
        )
        .unwrap();
        out
    }

    fn node_input_shapes(&self, node: &Node, batch: usize) -> Vec<Shape> {
        node.inputs
            .iter()
            .map(|s| match s {
                Source::Input => self.input_shape.with_batch(batch),
                Source::Node(id) => self.nodes[id.index()].out_shape.with_batch(batch),
            })
            .collect()
    }

    /// Initialises all parameters with deterministic He-style scaling
    /// from `seed`.
    pub fn init_params(&self, seed: u64) -> Params {
        let mut tensors = Vec::with_capacity(self.nodes.len());
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f32 / (1u64 << 53) as f32
        };
        for n in &self.nodes {
            let shapes = n.layer.param_shapes();
            let mut params = Vec::with_capacity(shapes.len());
            for (i, s) in shapes.iter().enumerate() {
                let fan_in: usize = s.dims().iter().skip(1).product::<usize>().max(1);
                let scale = (2.0 / fan_in as f32).sqrt();
                let mut t = Tensor::zeros(s.clone());
                if i % 2 == 0 && s.rank() > 1 {
                    for v in t.data_mut() {
                        *v = (next() * 2.0 - 1.0) * scale;
                    }
                } else if n.layer.kind() == "batchnorm" && i == 0 {
                    for v in t.data_mut() {
                        *v = 1.0;
                    }
                }
                params.push(t);
            }
            tensors.push(params);
        }
        Params { tensors }
    }

    /// Runs the real forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s non-batch dims differ from the model's input
    /// shape or `params` came from a different model.
    pub fn forward(&self, params: &Params, input: &Tensor) -> Activations {
        assert_eq!(
            input.shape().dims()[1..],
            self.input_shape.dims()[1..],
            "input shape mismatch"
        );
        assert_eq!(params.tensors.len(), self.nodes.len(), "foreign params");
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let ins: Vec<&Tensor> = n
                .inputs
                .iter()
                .map(|s| match s {
                    Source::Input => input,
                    Source::Node(id) => &outputs[id.index()],
                })
                .collect();
            let ps: Vec<&Tensor> = params.tensors[i].iter().collect();
            outputs.push(n.layer.forward(&ins, &ps));
        }
        Activations { outputs }
    }

    /// Runs the real backward pass given `grad_output` at the model
    /// head; returns parameter gradients for every node.
    pub fn backward(
        &self,
        params: &Params,
        input: &Tensor,
        acts: &Activations,
        grad_output: &Tensor,
    ) -> Gradients {
        let mut grad_at: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grad_at[self.output.index()] = Some(grad_output.clone());
        let mut grad_params: Vec<Vec<Tensor>> = self
            .nodes
            .iter()
            .map(|n| {
                n.layer
                    .param_shapes()
                    .into_iter()
                    .map(Tensor::zeros)
                    .collect()
            })
            .collect();

        for i in (0..self.nodes.len()).rev() {
            let Some(gout) = grad_at[i].take() else {
                continue; // node not on a path to the output
            };
            let n = &self.nodes[i];
            let ins: Vec<&Tensor> = n
                .inputs
                .iter()
                .map(|s| match s {
                    Source::Input => input,
                    Source::Node(id) => &acts.outputs[id.index()],
                })
                .collect();
            let ps: Vec<&Tensor> = params.tensors[i].iter().collect();
            let bwd = n.layer.backward(&ins, &ps, &acts.outputs[i], &gout);
            for (g, slot) in bwd.grad_params.into_iter().zip(&mut grad_params[i]) {
                *slot = g;
            }
            for (src, gin) in n.inputs.iter().zip(bwd.grad_inputs) {
                if let Source::Node(id) = src {
                    match &mut grad_at[id.index()] {
                        Some(existing) => existing.add_assign(&gin),
                        slot @ None => *slot = Some(gin),
                    }
                }
            }
        }
        Gradients {
            tensors: grad_params,
        }
    }

    /// The model output from a finished forward pass.
    pub fn output<'a>(&self, acts: &'a Activations) -> &'a Tensor {
        &acts.outputs[self.output.index()]
    }
}

/// Learnable parameters for a model (one tensor list per node).
#[derive(Debug, Clone)]
pub struct Params {
    pub(crate) tensors: Vec<Vec<Tensor>>,
}

impl Params {
    /// Iterates over all parameter tensors, flattened in node order.
    pub fn iter(&self) -> impl Iterator<Item = &Tensor> {
        self.tensors.iter().flatten()
    }

    /// Iterates mutably over all parameter tensors in node order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.tensors.iter_mut().flatten()
    }

    /// Total scalar count.
    pub fn count(&self) -> u64 {
        self.iter().map(|t| t.numel() as u64).sum()
    }
}

/// Parameter gradients, mirroring [`Params`]' structure.
#[derive(Debug, Clone)]
pub struct Gradients {
    pub(crate) tensors: Vec<Vec<Tensor>>,
}

impl Gradients {
    /// Iterates over all gradient tensors in node order.
    pub fn iter(&self) -> impl Iterator<Item = &Tensor> {
        self.tensors.iter().flatten()
    }

    /// Iterates mutably over all gradient tensors in node order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.tensors.iter_mut().flatten()
    }

    /// Elementwise accumulation of another replica's gradients.
    ///
    /// # Panics
    ///
    /// Panics if the structures differ.
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(self.tensors.len(), other.tensors.len());
        for (mine, theirs) in self.iter_mut().zip(other.iter()) {
            mine.add_assign(theirs);
        }
    }

    /// Scales every gradient by `s` (averaging across replicas).
    pub fn scale(&mut self, s: f32) {
        for g in self.iter_mut() {
            g.scale(s);
        }
    }
}

/// All layer outputs from one forward pass.
#[derive(Debug, Clone)]
pub struct Activations {
    outputs: Vec<Tensor>,
}

impl Activations {
    /// Output of node `id`.
    pub fn of(&self, id: NodeId) -> &Tensor {
        &self.outputs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Add, Conv2d, Dense, Relu};

    fn tiny() -> Model {
        let mut b = ModelBuilder::new("tiny", Shape::new([1, 1, 4, 4]));
        let c = b.add("conv1", Conv2d::new(1, 2, 3, 1, 1), &[Source::Input]);
        let r = b.add("relu1", Relu, &[Source::Node(c)]);
        let f = b.add("fc", Dense::new(2 * 4 * 4, 3), &[Source::Node(r)]);
        b.finish(f)
    }

    #[test]
    fn shape_inference_runs_at_build_time() {
        let m = tiny();
        assert_eq!(m.output_shape(5).dims(), &[5, 3]);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn param_accounting() {
        let m = tiny();
        let conv = 2 * 9 + 2; // 2 filters x (1 in-ch x 3x3) + biases
        let fc = 3 * 32 + 3;
        assert_eq!(m.param_count(), (conv + fc) as u64);
        assert_eq!(m.param_bytes(), m.param_count() * 4);
        let p = m.init_params(1);
        assert_eq!(p.count(), m.param_count());
    }

    #[test]
    fn census_counts_kinds() {
        let m = tiny();
        let c = m.layer_census();
        assert_eq!(c["conv"], 1);
        assert_eq!(c["relu"], 1);
        assert_eq!(c["fc"], 1);
    }

    #[test]
    fn flops_scale_with_batch() {
        let m = tiny();
        assert_eq!(m.forward_flops(4), 4 * m.forward_flops(1));
        assert!(m.backward_flops(1) > m.forward_flops(1));
    }

    #[test]
    fn activation_bytes_scale_with_batch() {
        let m = tiny();
        assert_eq!(m.activation_bytes(8), 8 * m.activation_bytes(1));
    }

    #[test]
    fn kernel_profile_orders_fp_then_reversed_bp() {
        let m = tiny();
        let ks = m.kernel_profile(2);
        assert_eq!(ks.len(), 6);
        assert_eq!(ks[0].name, "fp.conv1");
        assert_eq!(ks[2].name, "fp.fc");
        assert_eq!(ks[3].name, "bp.fc");
        assert_eq!(ks[5].name, "bp.conv1");
        assert!(ks.iter().take(3).all(|k| k.stage == Stage::Forward));
        assert!(ks.iter().skip(3).all(|k| k.stage == Stage::Backward));
    }

    #[test]
    fn layer_info_is_consistent_with_kernel_profile() {
        let m = tiny();
        let info = m.layer_info();
        assert_eq!(info.len(), m.node_count());
        for batch in [1usize, 2, 16] {
            let ks = m.kernel_profile(batch);
            let b = batch as u64;
            for (i, li) in info.iter().enumerate() {
                let fp = &ks[i];
                let bp = &ks[2 * info.len() - 1 - i];
                assert_eq!(fp.name, format!("fp.{}", li.name));
                assert_eq!(bp.name, format!("bp.{}", li.name));
                assert_eq!(fp.flops, b * li.fp_flops);
                assert_eq!(bp.flops, b * li.bp_flops);
                assert_eq!(fp.bytes, b * (li.in_bytes + li.out_bytes));
                assert_eq!(bp.bytes, 2 * b * (li.in_bytes + li.out_bytes));
                assert_eq!(fp.tensor_cores, li.tensor_cores);
            }
        }
        assert_eq!(
            info.iter().map(|li| li.param_bytes).sum::<u64>(),
            m.param_bytes()
        );
    }

    #[test]
    fn gradient_buckets_come_last_layer_first() {
        let m = tiny();
        let buckets = m.gradient_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].name, "fc");
        assert_eq!(buckets[1].name, "conv1");
        assert_eq!(
            buckets.iter().map(|b| b.bytes).sum::<u64>(),
            m.param_bytes()
        );
    }

    #[test]
    fn forward_and_backward_execute() {
        let m = tiny();
        let p = m.init_params(7);
        let x = Tensor::full(Shape::new([2, 1, 4, 4]), 0.5);
        let acts = m.forward(&p, &x);
        let out = m.output(&acts);
        assert_eq!(out.shape().dims(), &[2, 3]);
        let g = Tensor::full(Shape::new([2, 3]), 1.0);
        let grads = m.backward(&p, &x, &acts, &g);
        // Every parameterised node received some gradient signal.
        let total: f32 = grads.iter().map(|t| t.max_abs()).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn residual_fanout_accumulates_gradients() {
        // x -> conv -> relu -> add(relu, conv) ; conv output feeds both
        // relu and add, so its gradient must be a sum of two paths.
        let mut b = ModelBuilder::new("res", Shape::new([1, 1, 3, 3]));
        let c = b.add("conv", Conv2d::new(1, 1, 1, 1, 0), &[Source::Input]);
        let r = b.add("relu", Relu, &[Source::Node(c)]);
        let a = b.add("add", Add, &[Source::Node(r), Source::Node(c)]);
        let m = b.finish(a);
        let mut p = m.init_params(3);
        // Force conv weight positive so relu passes gradient through.
        p.tensors[0][0].data_mut()[0] = 1.0;
        let x = Tensor::full(Shape::new([1, 1, 3, 3]), 2.0);
        let acts = m.forward(&p, &x);
        let g = Tensor::full(Shape::new([1, 1, 3, 3]), 1.0);
        let grads = m.backward(&p, &x, &acts, &g);
        // dL/dw for the 1x1 conv: both paths contribute, so gradient is
        // sum over 9 positions * x * 2 paths = 36.
        assert_eq!(grads.tensors[0][0].data()[0], 36.0);
    }

    #[test]
    fn gradients_accumulate_and_scale() {
        let m = tiny();
        let p = m.init_params(1);
        let x = Tensor::full(Shape::new([1, 1, 4, 4]), 1.0);
        let acts = m.forward(&p, &x);
        let g = Tensor::full(Shape::new([1, 3]), 1.0);
        let g1 = m.backward(&p, &x, &acts, &g);
        let mut g2 = g1.clone();
        g2.accumulate(&g1);
        g2.scale(0.5);
        for (a, b) in g1.iter().zip(g2.iter()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn modules_are_counted() {
        let mut b = ModelBuilder::new("mods", Shape::new([1, 1, 4, 4]));
        b.begin_module("m1");
        let c = b.add("c1", Conv2d::new(1, 1, 1, 1, 0), &[Source::Input]);
        b.end_module();
        b.begin_module("m2");
        let c2 = b.add("c2", Conv2d::new(1, 1, 1, 1, 0), &[Source::Node(c)]);
        b.end_module();
        let m = b.finish(c2);
        assert_eq!(m.module_count(), 2);
    }

    #[test]
    #[should_panic(expected = "batch 1")]
    fn builder_rejects_batched_canonical_shape() {
        let _ = ModelBuilder::new("bad", Shape::new([2, 1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn forward_rejects_wrong_input() {
        let m = tiny();
        let p = m.init_params(1);
        let x = Tensor::zeros(Shape::new([1, 2, 4, 4]));
        let _ = m.forward(&p, &x);
    }
}
