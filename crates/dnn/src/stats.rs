//! Network census for the paper's Table I.

use crate::graph::Model;

/// The Table I row for one network: layer mix and weight count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Network name.
    pub name: String,
    /// Total graph nodes (layers including activations/merges).
    pub layers: usize,
    /// Convolution layers.
    pub conv_layers: usize,
    /// Inception modules.
    pub inception_modules: usize,
    /// Fully-connected layers.
    pub fc_layers: usize,
    /// Learnable parameter count.
    pub weights: u64,
}

impl NetworkStats {
    /// Computes the census of `model`.
    pub fn of(model: &Model) -> Self {
        let census = model.layer_census();
        NetworkStats {
            name: model.name().to_string(),
            layers: model.node_count(),
            conv_layers: census.get("conv").copied().unwrap_or(0),
            inception_modules: model.module_count(),
            fc_layers: census.get("fc").copied().unwrap_or(0),
            weights: model.param_count(),
        }
    }

    /// Human-readable weight count like `"61.0M"` or `"62K"`.
    pub fn weights_human(&self) -> String {
        if self.weights >= 1_000_000 {
            format!("{:.1}M", self.weights as f64 / 1e6)
        } else if self.weights >= 1_000 {
            format!("{}K", self.weights / 1_000)
        } else {
            self.weights.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ModelBuilder, Source};
    use crate::layer::{Conv2d, Dense};
    use crate::tensor::Shape;

    #[test]
    fn census_of_small_model() {
        let mut b = ModelBuilder::new("t", Shape::new([1, 1, 8, 8]));
        let c = b.add("c", Conv2d::new(1, 2, 3, 1, 1), &[Source::Input]);
        let f = b.add("f", Dense::new(2 * 64, 4), &[Source::Node(c)]);
        let m = b.finish(f);
        let s = NetworkStats::of(&m);
        assert_eq!(s.layers, 2);
        assert_eq!(s.conv_layers, 1);
        assert_eq!(s.fc_layers, 1);
        assert_eq!(s.inception_modules, 0);
        assert_eq!(s.weights, m.param_count());
    }

    #[test]
    fn weight_formatting() {
        let mut s = NetworkStats {
            name: "x".into(),
            layers: 0,
            conv_layers: 0,
            inception_modules: 0,
            fc_layers: 0,
            weights: 61_100_000,
        };
        assert_eq!(s.weights_human(), "61.1M");
        s.weights = 61_700;
        assert_eq!(s.weights_human(), "61K");
        s.weights = 950;
        assert_eq!(s.weights_human(), "950");
    }
}
