//! Dense `f32` tensors with NCHW conventions.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A tensor shape: the extent of each dimension.
///
/// # Example
///
/// ```
/// use voltascope_dnn::Shape;
///
/// let s = Shape::new([2, 3, 4, 4]); // NCHW: batch 2, 3 channels, 4x4
/// assert_eq!(s.numel(), 96);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in {dims:?}"
        );
        Shape(dims)
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size in bytes at `f32` precision.
    pub fn bytes(&self) -> u64 {
        self.numel() as u64 * 4
    }

    /// This shape with the batch dimension (dim 0) replaced by `n`.
    ///
    /// # Panics
    ///
    /// Panics on rank-0 shapes.
    pub fn with_batch(&self, n: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[0] = n;
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// A dense row-major `f32` tensor.
///
/// 4-D tensors follow the NCHW layout used by cuDNN: index
/// `(n, c, h, w)` maps to `((n * C + c) * H + h) * W + w`.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::new([1, 2, 2, 2]));
/// *t.at4_mut(0, 1, 0, 1) = 3.5;
/// assert_eq!(t.at4(0, 1, 0, 1), 3.5);
/// assert_eq!(t.data().iter().filter(|&&v| v != 0.0).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let numel = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let numel = shape.numel();
        Tensor {
            shape,
            data: vec![value; numel],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} does not match {} elements",
            data.len()
        );
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Flat read-only view of the elements.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the elements.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Reinterprets the tensor under a new shape with the same element
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(self, shape: Shape) -> Tensor {
        assert_eq!(self.numel(), shape.numel(), "reshape changes element count");
        Tensor {
            shape,
            data: self.data,
        }
    }

    #[inline]
    fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.rank(), 4);
        let (cc, hh, ww) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        debug_assert!(n < self.shape.dim(0) && c < cc && h < hh && w < ww);
        ((n * cc + c) * hh + h) * ww + w
    }

    /// Element at NCHW position.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Mutable element at NCHW position.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.idx4(n, c, h, w);
        &mut self.data[i]
    }

    /// Element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        self.data[r * self.shape.dim(1) + c]
    }

    /// Mutable element of a 2-D tensor at `(r, c)`.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        let i = r * self.shape.dim(1) + c;
        &mut self.data[i]
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Matrix product of two 2-D tensors: `(m x k) * (k x n)`.
    ///
    /// # Panics
    ///
    /// Panics unless both are rank 2 with matching inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (rhs.shape.dim(0), rhs.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(Shape::new([m, n]));
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[p * n..(p + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest absolute element (0.0 for any empty view).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shape_accessors() {
        let s = Shape::new([2, 3, 5]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 30);
        assert_eq!(s.bytes(), 120);
        assert_eq!(s.with_batch(7).dims(), &[7, 3, 5]);
        assert_eq!(s.to_string(), "[2x3x5]");
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_dim_rejected() {
        let _ = Shape::new([2, 0, 3]);
    }

    #[test]
    fn nchw_indexing_is_row_major() {
        let mut t = Tensor::zeros(Shape::new([2, 3, 4, 5]));
        *t.at4_mut(1, 2, 3, 4) = 9.0;
        // ((1*3+2)*4+3)*5+4 = 119
        assert_eq!(t.data()[119], 9.0);
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(Shape::new([2, 3]), vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(Shape::new([3, 2]), vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(Shape::new([2, 3]));
        let b = Tensor::zeros(Shape::new([4, 2]));
        let _ = a.matmul(&b);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::new([2, 2]), vec![1., 2., 3., 4.]);
        let r = t.clone().reshape(Shape::new([4]));
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn reshape_rejects_size_change() {
        let t = Tensor::zeros(Shape::new([2, 2]));
        let _ = t.reshape(Shape::new([5]));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::full(Shape::new([3]), 1.0);
        let b = Tensor::full(Shape::new([3]), 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 1.5, 1.5]);
        assert_eq!(a.sum(), 4.5);
    }

    #[test]
    fn max_abs_handles_negatives() {
        let t = Tensor::from_vec(Shape::new([3]), vec![-5.0, 2.0, 4.0]);
        assert_eq!(t.max_abs(), 5.0);
    }

    proptest! {
        /// (A * B) * C == A * (B * C) within float tolerance.
        #[test]
        fn matmul_associativity(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 4),
        ) {
            let ta = Tensor::from_vec(Shape::new([2, 3]), a);
            let tb = Tensor::from_vec(Shape::new([3, 2]), b);
            let tc = Tensor::from_vec(Shape::new([2, 2]), c);
            let left = ta.matmul(&tb).matmul(&tc);
            let right = ta.matmul(&tb.matmul(&tc));
            for (l, r) in left.data().iter().zip(right.data()) {
                prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
            }
        }

        /// Matmul with the identity is a no-op.
        #[test]
        fn matmul_identity(a in proptest::collection::vec(-10.0f32..10.0, 9)) {
            let ta = Tensor::from_vec(Shape::new([3, 3]), a);
            let mut id = Tensor::zeros(Shape::new([3, 3]));
            for i in 0..3 {
                *id.at2_mut(i, i) = 1.0;
            }
            let out = ta.matmul(&id);
            prop_assert_eq!(out.data(), ta.data());
        }
    }
}
