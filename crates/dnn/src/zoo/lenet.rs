//! LeNet-5.

use crate::graph::{Model, ModelBuilder, Source};
use crate::layer::{Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

/// Classic LeNet-5 for 28x28 grey-scale inputs: two 5x5 convolutions
/// and three fully-connected layers, ~61.7K parameters.
///
/// The paper uses LeNet as its smallest workload, demonstrating that a
/// network with too little computation cannot hide multi-GPU
/// communication latency (§V-A).
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo::lenet;
///
/// let model = lenet();
/// assert_eq!(model.output_shape(1).dims(), &[1, 10]);
/// ```
pub fn lenet() -> Model {
    let mut b = ModelBuilder::new("LeNet", Shape::new([1, 1, 28, 28]));
    // conv1: 1 -> 6 channels, 5x5, same-pad to keep 28x28.
    let c1 = b.add("conv1", Conv2d::new(1, 6, 5, 1, 2), &[Source::Input]);
    let r1 = b.add("relu1", Relu, &[Source::Node(c1)]);
    let p1 = b.add("pool1", MaxPool2d::new(2, 2, 0), &[Source::Node(r1)]);
    // conv2: 6 -> 16 channels, 5x5, valid: 14 -> 10.
    let c2 = b.add("conv2", Conv2d::new(6, 16, 5, 1, 0), &[Source::Node(p1)]);
    let r2 = b.add("relu2", Relu, &[Source::Node(c2)]);
    let p2 = b.add("pool2", MaxPool2d::new(2, 2, 0), &[Source::Node(r2)]);
    // 16 x 5 x 5 = 400 features.
    let f1 = b.add("fc1", Dense::new(400, 120), &[Source::Node(p2)]);
    let fr1 = b.add("relu3", Relu, &[Source::Node(f1)]);
    let f2 = b.add("fc2", Dense::new(120, 84), &[Source::Node(fr1)]);
    let fr2 = b.add("relu4", Relu, &[Source::Node(f2)]);
    let f3 = b.add("fc3", Dense::new(84, 10), &[Source::Node(fr2)]);
    b.finish(f3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn classic_parameter_count() {
        let m = lenet();
        // conv1: 6*(1*25)+6=156; conv2: 16*(6*25)+16=2416;
        // fc1: 120*400+120=48120; fc2: 84*120+84=10164; fc3: 10*84+10=850.
        assert_eq!(m.param_count(), 156 + 2416 + 48_120 + 10_164 + 850);
    }

    #[test]
    fn table1_census() {
        let s = NetworkStats::of(&lenet());
        assert_eq!(s.conv_layers, 2);
        assert_eq!(s.fc_layers, 3);
        assert_eq!(s.inception_modules, 0);
        assert_eq!(s.weights_human(), "61K");
    }

    #[test]
    fn forward_executes() {
        use crate::tensor::{Shape, Tensor};
        let m = lenet();
        let p = m.init_params(1);
        let x = Tensor::full(Shape::new([2, 1, 28, 28]), 0.1);
        let acts = m.forward(&p, &x);
        assert_eq!(m.output(&acts).shape().dims(), &[2, 10]);
    }
}
