//! The five paper workloads (§IV-C, Table I), built from scratch.
//!
//! | Network      | Input     | Conv layers | Inception modules | FC layers | Weights |
//! |--------------|-----------|-------------|-------------------|-----------|---------|
//! | LeNet        | 1x28x28   | 2           | 0                 | 3         | ~61.7K  |
//! | AlexNet      | 3x224x224 | 5           | 0                 | 3         | ~61.1M  |
//! | GoogLeNet    | 3x224x224 | 57          | 9                 | 1         | ~7.0M   |
//! | Inception-v3 | 3x299x299 | 94          | 11                | 1         | ~23.9M  |
//! | ResNet-50    | 3x224x224 | 53          | 16 residual blocks| 1         | ~25.6M  |
//!
//! Beyond the paper's roster, [`vgg16`] ships as an extension workload
//! (138M parameters — the communication-heavy extreme).
//!
//! Fidelity notes: dropout and LRN are omitted (identity at profiling
//! granularity); auxiliary classifier heads are omitted (standard in
//! framework re-implementations); convolutions keep their bias terms
//! even where the original uses bias-free conv + BN (a <0.2% parameter
//! difference). The paper trains LeNet on ImageNet images resized to
//! its native 28x28 input.

mod alexnet;
mod googlenet;
mod inception_v3;
mod lenet;
mod resnet;
mod vgg;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use inception_v3::inception_v3;
pub use lenet::lenet;
pub use resnet::resnet50;
pub use vgg::vgg16;

use crate::graph::Model;

/// Identifies one of the five paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Workload {
    /// LeNet-5 (2 conv layers; the smallest workload).
    LeNet,
    /// AlexNet (5 conv layers, 61M weights; communication-heavy).
    AlexNet,
    /// GoogLeNet / Inception-v1 (9 inception modules).
    GoogLeNet,
    /// Inception-v3 (11 inception modules, 299x299 input).
    InceptionV3,
    /// ResNet-50 (16 residual blocks).
    ResNet,
}

impl Workload {
    /// All five workloads, in the paper's presentation order.
    pub const ALL: [Workload; 5] = [
        Workload::LeNet,
        Workload::AlexNet,
        Workload::GoogLeNet,
        Workload::ResNet,
        Workload::InceptionV3,
    ];

    /// The workload's display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            Workload::LeNet => "LeNet",
            Workload::AlexNet => "AlexNet",
            Workload::GoogLeNet => "GoogLeNet",
            Workload::InceptionV3 => "Inception-v3",
            Workload::ResNet => "ResNet",
        }
    }

    /// Parses a workload from a case-insensitive name or common alias.
    ///
    /// # Example
    ///
    /// ```
    /// use voltascope_dnn::zoo::Workload;
    ///
    /// assert_eq!(Workload::from_name("resnet"), Some(Workload::ResNet));
    /// assert_eq!(Workload::from_name("Inception-v3"), Some(Workload::InceptionV3));
    /// assert_eq!(Workload::from_name("vgg"), None); // extension, not a paper workload
    /// ```
    pub fn from_name(name: &str) -> Option<Workload> {
        match name.to_ascii_lowercase().as_str() {
            "lenet" | "lenet-5" | "lenet5" => Some(Workload::LeNet),
            "alexnet" => Some(Workload::AlexNet),
            "googlenet" | "inception-v1" | "inceptionv1" => Some(Workload::GoogLeNet),
            "inception" | "inception-v3" | "inceptionv3" | "inception_v3" => {
                Some(Workload::InceptionV3)
            }
            "resnet" | "resnet-50" | "resnet50" => Some(Workload::ResNet),
            _ => None,
        }
    }

    /// Builds the workload's model.
    pub fn build(self) -> Model {
        match self {
            Workload::LeNet => lenet(),
            Workload::AlexNet => alexnet(),
            Workload::GoogLeNet => googlenet(),
            Workload::InceptionV3 => inception_v3(),
            Workload::ResNet => resnet50(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn workload_roster_matches_paper() {
        assert_eq!(Workload::ALL.len(), 5);
        assert_eq!(Workload::InceptionV3.name(), "Inception-v3");
        assert_eq!(Workload::InceptionV3.to_string(), "Inception-v3");
    }

    #[test]
    fn table1_weight_scale_ordering() {
        // Paper Table I: LeNet and AlexNet have the most weights per
        // layer; AlexNet dominates in absolute weights; GoogLeNet needs
        // the fewest among the ImageNet-scale nets.
        let lenet = NetworkStats::of(&lenet());
        let alexnet = NetworkStats::of(&alexnet());
        let googlenet = NetworkStats::of(&googlenet());
        let resnet = NetworkStats::of(&resnet50());
        let inception = NetworkStats::of(&inception_v3());
        assert!(alexnet.weights > resnet.weights);
        assert!(resnet.weights > inception.weights * 9 / 10);
        assert!(inception.weights > googlenet.weights);
        assert!(googlenet.weights > lenet.weights);
    }
}
