//! ResNet-50.

use crate::graph::{Model, ModelBuilder, NodeId, Source};
use crate::layer::{Add, AvgPool2d, BatchNorm2d, Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

/// `conv -> batchnorm`, optionally followed by relu.
fn conv_bn(b: &mut ModelBuilder, name: &str, conv: Conv2d, input: Source, relu: bool) -> NodeId {
    let out_ch = conv.out_channels();
    let c = b.add(name, conv, &[input]);
    let n = b.add(
        format!("{name}.bn"),
        BatchNorm2d::new(out_ch),
        &[Source::Node(c)],
    );
    if relu {
        b.add(format!("{name}.relu"), Relu, &[Source::Node(n)])
    } else {
        n
    }
}

/// A bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, with an
/// identity or 1x1-projection shortcut.
fn bottleneck(
    b: &mut ModelBuilder,
    name: &str,
    input: NodeId,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let c1 = conv_bn(
        b,
        &format!("{name}.c1"),
        Conv2d::new(in_ch, mid_ch, 1, 1, 0),
        src,
        true,
    );
    let c2 = conv_bn(
        b,
        &format!("{name}.c2"),
        Conv2d::new(mid_ch, mid_ch, 3, stride, 1),
        Source::Node(c1),
        true,
    );
    let c3 = conv_bn(
        b,
        &format!("{name}.c3"),
        Conv2d::new(mid_ch, out_ch, 1, 1, 0),
        Source::Node(c2),
        false,
    );
    let shortcut = if in_ch != out_ch || stride != 1 {
        conv_bn(
            b,
            &format!("{name}.down"),
            Conv2d::new(in_ch, out_ch, 1, stride, 0),
            src,
            false,
        )
    } else {
        input
    };
    let add = b.add(
        format!("{name}.add"),
        Add,
        &[Source::Node(c3), Source::Node(shortcut)],
    );
    let out = b.add(format!("{name}.relu"), Relu, &[Source::Node(add)]);
    b.end_module();
    out
}

/// ResNet-50 for 3x224x224 inputs: a 7x7 stem and sixteen bottleneck
/// residual blocks in four stages, ~25.6M parameters — the paper's
/// "very deep neural network with residual blocks" (§IV-C).
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo::resnet50;
///
/// let model = resnet50();
/// assert_eq!(model.output_shape(1).dims(), &[1, 1000]);
/// ```
pub fn resnet50() -> Model {
    let mut b = ModelBuilder::new("ResNet", Shape::new([1, 3, 224, 224]));
    let stem = conv_bn(
        &mut b,
        "conv1",
        Conv2d::new(3, 64, 7, 2, 3),
        Source::Input,
        true,
    );
    let pool = b.add("pool1", MaxPool2d::new(3, 2, 1), &[Source::Node(stem)]);

    let stages: [(usize, usize, usize, usize); 4] = [
        // (blocks, mid, out, first-stride)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    let mut node = pool;
    let mut in_ch = 64;
    for (stage_idx, &(blocks, mid, out, stride)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let s = if block == 0 { stride } else { 1 };
            node = bottleneck(
                &mut b,
                &format!("layer{}.{}", stage_idx + 1, block),
                node,
                in_ch,
                mid,
                out,
                s,
            );
            in_ch = out;
        }
    }
    let gap = b.add("avgpool", AvgPool2d::global(7), &[Source::Node(node)]);
    let fc = b.add("fc", Dense::new(2048, 1000), &[Source::Node(gap)]);
    b.finish(fc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn parameter_count_near_published() {
        // torchvision resnet50: 25,557,032 (bias-free convs); ours adds
        // conv biases, so allow a small margin above that.
        let n = resnet50().param_count();
        assert!(
            (25_400_000..26_000_000).contains(&n),
            "ResNet-50 params {n}"
        );
    }

    #[test]
    fn table1_census() {
        let s = NetworkStats::of(&resnet50());
        // Stem + 16 blocks x 3 convs + 4 downsample projections = 53.
        assert_eq!(s.conv_layers, 53);
        assert_eq!(s.fc_layers, 1);
        assert_eq!(s.inception_modules, 16); // residual blocks
    }

    #[test]
    fn stage_pipeline_reaches_7x7x2048() {
        // fc expects 2048 features after global pooling; builder-time
        // shape inference passing proves the 224 -> 7 pipeline.
        let m = resnet50();
        assert_eq!(m.output_shape(4).dims(), &[4, 1000]);
    }

    #[test]
    fn fewest_weights_per_conv_among_big_nets() {
        // §V-C observes ResNet has many layers with few weights each,
        // hurting WU-stage NVLink utilisation. Verify weights-per-
        // weighted-layer is far below AlexNet's.
        let r = resnet50();
        let a = crate::zoo::alexnet();
        let r_per = r.param_count() / r.gradient_buckets().len() as u64;
        let a_per = a.param_count() / a.gradient_buckets().len() as u64;
        assert!(a_per > 10 * r_per);
    }
}
