//! GoogLeNet (Inception v1).

use crate::graph::{Model, ModelBuilder, NodeId, Source};
use crate::layer::{AvgPool2d, Concat, Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

/// Adds `conv + relu` and returns the relu node.
fn conv_relu(b: &mut ModelBuilder, name: &str, conv: Conv2d, input: Source) -> NodeId {
    let c = b.add(name, conv, &[input]);
    b.add(format!("{name}.relu"), Relu, &[Source::Node(c)])
}

/// One inception module: four parallel branches (1x1, 1x1->3x3,
/// 1x1->5x5, maxpool->1x1) concatenated on the channel axis.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut ModelBuilder,
    name: &str,
    input: NodeId,
    in_ch: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pool_proj: usize,
) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let b1 = conv_relu(
        b,
        &format!("{name}.1x1"),
        Conv2d::new(in_ch, c1, 1, 1, 0),
        src,
    );
    let b3r = conv_relu(
        b,
        &format!("{name}.3x3r"),
        Conv2d::new(in_ch, c3r, 1, 1, 0),
        src,
    );
    let b3 = conv_relu(
        b,
        &format!("{name}.3x3"),
        Conv2d::new(c3r, c3, 3, 1, 1),
        Source::Node(b3r),
    );
    let b5r = conv_relu(
        b,
        &format!("{name}.5x5r"),
        Conv2d::new(in_ch, c5r, 1, 1, 0),
        src,
    );
    let b5 = conv_relu(
        b,
        &format!("{name}.5x5"),
        Conv2d::new(c5r, c5, 5, 1, 2),
        Source::Node(b5r),
    );
    let pool = b.add(format!("{name}.pool"), MaxPool2d::new(3, 1, 1), &[src]);
    let bp = conv_relu(
        b,
        &format!("{name}.poolproj"),
        Conv2d::new(in_ch, pool_proj, 1, 1, 0),
        Source::Node(pool),
    );
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[
            Source::Node(b1),
            Source::Node(b3),
            Source::Node(b5),
            Source::Node(bp),
        ],
    );
    b.end_module();
    cat
}

/// GoogLeNet (Inception v1) for 3x224x224 inputs: a convolutional stem
/// followed by nine inception modules and a single small classifier FC,
/// ~7.0M parameters — the paper's example of inception layers slashing
/// the parameter count relative to AlexNet (§IV-C).
///
/// # Example
///
/// ```
/// use voltascope_dnn::{zoo::googlenet, NetworkStats};
///
/// let stats = NetworkStats::of(&googlenet());
/// assert_eq!(stats.inception_modules, 9);
/// assert_eq!(stats.fc_layers, 1);
/// ```
pub fn googlenet() -> Model {
    let mut b = ModelBuilder::new("GoogLeNet", Shape::new([1, 3, 224, 224]));
    let c1 = conv_relu(&mut b, "conv1", Conv2d::new(3, 64, 7, 2, 3), Source::Input);
    let p1 = b.add("pool1", MaxPool2d::new(3, 2, 1), &[Source::Node(c1)]);
    let c2 = conv_relu(
        &mut b,
        "conv2",
        Conv2d::new(64, 64, 1, 1, 0),
        Source::Node(p1),
    );
    let c3 = conv_relu(
        &mut b,
        "conv3",
        Conv2d::new(64, 192, 3, 1, 1),
        Source::Node(c2),
    );
    let p2 = b.add("pool2", MaxPool2d::new(3, 2, 1), &[Source::Node(c3)]);

    let i3a = inception(&mut b, "inc3a", p2, 192, 64, 96, 128, 16, 32, 32); // 256
    let i3b = inception(&mut b, "inc3b", i3a, 256, 128, 128, 192, 32, 96, 64); // 480
    let p3 = b.add("pool3", MaxPool2d::new(3, 2, 1), &[Source::Node(i3b)]);

    let i4a = inception(&mut b, "inc4a", p3, 480, 192, 96, 208, 16, 48, 64); // 512
    let i4b = inception(&mut b, "inc4b", i4a, 512, 160, 112, 224, 24, 64, 64); // 512
    let i4c = inception(&mut b, "inc4c", i4b, 512, 128, 128, 256, 24, 64, 64); // 512
    let i4d = inception(&mut b, "inc4d", i4c, 512, 112, 144, 288, 32, 64, 64); // 528
    let i4e = inception(&mut b, "inc4e", i4d, 528, 256, 160, 320, 32, 128, 128); // 832
    let p4 = b.add("pool4", MaxPool2d::new(3, 2, 1), &[Source::Node(i4e)]);

    let i5a = inception(&mut b, "inc5a", p4, 832, 256, 160, 320, 32, 128, 128); // 832
    let i5b = inception(&mut b, "inc5b", i5a, 832, 384, 192, 384, 48, 128, 128); // 1024
    let gap = b.add("avgpool", AvgPool2d::global(7), &[Source::Node(i5b)]);
    let fc = b.add("fc", Dense::new(1024, 1000), &[Source::Node(gap)]);
    b.finish(fc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn parameter_count_near_published() {
        // GoogLeNet v1 without aux heads: ~6.6M (torchvision: 6,624,904).
        let n = googlenet().param_count();
        assert!((6_500_000..7_200_000).contains(&n), "GoogLeNet params {n}");
    }

    #[test]
    fn table1_census() {
        let s = NetworkStats::of(&googlenet());
        assert_eq!(s.inception_modules, 9);
        assert_eq!(s.fc_layers, 1);
        // Stem (3) + 9 modules x 6 convs = 57.
        assert_eq!(s.conv_layers, 57);
    }

    #[test]
    fn head_shapes() {
        let m = googlenet();
        assert_eq!(m.output_shape(2).dims(), &[2, 1000]);
    }

    #[test]
    fn channel_arithmetic_of_all_modules_holds() {
        // Shape inference at build time validates every concat; this
        // test exists to fail loudly if the module configs drift.
        let m = googlenet();
        assert!(m.node_count() > 100);
    }
}
