//! VGG-16 — an *extension* workload beyond the paper's five.

use crate::graph::{Model, ModelBuilder, NodeId, Source};
use crate::layer::{Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

fn block(
    b: &mut ModelBuilder,
    name: &str,
    input: Source,
    in_ch: usize,
    out_ch: usize,
    convs: usize,
) -> NodeId {
    let mut src = input;
    let mut ch = in_ch;
    let mut last = None;
    for i in 0..convs {
        let c = b.add(
            format!("{name}.conv{}", i + 1),
            Conv2d::new(ch, out_ch, 3, 1, 1),
            &[src],
        );
        let r = b.add(format!("{name}.relu{}", i + 1), Relu, &[Source::Node(c)]);
        src = Source::Node(r);
        ch = out_ch;
        last = Some(r);
    }
    b.add(
        format!("{name}.pool"),
        MaxPool2d::new(2, 2, 0),
        &[Source::Node(last.expect("block has convs"))],
    )
}

/// VGG-16 for 3x224x224 inputs: 13 convolutions, 3 FC layers, ~138M
/// parameters — an extension workload sitting even further along the
/// communication-heavy axis than AlexNet (2.3x its weights), useful for
/// stressing the WU-stage models beyond the paper's roster.
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo::vgg16;
///
/// let model = vgg16();
/// assert_eq!(model.output_shape(1).dims(), &[1, 1000]);
/// ```
pub fn vgg16() -> Model {
    let mut b = ModelBuilder::new("VGG-16", Shape::new([1, 3, 224, 224]));
    let b1 = block(&mut b, "block1", Source::Input, 3, 64, 2); // 112
    let b2 = block(&mut b, "block2", Source::Node(b1), 64, 128, 2); // 56
    let b3 = block(&mut b, "block3", Source::Node(b2), 128, 256, 3); // 28
    let b4 = block(&mut b, "block4", Source::Node(b3), 256, 512, 3); // 14
    let b5 = block(&mut b, "block5", Source::Node(b4), 512, 512, 3); // 7
    let f1 = b.add("fc6", Dense::new(512 * 7 * 7, 4096), &[Source::Node(b5)]);
    let r1 = b.add("relu6", Relu, &[Source::Node(f1)]);
    let f2 = b.add("fc7", Dense::new(4096, 4096), &[Source::Node(r1)]);
    let r2 = b.add("relu7", Relu, &[Source::Node(f2)]);
    let f3 = b.add("fc8", Dense::new(4096, 1000), &[Source::Node(r2)]);
    b.finish(f3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn torchvision_parameter_count() {
        // torchvision vgg16: 138,357,544 parameters.
        assert_eq!(vgg16().param_count(), 138_357_544);
    }

    #[test]
    fn census() {
        let s = NetworkStats::of(&vgg16());
        assert_eq!(s.conv_layers, 13);
        assert_eq!(s.fc_layers, 3);
    }

    #[test]
    fn heavier_than_alexnet() {
        assert!(vgg16().param_count() > 2 * crate::zoo::alexnet().param_count());
    }
}
