//! Inception-v3.

use crate::graph::{Model, ModelBuilder, NodeId, Source};
use crate::layer::{AvgPool2d, BatchNorm2d, Concat, Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

/// `conv -> batchnorm -> relu`, the basic unit of Inception-v3.
fn basic(b: &mut ModelBuilder, name: &str, conv: Conv2d, input: Source) -> NodeId {
    let out_ch = conv.out_channels();
    let c = b.add(name, conv, &[input]);
    let n = b.add(
        format!("{name}.bn"),
        BatchNorm2d::new(out_ch),
        &[Source::Node(c)],
    );
    b.add(format!("{name}.relu"), Relu, &[Source::Node(n)])
}

/// 35x35 module: 1x1 / 5x5 / double-3x3 / pool branches.
fn inception_a(
    b: &mut ModelBuilder,
    name: &str,
    input: NodeId,
    in_ch: usize,
    pool: usize,
) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let b1 = basic(
        b,
        &format!("{name}.1x1"),
        Conv2d::new(in_ch, 64, 1, 1, 0),
        src,
    );
    let b5r = basic(
        b,
        &format!("{name}.5x5r"),
        Conv2d::new(in_ch, 48, 1, 1, 0),
        src,
    );
    let b5 = basic(
        b,
        &format!("{name}.5x5"),
        Conv2d::new(48, 64, 5, 1, 2),
        Source::Node(b5r),
    );
    let d1 = basic(
        b,
        &format!("{name}.d3x3r"),
        Conv2d::new(in_ch, 64, 1, 1, 0),
        src,
    );
    let d2 = basic(
        b,
        &format!("{name}.d3x3a"),
        Conv2d::new(64, 96, 3, 1, 1),
        Source::Node(d1),
    );
    let d3 = basic(
        b,
        &format!("{name}.d3x3b"),
        Conv2d::new(96, 96, 3, 1, 1),
        Source::Node(d2),
    );
    let ap = b.add(format!("{name}.pool"), AvgPool2d::new(3, 1, 1), &[src]);
    let bp = basic(
        b,
        &format!("{name}.poolproj"),
        Conv2d::new(in_ch, pool, 1, 1, 0),
        Source::Node(ap),
    );
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[
            Source::Node(b1),
            Source::Node(b5),
            Source::Node(d3),
            Source::Node(bp),
        ],
    );
    b.end_module();
    cat
}

/// 35 -> 17 grid reduction.
fn reduction_a(b: &mut ModelBuilder, name: &str, input: NodeId, in_ch: usize) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let b3 = basic(
        b,
        &format!("{name}.3x3"),
        Conv2d::new(in_ch, 384, 3, 2, 0),
        src,
    );
    let d1 = basic(
        b,
        &format!("{name}.d3x3r"),
        Conv2d::new(in_ch, 64, 1, 1, 0),
        src,
    );
    let d2 = basic(
        b,
        &format!("{name}.d3x3a"),
        Conv2d::new(64, 96, 3, 1, 1),
        Source::Node(d1),
    );
    let d3 = basic(
        b,
        &format!("{name}.d3x3b"),
        Conv2d::new(96, 96, 3, 2, 0),
        Source::Node(d2),
    );
    let mp = b.add(format!("{name}.pool"), MaxPool2d::new(3, 2, 0), &[src]);
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[Source::Node(b3), Source::Node(d3), Source::Node(mp)],
    );
    b.end_module();
    cat
}

/// 17x17 module with factorised 7x7 convolutions of width `c7`.
fn inception_b(b: &mut ModelBuilder, name: &str, input: NodeId, c7: usize) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let in_ch = 768;
    let b1 = basic(
        b,
        &format!("{name}.1x1"),
        Conv2d::new(in_ch, 192, 1, 1, 0),
        src,
    );
    let s1 = basic(
        b,
        &format!("{name}.7x7r"),
        Conv2d::new(in_ch, c7, 1, 1, 0),
        src,
    );
    let s2 = basic(
        b,
        &format!("{name}.1x7"),
        Conv2d::rect(c7, c7, (1, 7), (1, 1), (0, 3)),
        Source::Node(s1),
    );
    let s3 = basic(
        b,
        &format!("{name}.7x1"),
        Conv2d::rect(c7, 192, (7, 1), (1, 1), (3, 0)),
        Source::Node(s2),
    );
    let d1 = basic(
        b,
        &format!("{name}.d7x7r"),
        Conv2d::new(in_ch, c7, 1, 1, 0),
        src,
    );
    let d2 = basic(
        b,
        &format!("{name}.d7x1a"),
        Conv2d::rect(c7, c7, (7, 1), (1, 1), (3, 0)),
        Source::Node(d1),
    );
    let d3 = basic(
        b,
        &format!("{name}.d1x7a"),
        Conv2d::rect(c7, c7, (1, 7), (1, 1), (0, 3)),
        Source::Node(d2),
    );
    let d4 = basic(
        b,
        &format!("{name}.d7x1b"),
        Conv2d::rect(c7, c7, (7, 1), (1, 1), (3, 0)),
        Source::Node(d3),
    );
    let d5 = basic(
        b,
        &format!("{name}.d1x7b"),
        Conv2d::rect(c7, 192, (1, 7), (1, 1), (0, 3)),
        Source::Node(d4),
    );
    let ap = b.add(format!("{name}.pool"), AvgPool2d::new(3, 1, 1), &[src]);
    let bp = basic(
        b,
        &format!("{name}.poolproj"),
        Conv2d::new(in_ch, 192, 1, 1, 0),
        Source::Node(ap),
    );
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[
            Source::Node(b1),
            Source::Node(s3),
            Source::Node(d5),
            Source::Node(bp),
        ],
    );
    b.end_module();
    cat
}

/// 17 -> 8 grid reduction.
fn reduction_b(b: &mut ModelBuilder, name: &str, input: NodeId) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let in_ch = 768;
    let t1 = basic(
        b,
        &format!("{name}.3x3r"),
        Conv2d::new(in_ch, 192, 1, 1, 0),
        src,
    );
    let t2 = basic(
        b,
        &format!("{name}.3x3"),
        Conv2d::new(192, 320, 3, 2, 0),
        Source::Node(t1),
    );
    let s1 = basic(
        b,
        &format!("{name}.7x7r"),
        Conv2d::new(in_ch, 192, 1, 1, 0),
        src,
    );
    let s2 = basic(
        b,
        &format!("{name}.1x7"),
        Conv2d::rect(192, 192, (1, 7), (1, 1), (0, 3)),
        Source::Node(s1),
    );
    let s3 = basic(
        b,
        &format!("{name}.7x1"),
        Conv2d::rect(192, 192, (7, 1), (1, 1), (3, 0)),
        Source::Node(s2),
    );
    let s4 = basic(
        b,
        &format!("{name}.3x3b"),
        Conv2d::new(192, 192, 3, 2, 0),
        Source::Node(s3),
    );
    let mp = b.add(format!("{name}.pool"), MaxPool2d::new(3, 2, 0), &[src]);
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[Source::Node(t2), Source::Node(s4), Source::Node(mp)],
    );
    b.end_module();
    cat
}

/// 8x8 module with split 3x3 branches.
fn inception_c(b: &mut ModelBuilder, name: &str, input: NodeId, in_ch: usize) -> NodeId {
    b.begin_module(name.to_string());
    let src = Source::Node(input);
    let b1 = basic(
        b,
        &format!("{name}.1x1"),
        Conv2d::new(in_ch, 320, 1, 1, 0),
        src,
    );
    let s1 = basic(
        b,
        &format!("{name}.3x3r"),
        Conv2d::new(in_ch, 384, 1, 1, 0),
        src,
    );
    let s2a = basic(
        b,
        &format!("{name}.1x3"),
        Conv2d::rect(384, 384, (1, 3), (1, 1), (0, 1)),
        Source::Node(s1),
    );
    let s2b = basic(
        b,
        &format!("{name}.3x1"),
        Conv2d::rect(384, 384, (3, 1), (1, 1), (1, 0)),
        Source::Node(s1),
    );
    let d1 = basic(
        b,
        &format!("{name}.d3x3r"),
        Conv2d::new(in_ch, 448, 1, 1, 0),
        src,
    );
    let d2 = basic(
        b,
        &format!("{name}.d3x3"),
        Conv2d::new(448, 384, 3, 1, 1),
        Source::Node(d1),
    );
    let d3a = basic(
        b,
        &format!("{name}.d1x3"),
        Conv2d::rect(384, 384, (1, 3), (1, 1), (0, 1)),
        Source::Node(d2),
    );
    let d3b = basic(
        b,
        &format!("{name}.d3x1"),
        Conv2d::rect(384, 384, (3, 1), (1, 1), (1, 0)),
        Source::Node(d2),
    );
    let ap = b.add(format!("{name}.pool"), AvgPool2d::new(3, 1, 1), &[src]);
    let bp = basic(
        b,
        &format!("{name}.poolproj"),
        Conv2d::new(in_ch, 192, 1, 1, 0),
        Source::Node(ap),
    );
    let cat = b.add(
        format!("{name}.concat"),
        Concat,
        &[
            Source::Node(b1),
            Source::Node(s2a),
            Source::Node(s2b),
            Source::Node(d3a),
            Source::Node(d3b),
            Source::Node(bp),
        ],
    );
    b.end_module();
    cat
}

/// Inception-v3 for 3x299x299 inputs: a deeper inception network with
/// factorised convolutions and batch normalisation, ~24M parameters —
/// the most computation-intensive workload of the paper, the one whose
/// FP+BP stage scales closest to linearly with GPU count (§V-C).
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo::inception_v3;
///
/// let model = inception_v3();
/// assert_eq!(model.input_shape().dims(), &[1, 3, 299, 299]);
/// assert_eq!(model.output_shape(1).dims(), &[1, 1000]);
/// ```
pub fn inception_v3() -> Model {
    let mut b = ModelBuilder::new("Inception-v3", Shape::new([1, 3, 299, 299]));
    let c1 = basic(&mut b, "stem1", Conv2d::new(3, 32, 3, 2, 0), Source::Input); // 149
    let c2 = basic(
        &mut b,
        "stem2",
        Conv2d::new(32, 32, 3, 1, 0),
        Source::Node(c1),
    ); // 147
    let c3 = basic(
        &mut b,
        "stem3",
        Conv2d::new(32, 64, 3, 1, 1),
        Source::Node(c2),
    ); // 147
    let p1 = b.add("stem.pool1", MaxPool2d::new(3, 2, 0), &[Source::Node(c3)]); // 73
    let c4 = basic(
        &mut b,
        "stem4",
        Conv2d::new(64, 80, 1, 1, 0),
        Source::Node(p1),
    ); // 73
    let c5 = basic(
        &mut b,
        "stem5",
        Conv2d::new(80, 192, 3, 1, 0),
        Source::Node(c4),
    ); // 71
    let p2 = b.add("stem.pool2", MaxPool2d::new(3, 2, 0), &[Source::Node(c5)]); // 35

    let a1 = inception_a(&mut b, "mixed5b", p2, 192, 32); // 256
    let a2 = inception_a(&mut b, "mixed5c", a1, 256, 64); // 288
    let a3 = inception_a(&mut b, "mixed5d", a2, 288, 64); // 288
    let ra = reduction_a(&mut b, "mixed6a", a3, 288); // 768 @ 17

    let b1 = inception_b(&mut b, "mixed6b", ra, 128);
    let b2 = inception_b(&mut b, "mixed6c", b1, 160);
    let b3 = inception_b(&mut b, "mixed6d", b2, 160);
    let b4 = inception_b(&mut b, "mixed6e", b3, 192);
    let rb = reduction_b(&mut b, "mixed7a", b4); // 1280 @ 8

    let c1m = inception_c(&mut b, "mixed7b", rb, 1280); // 2048
    let c2m = inception_c(&mut b, "mixed7c", c1m, 2048); // 2048
    let gap = b.add("avgpool", AvgPool2d::global(8), &[Source::Node(c2m)]);
    let fc = b.add("fc", Dense::new(2048, 1000), &[Source::Node(gap)]);
    b.finish(fc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn parameter_count_near_published() {
        // torchvision inception_v3 without aux head: ~23.8M.
        let n = inception_v3().param_count();
        assert!(
            (23_000_000..25_000_000).contains(&n),
            "Inception-v3 params {n}"
        );
    }

    #[test]
    fn table1_census() {
        let s = NetworkStats::of(&inception_v3());
        assert_eq!(s.conv_layers, 94);
        assert_eq!(s.fc_layers, 1);
        assert_eq!(s.inception_modules, 11);
    }

    #[test]
    fn grid_sizes_resolve() {
        // Shape inference at build time validates the 299 -> 35 -> 17
        // -> 8 grid pipeline; the head confirms 2048 features.
        let m = inception_v3();
        assert_eq!(m.output_shape(2).dims(), &[2, 1000]);
    }

    #[test]
    fn has_more_params_than_googlenet() {
        assert!(inception_v3().param_count() > crate::zoo::googlenet().param_count() * 3);
    }
}
