//! AlexNet.

use crate::graph::{Model, ModelBuilder, Source};
use crate::layer::{Conv2d, Dense, MaxPool2d, Relu};
use crate::tensor::Shape;

/// AlexNet for 3x224x224 inputs: five convolutions and three
/// fully-connected layers, ~61.1M parameters — the communication-heavy
/// extreme of the paper's workload spectrum ("only 5 convolution
/// layers and a large number of weights (~60M)", §V-A).
///
/// # Example
///
/// ```
/// use voltascope_dnn::zoo::alexnet;
///
/// let model = alexnet();
/// assert_eq!(model.output_shape(1).dims(), &[1, 1000]);
/// // The three FC layers hold almost all the weights.
/// assert!(model.param_count() > 58_000_000);
/// ```
pub fn alexnet() -> Model {
    let mut b = ModelBuilder::new("AlexNet", Shape::new([1, 3, 224, 224]));
    let c1 = b.add("conv1", Conv2d::new(3, 64, 11, 4, 2), &[Source::Input]);
    let r1 = b.add("relu1", Relu, &[Source::Node(c1)]);
    let p1 = b.add("pool1", MaxPool2d::new(3, 2, 0), &[Source::Node(r1)]);
    let c2 = b.add("conv2", Conv2d::new(64, 192, 5, 1, 2), &[Source::Node(p1)]);
    let r2 = b.add("relu2", Relu, &[Source::Node(c2)]);
    let p2 = b.add("pool2", MaxPool2d::new(3, 2, 0), &[Source::Node(r2)]);
    let c3 = b.add("conv3", Conv2d::new(192, 384, 3, 1, 1), &[Source::Node(p2)]);
    let r3 = b.add("relu3", Relu, &[Source::Node(c3)]);
    let c4 = b.add("conv4", Conv2d::new(384, 256, 3, 1, 1), &[Source::Node(r3)]);
    let r4 = b.add("relu4", Relu, &[Source::Node(c4)]);
    let c5 = b.add("conv5", Conv2d::new(256, 256, 3, 1, 1), &[Source::Node(r4)]);
    let r5 = b.add("relu5", Relu, &[Source::Node(c5)]);
    let p5 = b.add("pool5", MaxPool2d::new(3, 2, 0), &[Source::Node(r5)]);
    let f6 = b.add("fc6", Dense::new(256 * 6 * 6, 4096), &[Source::Node(p5)]);
    let r6 = b.add("relu6", Relu, &[Source::Node(f6)]);
    let f7 = b.add("fc7", Dense::new(4096, 4096), &[Source::Node(r6)]);
    let r7 = b.add("relu7", Relu, &[Source::Node(f7)]);
    let f8 = b.add("fc8", Dense::new(4096, 1000), &[Source::Node(r7)]);
    b.finish(f8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn torchvision_parameter_count() {
        // torchvision alexnet: 61,100,840 parameters.
        assert_eq!(alexnet().param_count(), 61_100_840);
    }

    #[test]
    fn table1_census() {
        let s = NetworkStats::of(&alexnet());
        assert_eq!(s.conv_layers, 5);
        assert_eq!(s.fc_layers, 3);
        assert_eq!(s.inception_modules, 0);
    }

    #[test]
    fn spatial_pipeline_reaches_6x6() {
        let m = alexnet();
        // fc6 expects 256*6*6 = 9216 features, so shape inference
        // passing at build time already proves the 224 -> 6 pipeline.
        assert_eq!(m.output_shape(3).dims(), &[3, 1000]);
    }

    #[test]
    fn fc_layers_dominate_weights() {
        let m = alexnet();
        let fc_weights: u64 = (9216 * 4096 + 4096) + (4096 * 4096 + 4096) + (4096 * 1000 + 1000);
        assert!(fc_weights as f64 / m.param_count() as f64 > 0.9);
    }
}
