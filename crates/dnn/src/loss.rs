//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

#[cfg(test)]
use crate::tensor::Shape;

/// Softmax cross-entropy over logits.
///
/// Takes logits of shape `[N, K]` (a rank-4 `[N, K, 1, 1]` head is
/// accepted and flattened) and one class label per sample; returns the
/// mean loss and the gradient with respect to the logits.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is
/// out of range.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{softmax_cross_entropy, Shape, Tensor};
///
/// // Perfectly confident, correct prediction: loss near zero.
/// let logits = Tensor::from_vec(Shape::new([1, 3]), vec![20.0, 0.0, 0.0]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-6);
/// assert!(grad.max_abs() < 1e-6);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, k) = match logits.shape().rank() {
        2 => (logits.shape().dim(0), logits.shape().dim(1)),
        4 => {
            assert_eq!(logits.shape().dim(2) * logits.shape().dim(3), 1);
            (logits.shape().dim(0), logits.shape().dim(1))
        }
        r => panic!("softmax_cross_entropy expects rank 2 or 4 logits, got rank {r}"),
    };
    assert_eq!(labels.len(), n, "one label per sample required");

    let mut grad = Tensor::zeros(logits.shape().clone());
    let mut total_loss = 0.0f64;
    for (b, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let row = &logits.data()[b * k..(b + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exp: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let denom: f32 = exp.iter().sum();
        let log_denom = denom.ln();
        total_loss += (log_denom - (row[label] - max)) as f64;
        let grow = &mut grad.data_mut()[b * k..(b + 1) * k];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = exp[j] / denom;
            *g = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total_loss / n as f64) as f32, grad)
}

/// Fraction of samples whose arg-max logit matches the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let n = logits.shape().dim(0);
    let k: usize = logits.shape().dims()[1..].iter().product();
    assert_eq!(labels.len(), n, "one label per sample required");
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * k..(b + 1) * k];
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if argmax == label {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(Shape::new([2, 4]));
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // Gradient sums to zero per row.
        for b in 0..2 {
            let s: f32 = grad.data()[b * 4..(b + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(Shape::new([2, 3]), vec![0.5, -1.0, 2.0, 0.0, 1.0, -0.5]);
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut p = logits.clone();
            let mut m = logits.clone();
            p[i] += eps;
            m[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&p, &labels);
            let (lm, _) = softmax_cross_entropy(&m, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-3,
                "at {i}: numeric {numeric}, analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn rank4_head_accepted() {
        let logits = Tensor::zeros(Shape::new([2, 5, 1, 1]));
        let (loss, grad) = softmax_cross_entropy(&logits, &[1, 4]);
        assert!(loss > 0.0);
        assert_eq!(grad.shape().dims(), &[2, 5, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::zeros(Shape::new([1, 3]));
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(Shape::new([2, 3]), vec![1.0, 5.0, 2.0, 9.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
