//! # voltascope-dnn — a miniature DNN framework with real numerics
//!
//! The substrate standing in for MXNet + cuDNN in the paper
//! reproduction: dense `f32` tensors, differentiable layers with
//! hand-written forward/backward passes, a DAG [`Model`] with eager
//! shape inference, and the five-network zoo the paper trains
//! ([`zoo::lenet`], [`zoo::alexnet`], [`zoo::googlenet`],
//! [`zoo::inception_v3`], [`zoo::resnet50`]).
//!
//! Two audiences use this crate:
//!
//! * **The simulator** consumes the *accounting* API — parameter
//!   counts, per-layer FLOPs ([`Model::kernel_profile`]), activation
//!   footprints, gradient buckets — to schedule kernels and transfers
//!   with realistic sizes.
//! * **Tests and the correctness story** use the *execution* API —
//!   [`Model::forward`], [`Model::backward`],
//!   [`softmax_cross_entropy`] — so data-parallel training in
//!   `voltascope-train` computes real gradients whose collective
//!   reduction can be checked bit-for-bit.
//!
//! # Example
//!
//! ```
//! use voltascope_dnn::{zoo, NetworkStats};
//!
//! let lenet = zoo::lenet();
//! let stats = NetworkStats::of(&lenet);
//! assert_eq!(stats.conv_layers, 2);
//! // Classic LeNet-5 has ~61.7K parameters (paper Table I: "K" scale).
//! assert!((60_000..64_000).contains(&stats.weights));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod layer;
mod loss;
mod stats;
mod tensor;
pub mod zoo;

pub use graph::{
    Activations, GradientBucket, Gradients, KernelDesc, LayerInfo, Model, ModelBuilder, NodeId,
    Params, Source, Stage,
};
pub use layer::{
    Add, AvgPool2d, Backward, BatchNorm2d, Concat, Conv2d, Dense, Layer, MaxPool2d, Relu,
};
pub use loss::{accuracy, softmax_cross_entropy};
pub use stats::NetworkStats;
pub use tensor::{Shape, Tensor};

// Compile-time guarantee for the parallel experiment grid: models (and
// the tensors inside them) are shareable across sweep worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Model>();
    assert_send_sync::<Tensor>();
    assert_send_sync::<NetworkStats>();
};
