//! Batch normalisation.

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

/// 2-D batch normalisation in training mode: per-channel statistics
/// over the `(N, H, W)` axes, then a learned affine transform.
///
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`
///
/// Parameters: `gamma [C]`, `beta [C]`. Used by Inception-v3 and
/// ResNet, whose per-layer weight counts (and therefore gradient
/// transfer sizes) include these affine parameters.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        BatchNorm2d {
            channels,
            eps: 1e-5,
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn stats(&self, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let m = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xo in 0..w {
                        mean[ch] += x.at4(b, ch, y, xo);
                    }
                }
            }
        }
        for v in &mut mean {
            *v /= m;
        }
        for b in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xo in 0..w {
                        let d = x.at4(b, ch, y, xo) - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
        }
        for v in &mut var {
            *v /= m;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn kind(&self) -> &'static str {
        "batchnorm"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "batchnorm takes one input");
        let s = &inputs[0];
        assert_eq!(s.rank(), 4, "batchnorm input must be NCHW");
        assert_eq!(s.dim(1), self.channels, "batchnorm channel mismatch");
        s.clone()
    }

    fn param_shapes(&self) -> Vec<Shape> {
        vec![Shape::new([self.channels]), Shape::new([self.channels])]
    }

    fn forward(&self, inputs: &[&Tensor], params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let (gamma, beta) = (params[0], params[1]);
        let (mean, var) = self.stats(x);
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let mut out = Tensor::zeros(x.shape().clone());
        for b in 0..n {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for y in 0..h {
                    for xo in 0..w {
                        let xhat = (x.at4(b, ch, y, xo) - mean[ch]) * inv;
                        *out.at4_mut(b, ch, y, xo) = gamma[ch] * xhat + beta[ch];
                    }
                }
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let gamma = params[0];
        let (mean, var) = self.stats(x);
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let m = (n * h * w) as f32;
        let mut gx = Tensor::zeros(x.shape().clone());
        let mut ggamma = Tensor::zeros(Shape::new([c]));
        let mut gbeta = Tensor::zeros(Shape::new([c]));
        for ch in 0..c {
            let inv = 1.0 / (var[ch] + self.eps).sqrt();
            // Accumulate sum(dy) and sum(dy * xhat) for the channel.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for b in 0..n {
                for y in 0..h {
                    for xo in 0..w {
                        let dy = grad_output.at4(b, ch, y, xo);
                        let xhat = (x.at4(b, ch, y, xo) - mean[ch]) * inv;
                        sum_dy += dy;
                        sum_dy_xhat += dy * xhat;
                    }
                }
            }
            ggamma[ch] = sum_dy_xhat;
            gbeta[ch] = sum_dy;
            // dx = (gamma * inv / m) * (m*dy - sum_dy - xhat * sum_dy_xhat)
            for b in 0..n {
                for y in 0..h {
                    for xo in 0..w {
                        let dy = grad_output.at4(b, ch, y, xo);
                        let xhat = (x.at4(b, ch, y, xo) - mean[ch]) * inv;
                        *gx.at4_mut(b, ch, y, xo) =
                            gamma[ch] * inv / m * (m * dy - sum_dy - xhat * sum_dy_xhat);
                    }
                }
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![ggamma, gbeta],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        // Two reduction passes plus the normalisation: ~10 ops/element.
        10 * inputs[0].numel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn normalises_to_zero_mean_unit_var() {
        let bn = BatchNorm2d::new(2);
        let x = gradcheck::fixture(Shape::new([3, 2, 4, 4]), 17);
        let gamma = Tensor::full(Shape::new([2]), 1.0);
        let beta = Tensor::zeros(Shape::new([2]));
        let y = bn.forward(&[&x], &[&gamma, &beta]);
        // Per-channel mean ~0, var ~1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..3 {
                for h in 0..4 {
                    for w in 0..4 {
                        vals.push(y.at4(b, ch, h, w));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn affine_transform_applies() {
        let bn = BatchNorm2d::new(1);
        let x = gradcheck::fixture(Shape::new([2, 1, 3, 3]), 9);
        let gamma = Tensor::full(Shape::new([1]), 2.0);
        let beta = Tensor::full(Shape::new([1]), 5.0);
        let y = bn.forward(&[&x], &[&gamma, &beta]);
        let mean: f32 = y.data().iter().sum::<f32>() / y.numel() as f32;
        assert!((mean - 5.0).abs() < 1e-4, "mean {mean}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let bn = BatchNorm2d::new(2);
        let x = gradcheck::fixture(Shape::new([2, 2, 3, 3]), 23);
        let gamma = Tensor::full(Shape::new([2]), 1.5);
        let beta = Tensor::full(Shape::new([2]), -0.5);
        gradcheck::check(&bn, &[x], &[gamma, beta], 5e-2);
    }

    #[test]
    fn param_count_is_two_per_channel() {
        assert_eq!(BatchNorm2d::new(64).param_count(), 128);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channels_panic() {
        let bn = BatchNorm2d::new(3);
        let _ = bn.output_shape(&[Shape::new([1, 4, 2, 2])]);
    }
}
