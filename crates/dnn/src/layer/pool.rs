//! Max and average pooling.

use crate::layer::{Backward, Layer};
use crate::tensor::{Shape, Tensor};

fn pooled_hw(h: usize, w: usize, k: usize, stride: usize, pad: usize) -> (usize, usize) {
    let oh = (h + 2 * pad).checked_sub(k).map(|v| v / stride + 1);
    let ow = (w + 2 * pad).checked_sub(k).map(|v| v / stride + 1);
    match (oh, ow) {
        (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
        _ => panic!("pool window {k}x{k} (pad {pad}) larger than input {h}x{w}"),
    }
}

/// Max pooling over square windows.
///
/// # Example
///
/// ```
/// use voltascope_dnn::{Layer, MaxPool2d, Shape};
///
/// let pool = MaxPool2d::new(2, 2, 0);
/// let out = pool.output_shape(&[Shape::new([1, 8, 28, 28])]);
/// assert_eq!(out.dims(), &[1, 8, 14, 14]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    pad: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window `k`, the given stride and
    /// zero padding.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0 && stride > 0);
        MaxPool2d { k, stride, pad }
    }
}

impl Layer for MaxPool2d {
    fn kind(&self) -> &'static str {
        "maxpool"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "maxpool takes one input");
        let s = &inputs[0];
        assert_eq!(s.rank(), 4, "maxpool input must be NCHW");
        let (oh, ow) = pooled_hw(s.dim(2), s.dim(3), self.k, self.stride, self.pad);
        Shape::new([s.dim(0), s.dim(1), oh, ow])
    }

    fn forward(&self, inputs: &[&Tensor], _params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let out_shape = self.output_shape(&[x.shape().clone()]);
        let (n, c, oh, ow) = (
            out_shape.dim(0),
            out_shape.dim(1),
            out_shape.dim(2),
            out_shape.dim(3),
        );
        let (ih, iw) = (x.shape().dim(2), x.shape().dim(3));
        let mut out = Tensor::zeros(out_shape);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xo in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.k {
                            let sy = y * self.stride + ky;
                            if sy < self.pad || sy - self.pad >= ih {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xo * self.stride + kx;
                                if sx < self.pad || sx - self.pad >= iw {
                                    continue;
                                }
                                best = best.max(x.at4(b, ch, sy - self.pad, sx - self.pad));
                            }
                        }
                        // Fully-padded windows see only implicit zeros.
                        *out.at4_mut(b, ch, y, xo) =
                            if best == f32::NEG_INFINITY { 0.0 } else { best };
                    }
                }
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _params: &[&Tensor],
        output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let (n, c, oh, ow) = (
            output.shape().dim(0),
            output.shape().dim(1),
            output.shape().dim(2),
            output.shape().dim(3),
        );
        let (ih, iw) = (x.shape().dim(2), x.shape().dim(3));
        let mut gx = Tensor::zeros(x.shape().clone());
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xo in 0..ow {
                        let target = output.at4(b, ch, y, xo);
                        let g = grad_output.at4(b, ch, y, xo);
                        if g == 0.0 {
                            continue;
                        }
                        // Route the gradient to the first max element
                        // (cuDNN picks one winner as well).
                        'scan: for ky in 0..self.k {
                            let sy = y * self.stride + ky;
                            if sy < self.pad || sy - self.pad >= ih {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xo * self.stride + kx;
                                if sx < self.pad || sx - self.pad >= iw {
                                    continue;
                                }
                                if x.at4(b, ch, sy - self.pad, sx - self.pad) == target {
                                    *gx.at4_mut(b, ch, sy - self.pad, sx - self.pad) += g;
                                    break 'scan;
                                }
                            }
                        }
                    }
                }
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        let out = self.output_shape(inputs);
        out.numel() as u64 * (self.k * self.k) as u64
    }

    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        self.forward_flops(inputs)
    }
}

/// Average pooling over square windows with optional zero padding
/// (padded positions count toward the divisor, matching cuDNN's
/// include-padding mode used by the inception pool branches). Use a
/// window equal to the feature-map size for the global average pooling
/// that closes GoogLeNet, Inception-v3 and ResNet.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    k: usize,
    stride: usize,
    pad: usize,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0 && stride > 0);
        AvgPool2d { k, stride, pad }
    }

    /// Global average pooling for an `hw x hw` feature map.
    pub fn global(hw: usize) -> Self {
        AvgPool2d::new(hw, hw, 0)
    }
}

impl Layer for AvgPool2d {
    fn kind(&self) -> &'static str {
        "avgpool"
    }

    fn output_shape(&self, inputs: &[Shape]) -> Shape {
        assert_eq!(inputs.len(), 1, "avgpool takes one input");
        let s = &inputs[0];
        assert_eq!(s.rank(), 4, "avgpool input must be NCHW");
        let (oh, ow) = pooled_hw(s.dim(2), s.dim(3), self.k, self.stride, self.pad);
        Shape::new([s.dim(0), s.dim(1), oh, ow])
    }

    fn forward(&self, inputs: &[&Tensor], _params: &[&Tensor]) -> Tensor {
        let x = inputs[0];
        let out_shape = self.output_shape(&[x.shape().clone()]);
        let (n, c, oh, ow) = (
            out_shape.dim(0),
            out_shape.dim(1),
            out_shape.dim(2),
            out_shape.dim(3),
        );
        let (ih, iw) = (x.shape().dim(2), x.shape().dim(3));
        let norm = 1.0 / (self.k * self.k) as f32;
        let mut out = Tensor::zeros(out_shape);
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xo in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.k {
                            let sy = y * self.stride + ky;
                            if sy < self.pad || sy - self.pad >= ih {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xo * self.stride + kx;
                                if sx < self.pad || sx - self.pad >= iw {
                                    continue;
                                }
                                acc += x.at4(b, ch, sy - self.pad, sx - self.pad);
                            }
                        }
                        *out.at4_mut(b, ch, y, xo) = acc * norm;
                    }
                }
            }
        }
        out
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _params: &[&Tensor],
        _output: &Tensor,
        grad_output: &Tensor,
    ) -> Backward {
        let x = inputs[0];
        let (n, c, oh, ow) = (
            grad_output.shape().dim(0),
            grad_output.shape().dim(1),
            grad_output.shape().dim(2),
            grad_output.shape().dim(3),
        );
        let (ih, iw) = (x.shape().dim(2), x.shape().dim(3));
        let norm = 1.0 / (self.k * self.k) as f32;
        let mut gx = Tensor::zeros(x.shape().clone());
        for b in 0..n {
            for ch in 0..c {
                for y in 0..oh {
                    for xo in 0..ow {
                        let g = grad_output.at4(b, ch, y, xo) * norm;
                        for ky in 0..self.k {
                            let sy = y * self.stride + ky;
                            if sy < self.pad || sy - self.pad >= ih {
                                continue;
                            }
                            for kx in 0..self.k {
                                let sx = xo * self.stride + kx;
                                if sx < self.pad || sx - self.pad >= iw {
                                    continue;
                                }
                                *gx.at4_mut(b, ch, sy - self.pad, sx - self.pad) += g;
                            }
                        }
                    }
                }
            }
        }
        Backward {
            grad_inputs: vec![gx],
            grad_params: vec![],
        }
    }

    fn forward_flops(&self, inputs: &[Shape]) -> u64 {
        let out = self.output_shape(inputs);
        out.numel() as u64 * (self.k * self.k) as u64
    }

    fn backward_flops(&self, inputs: &[Shape]) -> u64 {
        self.forward_flops(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::gradcheck;

    #[test]
    fn maxpool_known_values() {
        let pool = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(
            Shape::new([1, 1, 2, 4]),
            vec![1., 5., 2., 0., 3., 4., 8., -1.],
        );
        let y = pool.forward(&[&x], &[]);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[5.0, 8.0]);
    }

    #[test]
    fn maxpool_padding_is_coordinate_extension_only() {
        // Padding extends coordinates, but only in-bounds elements
        // compete for the max (cuDNN -inf padding semantics).
        let pool = MaxPool2d::new(3, 2, 1);
        let x = Tensor::from_vec(Shape::new([1, 1, 2, 2]), vec![-4., -3., -2., -1.]);
        let y = pool.forward(&[&x], &[]);
        assert_eq!(y.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[-1.0]);
    }

    #[test]
    fn avgpool_known_values() {
        let pool = AvgPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(Shape::new([1, 1, 2, 2]), vec![1.0, 3.0, 5.0, 7.0]);
        let y = pool.forward(&[&x], &[]);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn avgpool_padding_counts_zeros() {
        // 3x3 window, pad 1, on a single pixel of value 9: the window
        // sees one real element and eight zeros; include-padding mode
        // divides by 9.
        let pool = AvgPool2d::new(3, 1, 1);
        let x = Tensor::from_vec(Shape::new([1, 1, 1, 1]), vec![9.0]);
        let y = pool.forward(&[&x], &[]);
        assert_eq!(y.data(), &[1.0]);
    }

    #[test]
    fn global_avgpool_reduces_to_1x1() {
        let pool = AvgPool2d::global(7);
        let out = pool.output_shape(&[Shape::new([2, 512, 7, 7])]);
        assert_eq!(out.dims(), &[2, 512, 1, 1]);
    }

    #[test]
    fn maxpool_gradients() {
        let pool = MaxPool2d::new(2, 2, 0);
        let x = gradcheck::fixture(Shape::new([1, 2, 4, 4]), 5);
        gradcheck::check(&pool, &[x], &[], 2e-2);
    }

    #[test]
    fn avgpool_gradients() {
        let pool = AvgPool2d::new(2, 2, 0);
        let x = gradcheck::fixture(Shape::new([1, 2, 4, 4]), 6);
        gradcheck::check(&pool, &[x], &[], 2e-2);
    }

    #[test]
    fn padded_avgpool_gradients() {
        let pool = AvgPool2d::new(3, 1, 1);
        let x = gradcheck::fixture(Shape::new([1, 2, 3, 3]), 7);
        gradcheck::check(&pool, &[x], &[], 2e-2);
    }

    #[test]
    fn pools_have_no_params_and_no_tensor_cores() {
        let pool = MaxPool2d::new(2, 2, 0);
        assert_eq!(pool.param_count(), 0);
        assert!(!pool.uses_tensor_cores());
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_window_panics() {
        let pool = MaxPool2d::new(5, 1, 0);
        let _ = pool.output_shape(&[Shape::new([1, 1, 3, 3])]);
    }
}
